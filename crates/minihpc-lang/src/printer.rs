//! Pretty-printer: regenerates MiniHPC source text from the AST.
//!
//! The printer is the other half of the translation pipeline — transpilers
//! and error injectors operate on ASTs and then print the result back to
//! text, which is what gets "submitted" to the build system, exactly like an
//! LLM emitting a code block. `print ∘ parse` is the identity on canonical
//! output (property-tested in this crate).

use crate::ast::*;
use crate::pragma::*;

const INDENT: &str = "    ";

/// Print a whole source file.
pub fn print_file(file: &SourceFile) -> String {
    let mut p = Printer::new();
    for (i, item) in file.items.iter().enumerate() {
        if i > 0 {
            p.out.push('\n');
        }
        p.item(item);
    }
    p.out
}

/// Print a single function definition or declaration.
pub fn print_function(f: &Function) -> String {
    let mut p = Printer::new();
    p.function(f);
    p.out
}

/// Print a single statement at indent level zero.
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(s);
    p.out
}

/// Print a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(e);
    p.out
}

/// Print a type.
pub fn print_type(t: &Type) -> String {
    type_to_string(t)
}

pub fn type_to_string(t: &Type) -> String {
    match t {
        Type::Scalar(s) => s.keyword().to_string(),
        Type::Ptr(inner) => format!("{}*", type_to_string(inner)),
        Type::Const(inner) => format!("const {}", type_to_string(inner)),
        Type::Named(n) => n.clone(),
        Type::Dim3 => "dim3".to_string(),
        Type::View { elem, rank } => {
            format!(
                "Kokkos::View<{}{}>",
                elem.keyword(),
                "*".repeat(*rank as usize)
            )
        }
    }
}

/// Render an OpenMP clause back to directive text.
pub fn clause_to_string(c: &OmpClause) -> String {
    match c {
        OmpClause::NumThreads(e) => format!("num_threads({})", print_expr(e)),
        OmpClause::NumTeams(e) => format!("num_teams({})", print_expr(e)),
        OmpClause::ThreadLimit(e) => format!("thread_limit({})", print_expr(e)),
        OmpClause::Collapse(n) => format!("collapse({n})"),
        OmpClause::Reduction { op, vars } => {
            format!("reduction({}: {})", op.symbol(), vars.join(", "))
        }
        OmpClause::Map { kind, sections } => {
            let secs: Vec<String> = sections.iter().map(section_to_string).collect();
            format!("map({}: {})", kind.keyword(), secs.join(", "))
        }
        OmpClause::Private(vars) => format!("private({})", vars.join(", ")),
        OmpClause::FirstPrivate(vars) => format!("firstprivate({})", vars.join(", ")),
        OmpClause::Shared(vars) => format!("shared({})", vars.join(", ")),
        OmpClause::Schedule { kind, chunk } => match chunk {
            Some(c) => format!("schedule({kind}, {})", print_expr(c)),
            None => format!("schedule({kind})"),
        },
        OmpClause::Default(mode) => format!("default({mode})"),
        OmpClause::If(e) => format!("if({})", print_expr(e)),
        OmpClause::Device(e) => format!("device({})", print_expr(e)),
        OmpClause::Unknown { name, text } => format!("{name}{text}"),
    }
}

fn section_to_string(s: &ArraySection) -> String {
    let mut out = s.var.clone();
    for (lo, len) in &s.ranges {
        out.push_str(&format!("[{}:{}]", print_expr(lo), print_expr(len)));
    }
    out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str(INDENT);
        }
    }

    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn item(&mut self, item: &Item) {
        match &item.kind {
            ItemKind::Include { path, system } => {
                if *system {
                    self.push(&format!("#include <{path}>\n"));
                } else {
                    self.push(&format!("#include \"{path}\"\n"));
                }
            }
            ItemKind::Define { name, body_text } => {
                self.push(&format!("#define {name} {body_text}\n"));
            }
            ItemKind::OtherDirective(d) => {
                self.push(&format!("#{d}\n"));
            }
            ItemKind::Struct(s) => self.struct_def(s),
            ItemKind::Global(d) => {
                self.line_start();
                self.var_decl(d);
                self.push(";\n");
            }
            ItemKind::Function(f) => self.function(f),
        }
    }

    fn struct_def(&mut self, s: &StructDef) {
        if s.is_typedef {
            self.push("typedef struct {\n");
        } else {
            self.push(&format!("struct {} {{\n", s.name));
        }
        self.indent += 1;
        for f in &s.fields {
            self.line_start();
            self.push(&format!("{} {}", type_to_string(&f.ty), f.name));
            for d in &f.array_dims {
                self.push(&format!("[{}]", print_expr(d)));
            }
            self.push(";\n");
        }
        self.indent -= 1;
        if s.is_typedef {
            self.push(&format!("}} {};\n", s.name));
        } else {
            self.push("};\n");
        }
    }

    fn function(&mut self, f: &Function) {
        let mut quals = String::new();
        if f.quals.cuda_global {
            quals.push_str("__global__ ");
        }
        if f.quals.cuda_device {
            quals.push_str("__device__ ");
        }
        if f.quals.cuda_host {
            quals.push_str("__host__ ");
        }
        if f.quals.is_static {
            quals.push_str("static ");
        }
        if f.quals.is_inline {
            quals.push_str("inline ");
        }
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| {
                if p.name.is_empty() {
                    type_to_string(&p.ty)
                } else {
                    format!("{} {}", type_to_string(&p.ty), p.name)
                }
            })
            .collect();
        self.push(&format!(
            "{}{} {}({})",
            quals,
            type_to_string(&f.ret),
            f.name,
            params.join(", ")
        ));
        match &f.body {
            Some(body) => {
                self.push(" ");
                self.block(body);
                self.push("\n");
            }
            None => self.push(";\n"),
        }
    }

    fn block(&mut self, b: &Block) {
        self.push("{\n");
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line_start();
        self.push("}");
    }

    fn var_decl(&mut self, d: &VarDecl) {
        if d.is_static {
            self.push("static ");
        }
        self.push(&format!("{} {}", type_to_string(&d.ty), d.name));
        for dim in &d.array_dims {
            self.push(&format!("[{}]", print_expr(dim)));
        }
        match &d.init {
            Some(Init::Expr(e)) => {
                self.push(" = ");
                self.expr(e);
            }
            Some(Init::List(elems)) => {
                self.push(" = { ");
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(e);
                }
                self.push(" }");
            }
            Some(Init::Ctor(args)) => {
                self.push("(");
                for (i, e) in args.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(e);
                }
                self.push(")");
            }
            None => {}
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => {
                self.line_start();
                self.var_decl(d);
                self.push(";\n");
            }
            StmtKind::Expr(e) => {
                self.line_start();
                self.expr(e);
                self.push(";\n");
            }
            StmtKind::If { cond, then, els } => {
                self.line_start();
                self.push("if (");
                self.expr(cond);
                self.push(")");
                self.stmt_as_body(then);
                if let Some(els) = els {
                    self.line_start();
                    self.push("else");
                    self.stmt_as_body(els);
                }
            }
            StmtKind::While { cond, body } => {
                self.line_start();
                self.push("while (");
                self.expr(cond);
                self.push(")");
                self.stmt_as_body(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.line_start();
                self.push("for (");
                match init {
                    Some(s) => match &s.kind {
                        StmtKind::Decl(d) => {
                            self.var_decl(d);
                            self.push("; ");
                        }
                        StmtKind::Expr(e) => {
                            self.expr(e);
                            self.push("; ");
                        }
                        _ => self.push("; "),
                    },
                    None => self.push("; "),
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.push("; ");
                if let Some(st) = step {
                    self.expr(st);
                }
                self.push(")");
                self.stmt_as_body(body);
            }
            StmtKind::Return(v) => {
                self.line_start();
                match v {
                    Some(e) => {
                        self.push("return ");
                        self.expr(e);
                        self.push(";\n");
                    }
                    None => self.push("return;\n"),
                }
            }
            StmtKind::Break => {
                self.line_start();
                self.push("break;\n");
            }
            StmtKind::Continue => {
                self.line_start();
                self.push("continue;\n");
            }
            StmtKind::Block(b) => {
                self.line_start();
                self.block(b);
                self.push("\n");
            }
            StmtKind::Omp { directive, body } => {
                self.line_start();
                self.push(&format!("#pragma {}\n", directive.text()));
                if let Some(b) = body {
                    self.stmt(b);
                }
            }
            StmtKind::RawPragma(text) => {
                self.line_start();
                self.push(&format!("#pragma {text}\n"));
            }
            StmtKind::Empty => {
                self.line_start();
                self.push(";\n");
            }
        }
    }

    /// Print the body of an `if`/`for`/`while`: blocks inline after the
    /// header, other statements indented on the next line.
    fn stmt_as_body(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Block(b) => {
                self.push(" ");
                self.block(b);
                self.push("\n");
            }
            _ => {
                self.push("\n");
                self.indent += 1;
                self.stmt(s);
                self.indent -= 1;
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(v) => self.push(&v.to_string()),
            ExprKind::FloatLit(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    self.push(&format!("{v:.1}"));
                } else {
                    self.push(&format!("{v}"));
                }
            }
            ExprKind::StrLit(s) => {
                self.push("\"");
                for c in s.chars() {
                    match c {
                        '\n' => self.push("\\n"),
                        '\t' => self.push("\\t"),
                        '\r' => self.push("\\r"),
                        '\0' => self.push("\\0"),
                        '"' => self.push("\\\""),
                        '\\' => self.push("\\\\"),
                        other => self.out.push(other),
                    }
                }
                self.push("\"");
            }
            ExprKind::CharLit(c) => {
                self.push("'");
                match c {
                    '\n' => self.push("\\n"),
                    '\t' => self.push("\\t"),
                    '\'' => self.push("\\'"),
                    '\\' => self.push("\\\\"),
                    '\0' => self.push("\\0"),
                    other => self.out.push(*other),
                }
                self.push("'");
            }
            ExprKind::BoolLit(b) => self.push(if *b { "true" } else { "false" }),
            ExprKind::Ident(name) => self.push(name),
            ExprKind::Path(segments) => self.push(&segments.join("::")),
            ExprKind::Unary { op, expr } => match op {
                UnaryOp::PostInc => {
                    self.expr(expr);
                    self.push("++");
                }
                UnaryOp::PostDec => {
                    self.expr(expr);
                    self.push("--");
                }
                _ => {
                    let sym = match op {
                        UnaryOp::Neg => "-",
                        UnaryOp::Not => "!",
                        UnaryOp::BitNot => "~",
                        UnaryOp::Deref => "*",
                        UnaryOp::AddrOf => "&",
                        UnaryOp::PreInc => "++",
                        UnaryOp::PreDec => "--",
                        _ => unreachable!(),
                    };
                    self.push(sym);
                    // Parenthesise non-primary operands for re-parseability.
                    if needs_parens_unary(expr) {
                        self.push("(");
                        self.expr(expr);
                        self.push(")");
                    } else {
                        self.expr(expr);
                    }
                }
            },
            ExprKind::Binary { op, lhs, rhs } => {
                self.print_operand(lhs, precedence_of(*op), true);
                self.push(&format!(" {} ", op.symbol()));
                self.print_operand(rhs, precedence_of(*op), false);
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.expr(lhs);
                match op {
                    Some(o) => self.push(&format!(" {}= ", o.symbol())),
                    None => self.push(" = "),
                }
                self.expr(rhs);
            }
            ExprKind::Ternary { cond, then, els } => {
                self.print_operand(cond, 1, true);
                self.push(" ? ");
                self.expr(then);
                self.push(" : ");
                self.expr(els);
            }
            ExprKind::Call { callee, args } => {
                self.expr(callee);
                self.push("(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(a);
                }
                self.push(")");
            }
            ExprKind::KernelLaunch {
                kernel,
                grid,
                block,
                args,
            } => {
                self.push(kernel);
                self.push("<<<");
                self.expr(grid);
                self.push(", ");
                self.expr(block);
                self.push(">>>(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(a);
                }
                self.push(")");
            }
            ExprKind::Index { base, index } => {
                self.print_operand(base, 14, true);
                self.push("[");
                self.expr(index);
                self.push("]");
            }
            ExprKind::Member {
                base,
                member,
                arrow,
            } => {
                self.print_operand(base, 14, true);
                self.push(if *arrow { "->" } else { "." });
                self.push(member);
            }
            ExprKind::Cast { ty, expr } => {
                self.push(&format!("({})", type_to_string(ty)));
                if needs_parens_unary(expr) {
                    self.push("(");
                    self.expr(expr);
                    self.push(")");
                } else {
                    self.expr(expr);
                }
            }
            ExprKind::SizeOfType(ty) => {
                self.push(&format!("sizeof({})", type_to_string(ty)));
            }
            ExprKind::SizeOfExpr(e) => {
                self.push("sizeof(");
                self.expr(e);
                self.push(")");
            }
            ExprKind::Lambda {
                capture,
                params,
                body,
            } => {
                match capture {
                    CaptureMode::ByValue => self.push("[=]"),
                    CaptureMode::ByRef => self.push("[&]"),
                    CaptureMode::KokkosLambda => self.push("KOKKOS_LAMBDA"),
                }
                self.push("(");
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.push(&format!("{} {}", type_to_string(&p.ty), p.name));
                }
                self.push(") ");
                self.block(body);
            }
            ExprKind::Paren(inner) => {
                self.push("(");
                self.expr(inner);
                self.push(")");
            }
        }
    }

    /// Print a binary operand, adding parentheses when its precedence is
    /// lower than (or equal on the non-associative side to) the parent's.
    fn print_operand(&mut self, e: &Expr, parent_prec: u8, is_left: bool) {
        let child_prec = expr_precedence(e);
        let needs = child_prec < parent_prec || (child_prec == parent_prec && !is_left);
        if needs && !matches!(e.kind, ExprKind::Paren(_)) {
            self.push("(");
            self.expr(e);
            self.push(")");
        } else {
            self.expr(e);
        }
    }
}

fn precedence_of(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::BitOr => 3,
        BinOp::BitXor => 4,
        BinOp::BitAnd => 5,
        BinOp::Eq | BinOp::Ne => 6,
        BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
    }
}

fn expr_precedence(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Assign { .. } => 0,
        ExprKind::Ternary { .. } => 1,
        ExprKind::Binary { op, .. } => precedence_of(*op),
        ExprKind::Cast { .. } | ExprKind::Unary { .. } => 12,
        _ => 15,
    }
}

fn needs_parens_unary(e: &Expr) -> bool {
    expr_precedence(e) < 12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr_str, parse_file, parse_stmt_str};

    fn roundtrip_expr(src: &str) {
        let e1 = parse_expr_str(src).unwrap();
        let printed = print_expr(&e1);
        let e2 = parse_expr_str(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        let printed2 = print_expr(&e2);
        assert_eq!(printed, printed2, "printer not idempotent for `{src}`");
    }

    #[test]
    fn expr_roundtrips() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a ? b : c",
            "x = y += 2",
            "-x * !y",
            "a[i * n + j]",
            "p->field.sub[3]",
            "f(a, b + 1, g())",
            "(double*)malloc(n * sizeof(double))",
            "k<<<grid, block>>>(a, b, n)",
            "i < n && j < n || k == 0",
            "count == 1 ? 1 : 0",
            "a << 2 >> b",
            "x % 4 ^ y & z | w",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn stmt_print_parse_roundtrip() {
        let srcs = [
            "for (int i = 0; i < n; i++) { a[i] = 0; }",
            "if (x > 0) { y = 1; } else { y = 2; }",
            "while (running) { step(); }",
            "#pragma omp target teams distribute parallel for collapse(2)\nfor (int i = 0; i < n; i++) { }",
            "double a[10][20];",
            "return x + 1;",
        ];
        for src in srcs {
            let s1 = parse_stmt_str(src).unwrap();
            let p1 = print_stmt(&s1);
            let s2 = parse_stmt_str(&p1)
                .unwrap_or_else(|e| panic!("reparse failed for:\n{p1}\nerror: {e}"));
            assert_eq!(p1, print_stmt(&s2));
        }
    }

    #[test]
    fn file_roundtrip_cuda() {
        let src = r#"
#include "kernel.h"
#include <stdio.h>
#define N 16

__global__ void cellsXOR(const int* input, int* output, size_t n) {
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n && j < n) {
        int count = 0;
        if (i > 0 && input[(i - 1) * n + j] == 1) count++;
        output[i * n + j] = (count == 1) ? 1 : 0;
    }
}

int main(int argc, char** argv) {
    int* d_in;
    cudaMalloc(&d_in, N * N * sizeof(int));
    dim3 block(16, 16);
    cellsXOR<<<4, block>>>(d_in, d_in, N);
    cudaDeviceSynchronize();
    return 0;
}
"#;
        let f1 = parse_file(src).unwrap();
        let p1 = print_file(&f1);
        let f2 = parse_file(&p1).unwrap_or_else(|e| panic!("reparse failed:\n{p1}\n{e}"));
        assert_eq!(p1, print_file(&f2), "printer must be idempotent");
    }

    #[test]
    fn pragma_text_reconstruction() {
        let s = parse_stmt_str(
            "#pragma omp target teams distribute parallel for map(to: in[0:n]) map(from: out[0:n]) collapse(2)\nfor (int i = 0; i < n; i++) { }",
        )
        .unwrap();
        let printed = print_stmt(&s);
        assert!(printed.contains("#pragma omp target teams distribute parallel for"));
        assert!(printed.contains("map(to: in[0:n])"));
        assert!(printed.contains("map(from: out[0:n])"));
        assert!(printed.contains("collapse(2)"));
    }

    #[test]
    fn kokkos_roundtrip() {
        let src = r#"
int main() {
    Kokkos::View<double*> d("d", 100);
    Kokkos::parallel_for(100, KOKKOS_LAMBDA(int i) { d(i) = 2.0 * i; });
    return 0;
}
"#;
        let f1 = parse_file(src).unwrap();
        let p1 = print_file(&f1);
        let f2 = parse_file(&p1).unwrap_or_else(|e| panic!("reparse failed:\n{p1}\n{e}"));
        assert_eq!(p1, print_file(&f2));
        assert!(p1.contains("Kokkos::View<double*>"));
        assert!(p1.contains("KOKKOS_LAMBDA"));
    }

    #[test]
    fn negative_float_prints() {
        let e = parse_expr_str("-1.5").unwrap();
        assert_eq!(print_expr(&e), "-1.5");
        let e = parse_expr_str("2.0").unwrap();
        assert_eq!(print_expr(&e), "2.0");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let e = parse_expr_str(r#"printf("a\tb\n")"#).unwrap();
        let p = print_expr(&e);
        assert_eq!(p, r#"printf("a\tb\n")"#);
    }
}
