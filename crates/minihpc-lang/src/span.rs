//! Source locations and spans.
//!
//! Every token and diagnostic carries a [`Span`] so that build logs can point
//! at the offending line, which in turn is what the error-clustering pipeline
//! (paper Sec. 6.3) consumes.

use std::fmt;

/// A half-open byte range into a single source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    pub fn len(self) -> u32 {
        self.end - self.start
    }

    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

/// 1-based line/column position, resolved lazily from a `Span` against the
/// file contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Resolve the 1-based line and column of byte offset `pos` in `text`.
pub fn line_col(text: &str, pos: u32) -> LineCol {
    let pos = (pos as usize).min(text.len());
    let mut line = 1u32;
    let mut line_start = 0usize;
    for (i, b) in text.bytes().enumerate() {
        if i >= pos {
            break;
        }
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    LineCol {
        line,
        col: (pos - line_start) as u32 + 1,
    }
}

/// Extract the full text of the line containing byte offset `pos`.
pub fn line_text(text: &str, pos: u32) -> &str {
    let pos = (pos as usize).min(text.len());
    let start = text[..pos].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let end = text[pos..]
        .find('\n')
        .map(|i| pos + i)
        .unwrap_or(text.len());
    &text[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        let a = Span::new(4, 10);
        let b = Span::new(8, 20);
        assert_eq!(a.to(b), Span::new(4, 20));
        assert_eq!(b.to(a), Span::new(4, 20));
    }

    #[test]
    fn line_col_basics() {
        let text = "abc\ndef\nghi";
        assert_eq!(line_col(text, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(text, 4), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(text, 6), LineCol { line: 2, col: 3 });
        assert_eq!(line_col(text, 10), LineCol { line: 3, col: 3 });
    }

    #[test]
    fn line_col_past_end_clamps() {
        let text = "ab";
        assert_eq!(line_col(text, 99), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_text_middle() {
        let text = "first\nsecond\nthird";
        assert_eq!(line_text(text, 7), "second");
        assert_eq!(line_text(text, 0), "first");
        assert_eq!(line_text(text, 17), "third");
    }

    #[test]
    fn empty_span() {
        assert!(Span::new(3, 3).is_empty());
        assert_eq!(Span::new(3, 7).len(), 4);
    }
}
