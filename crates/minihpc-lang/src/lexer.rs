//! Lexer for MiniHPC.
//!
//! The lexer is dialect-agnostic: CUDA qualifiers (`__global__`),
//! OpenMP pragmas, and Kokkos identifiers all lex as ordinary identifiers or
//! structured preprocessor tokens; interpretation happens in the parser and
//! semantic analysis where the selected execution model is known.

use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::fmt;

/// A lexical error. These map to the paper's "Code Syntax Error" category.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LexError {}

/// Lex `src` fully, returning tokens (terminated by `Eof`) or the first error.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}

/// Lex a fragment that may not contain preprocessor lines (used to sub-lex
/// pragma bodies and macro bodies).
pub fn lex_fragment(src: &str, base_offset: u32) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer::new(src);
    lx.base = base_offset;
    lx.allow_preprocessor = false;
    let mut toks = lx.run()?;
    // Drop the trailing Eof for fragments: callers concatenate them.
    toks.pop();
    Ok(toks)
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    base: u32,
    allow_preprocessor: bool,
    at_line_start: bool,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            base: 0,
            allow_preprocessor: true,
            at_line_start: true,
        }
    }

    fn run(&mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                break;
            }
        }
        Ok(out)
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.bytes.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn span_from(&self, start: usize) -> Span {
        Span::new(self.base + start as u32, self.base + self.pos as u32)
    }

    fn error(&self, start: usize, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            span: self.span_from(start),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                b'\n' => {
                    self.at_line_start = true;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos >= self.bytes.len() {
                            return Err(self.error(start, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let start = self.pos;
        if self.pos >= self.bytes.len() {
            return Ok(Token::new(TokenKind::Eof, self.span_from(start)));
        }
        let b = self.peek();

        if b == b'#' {
            if !self.allow_preprocessor {
                return Err(self.error(start, "`#` directive not allowed here"));
            }
            let was_line_start = self.at_line_start;
            self.at_line_start = false;
            if !was_line_start {
                return Err(self.error(start, "stray `#` in program"));
            }
            return self.lex_directive(start);
        }
        self.at_line_start = false;

        if b.is_ascii_alphabetic() || b == b'_' {
            return Ok(self.lex_ident(start));
        }
        if b.is_ascii_digit() || (b == b'.' && self.peek2().is_ascii_digit()) {
            return self.lex_number(start);
        }
        if b == b'"' {
            return self.lex_string(start);
        }
        if b == b'\'' {
            return self.lex_char(start);
        }
        self.lex_punct(start)
    }

    fn lex_ident(&mut self, start: usize) -> Token {
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        Token::new(TokenKind::Ident(text.to_string()), self.span_from(start))
    }

    fn lex_number(&mut self, start: usize) -> Result<Token, LexError> {
        // Hexadecimal.
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.pos += 2;
            let digits_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.pos += 1;
            }
            if self.pos == digits_start {
                return Err(self.error(start, "missing digits in hexadecimal literal"));
            }
            let text = &self.src[digits_start..self.pos];
            self.eat_int_suffix();
            // Hex literals up to 64 bits wrap into i64 (C unsigned-long
            // semantics — needed for splitmix/xorshift RNG constants).
            let value = u64::from_str_radix(text, 16)
                .map_err(|_| self.error(start, "hexadecimal literal out of range"))?
                as i64;
            return Ok(Token::new(TokenKind::Int(value), self.span_from(start)));
        }

        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let save = self.pos;
            self.pos += 1;
            if self.peek() == b'+' || self.peek() == b'-' {
                self.pos += 1;
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            } else {
                // Not an exponent after all (e.g. `1else` won't occur, but
                // `2e` followed by an identifier char would be an error).
                self.pos = save;
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            // Optional float suffix.
            if matches!(self.peek(), b'f' | b'F' | b'l' | b'L') {
                self.pos += 1;
            }
            let value: f64 = text
                .parse()
                .map_err(|_| self.error(start, "malformed float literal"))?;
            Ok(Token::new(TokenKind::Float(value), self.span_from(start)))
        } else {
            let had_float_suffix = matches!(self.peek(), b'f' | b'F');
            self.eat_int_suffix();
            let span = self.span_from(start);
            if had_float_suffix {
                let value: f64 = text
                    .parse()
                    .map_err(|_| self.error(start, "malformed float literal"))?;
                return Ok(Token::new(TokenKind::Float(value), span));
            }
            let value: i64 = text
                .parse()
                .map_err(|_| self.error(start, "integer literal out of range"))?;
            Ok(Token::new(TokenKind::Int(value), span))
        }
    }

    fn eat_int_suffix(&mut self) {
        // Accept any combination of u/U/l/L (e.g. `10UL`), and a lone f/F
        // handled by the caller.
        while matches!(self.peek(), b'u' | b'U' | b'l' | b'L' | b'f' | b'F') {
            self.pos += 1;
        }
    }

    fn lex_string(&mut self, start: usize) -> Result<Token, LexError> {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            if self.pos >= self.bytes.len() || self.peek() == b'\n' {
                return Err(self.error(start, "unterminated string literal"));
            }
            match self.bump() {
                b'"' => break,
                b'\\' => {
                    let esc = self.bump();
                    value.push(unescape(esc).ok_or_else(|| {
                        self.error(start, format!("unknown escape `\\{}`", esc as char))
                    })?);
                }
                other => value.push(other as char),
            }
        }
        Ok(Token::new(TokenKind::Str(value), self.span_from(start)))
    }

    fn lex_char(&mut self, start: usize) -> Result<Token, LexError> {
        self.pos += 1; // opening quote
        let c = match self.bump() {
            b'\\' => {
                let esc = self.bump();
                unescape(esc).ok_or_else(|| {
                    self.error(start, format!("unknown escape `\\{}`", esc as char))
                })?
            }
            b'\'' => return Err(self.error(start, "empty character literal")),
            other => other as char,
        };
        if self.bump() != b'\'' {
            return Err(self.error(start, "unterminated character literal"));
        }
        Ok(Token::new(TokenKind::Char(c), self.span_from(start)))
    }

    /// Consume a full logical preprocessor line (honouring `\` continuations)
    /// and produce the corresponding structured token.
    fn lex_directive(&mut self, start: usize) -> Result<Token, LexError> {
        self.pos += 1; // '#'
                       // Directive name.
        while self.peek() == b' ' || self.peek() == b'\t' {
            self.pos += 1;
        }
        let name_start = self.pos;
        while self.peek().is_ascii_alphabetic() {
            self.pos += 1;
        }
        let name = self.src[name_start..self.pos].to_string();
        // Rest of the logical line.
        let mut rest = String::new();
        loop {
            match self.peek() {
                0 => break,
                b'\n' => break,
                b'\\' if self.peek2() == b'\n' => {
                    self.pos += 2;
                    rest.push(' ');
                }
                b'\\' if self.peek2() == b'\r' && self.peek3() == b'\n' => {
                    self.pos += 3;
                    rest.push(' ');
                }
                other => {
                    rest.push(other as char);
                    self.pos += 1;
                }
            }
        }
        let rest_trimmed = rest.trim().to_string();
        let span = self.span_from(start);

        match name.as_str() {
            "include" => {
                let (path, system) = parse_include_target(&rest_trimmed)
                    .ok_or_else(|| self.error(start, "malformed #include directive"))?;
                Ok(Token::new(TokenKind::Include { path, system }, span))
            }
            "pragma" => {
                let offset = span.start + (rest.len() as u32 - rest.trim_start().len() as u32);
                let tokens = lex_fragment(&rest_trimmed, offset).map_err(|e| LexError {
                    message: format!("in #pragma: {}", e.message),
                    span: e.span,
                })?;
                Ok(Token::new(
                    TokenKind::Pragma {
                        text: rest_trimmed,
                        tokens,
                    },
                    span,
                ))
            }
            "define" => {
                let mut parts = rest_trimmed.splitn(2, char::is_whitespace);
                let def_name = parts.next().unwrap_or("").to_string();
                if def_name.is_empty()
                    || !def_name
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    // Function-like macros (`#define MIN(a,b) ...`) and other
                    // exotica are preserved verbatim but not expanded.
                    return Ok(Token::new(
                        TokenKind::OtherDirective(format!("define {rest_trimmed}")),
                        span,
                    ));
                }
                let body_text = parts.next().unwrap_or("").trim().to_string();
                let body = lex_fragment(&body_text, span.start)?;
                Ok(Token::new(
                    TokenKind::Define {
                        name: def_name,
                        body,
                    },
                    span,
                ))
            }
            "" => Err(self.error(start, "missing preprocessor directive name")),
            other => Ok(Token::new(
                TokenKind::OtherDirective(format!("{other} {rest_trimmed}")),
                span,
            )),
        }
    }

    fn lex_punct(&mut self, start: usize) -> Result<Token, LexError> {
        use TokenKind::*;
        let b = self.bump();
        let kind = match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b'~' => Tilde,
            b'.' => Dot,
            b':' => {
                if self.peek() == b':' {
                    self.pos += 1;
                    ColonColon
                } else {
                    Colon
                }
            }
            b'+' => match self.peek() {
                b'+' => {
                    self.pos += 1;
                    PlusPlus
                }
                b'=' => {
                    self.pos += 1;
                    PlusEq
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.pos += 1;
                    MinusMinus
                }
                b'=' => {
                    self.pos += 1;
                    MinusEq
                }
                b'>' => {
                    self.pos += 1;
                    Arrow
                }
                _ => Minus,
            },
            b'*' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    StarEq
                } else {
                    Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    SlashEq
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    PercentEq
                } else {
                    Percent
                }
            }
            b'&' => match self.peek() {
                b'&' => {
                    self.pos += 1;
                    AmpAmp
                }
                b'=' => {
                    self.pos += 1;
                    AmpEq
                }
                _ => Amp,
            },
            b'|' => match self.peek() {
                b'|' => {
                    self.pos += 1;
                    PipePipe
                }
                b'=' => {
                    self.pos += 1;
                    PipeEq
                }
                _ => Pipe,
            },
            b'^' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    CaretEq
                } else {
                    Caret
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    Ne
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    EqEq
                } else {
                    Eq
                }
            }
            b'<' => {
                if self.peek() == b'<' && self.peek2() == b'<' {
                    self.pos += 2;
                    LaunchOpen
                } else if self.peek() == b'<' && self.peek2() == b'=' {
                    self.pos += 2;
                    ShlEq
                } else if self.peek() == b'<' {
                    self.pos += 1;
                    Shl
                } else if self.peek() == b'=' {
                    self.pos += 1;
                    Le
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.peek() == b'>' && self.peek2() == b'>' {
                    self.pos += 2;
                    LaunchClose
                } else if self.peek() == b'>' && self.peek2() == b'=' {
                    self.pos += 2;
                    ShrEq
                } else if self.peek() == b'>' {
                    self.pos += 1;
                    Shr
                } else if self.peek() == b'=' {
                    self.pos += 1;
                    Ge
                } else {
                    Gt
                }
            }
            other => {
                return Err(self.error(start, format!("unexpected character `{}`", other as char)))
            }
        };
        Ok(Token::new(kind, self.span_from(start)))
    }
}

fn unescape(b: u8) -> Option<char> {
    Some(match b {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'"' => '"',
        b'\'' => '\'',
        b'%' => '%', // tolerated: printf-style strings sometimes escape %
        _ => return None,
    })
}

fn parse_include_target(rest: &str) -> Option<(String, bool)> {
    let rest = rest.trim();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some((stripped[..end].to_string(), false))
    } else if let Some(stripped) = rest.strip_prefix('<') {
        let end = stripped.find('>')?;
        Some((stripped[..end].to_string(), true))
    } else {
        None
    }
}

/// Expand simple object-like macros in a token stream (single pass — macros
/// defined earlier in the stream substitute into later tokens only, which
/// matches how our apps use them for problem-size constants).
pub fn expand_defines(tokens: Vec<Token>) -> Vec<Token> {
    use std::collections::HashMap;
    let mut defs: HashMap<String, Vec<Token>> = HashMap::new();
    let mut out = Vec::with_capacity(tokens.len());
    for tok in tokens {
        match &tok.kind {
            TokenKind::Define { name, body } => {
                defs.insert(name.clone(), body.clone());
                // Keep the define in the stream so the printer can reproduce it.
                out.push(tok);
            }
            TokenKind::Ident(name) => {
                if let Some(body) = defs.get(name) {
                    for t in body {
                        out.push(Token::new(t.kind.clone(), tok.span));
                    }
                } else {
                    out.push(tok);
                }
            }
            _ => out.push(tok),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as K;

    fn kinds(src: &str) -> Vec<K> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_numbers() {
        let k = kinds("foo _bar42 12 3.5 0x1F 2e3 1.0f 7UL");
        assert_eq!(
            k,
            vec![
                K::Ident("foo".into()),
                K::Ident("_bar42".into()),
                K::Int(12),
                K::Float(3.5),
                K::Int(31),
                K::Float(2000.0),
                K::Float(1.0),
                K::Int(7),
                K::Eof
            ]
        );
    }

    #[test]
    fn large_hex_wraps_to_i64() {
        let k = kinds("0x9E3779B97F4A7C15");
        assert_eq!(k[0], K::Int(0x9E3779B97F4A7C15u64 as i64));
    }

    #[test]
    fn int_with_float_suffix_is_float() {
        assert_eq!(kinds("2f"), vec![K::Float(2.0), K::Eof]);
    }

    #[test]
    fn punctuation_maximal_munch() {
        let k = kinds("a <<< b >>> c << d >> e <= >= == != ->");
        assert!(k.contains(&K::LaunchOpen));
        assert!(k.contains(&K::LaunchClose));
        assert!(k.contains(&K::Shl));
        assert!(k.contains(&K::Shr));
        assert!(k.contains(&K::Le));
        assert!(k.contains(&K::Arrow));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("a // line comment\n/* block\ncomment */ b");
        assert_eq!(k, vec![K::Ident("a".into()), K::Ident("b".into()), K::Eof]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn string_escapes() {
        let k = kinds(r#""hello\nworld""#);
        assert_eq!(k, vec![K::Str("hello\nworld".into()), K::Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn include_local_and_system() {
        let k = kinds("#include \"kernel.h\"\n#include <stdio.h>\nint x;");
        assert_eq!(
            k[0],
            K::Include {
                path: "kernel.h".into(),
                system: false
            }
        );
        assert_eq!(
            k[1],
            K::Include {
                path: "stdio.h".into(),
                system: true
            }
        );
    }

    #[test]
    fn pragma_is_sublexed() {
        let toks = lex("#pragma omp parallel for collapse(2)\nint x;").unwrap();
        match &toks[0].kind {
            K::Pragma { text, tokens } => {
                assert_eq!(text, "omp parallel for collapse(2)");
                assert_eq!(tokens[0].kind, K::Ident("omp".into()));
                assert_eq!(tokens.last().unwrap().kind, K::RParen);
            }
            other => panic!("expected pragma, got {other:?}"),
        }
    }

    #[test]
    fn pragma_line_continuation() {
        let toks = lex("#pragma omp target teams \\\n    distribute parallel for\nint x;").unwrap();
        match &toks[0].kind {
            K::Pragma { text, .. } => {
                assert!(text.contains("distribute parallel for"), "{text}");
            }
            other => panic!("expected pragma, got {other:?}"),
        }
    }

    #[test]
    fn define_object_like() {
        let toks = lex("#define N 256\nint a = N;").unwrap();
        match &toks[0].kind {
            K::Define { name, body } => {
                assert_eq!(name, "N");
                assert_eq!(body[0].kind, K::Int(256));
            }
            other => panic!("expected define, got {other:?}"),
        }
    }

    #[test]
    fn define_function_like_preserved_not_expanded() {
        let toks = lex("#define MIN(a,b) ((a)<(b)?(a):(b))\nint x;").unwrap();
        assert!(matches!(toks[0].kind, K::OtherDirective(_)));
    }

    #[test]
    fn expand_defines_substitutes_later_uses() {
        let toks = lex("#define N 16\nint a = N + N;").unwrap();
        let expanded = expand_defines(toks);
        let ints = expanded
            .iter()
            .filter(|t| matches!(t.kind, K::Int(16)))
            .count();
        assert_eq!(ints, 2);
    }

    #[test]
    fn stray_hash_mid_line_errors() {
        assert!(lex("int x = 3 # 4;").is_err());
    }

    #[test]
    fn ifdef_preserved_as_other_directive() {
        let toks = lex("#ifdef FOO\nint x;\n#endif\n").unwrap();
        assert!(matches!(&toks[0].kind, K::OtherDirective(d) if d.starts_with("ifdef")));
    }

    #[test]
    fn spans_resolve_lines() {
        let src = "int x;\nfloat y;\n";
        let toks = lex(src).unwrap();
        let y_tok = toks
            .iter()
            .find(|t| t.kind == K::Ident("y".into()))
            .unwrap();
        assert_eq!(crate::span::line_col(src, y_tok.span.start).line, 2);
    }
}
