//! Structured representation of OpenMP directives.
//!
//! The paper's translation tasks revolve around rewriting these directives
//! (threads → offload) or synthesising them from CUDA kernels, and one of the
//! headline failure modes (Listing 4) is a directive with missing
//! `target` / `parallel for` constructs — so directives are first-class AST.

use crate::ast::Expr;
use crate::span::Span;
use std::fmt;

/// An OpenMP construct keyword appearing in a directive line, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OmpConstruct {
    Parallel,
    For,
    Simd,
    Target,
    Teams,
    Distribute,
    /// `target data` region.
    TargetData,
    /// `target update`.
    TargetUpdate,
    Barrier,
    Critical,
    Atomic,
    Single,
    Master,
}

impl OmpConstruct {
    pub fn keyword(self) -> &'static str {
        match self {
            OmpConstruct::Parallel => "parallel",
            OmpConstruct::For => "for",
            OmpConstruct::Simd => "simd",
            OmpConstruct::Target => "target",
            OmpConstruct::Teams => "teams",
            OmpConstruct::Distribute => "distribute",
            OmpConstruct::TargetData => "target data",
            OmpConstruct::TargetUpdate => "target update",
            OmpConstruct::Barrier => "barrier",
            OmpConstruct::Critical => "critical",
            OmpConstruct::Atomic => "atomic",
            OmpConstruct::Single => "single",
            OmpConstruct::Master => "master",
        }
    }

    /// Does this construct require an attached statement (loop or block)?
    pub fn needs_body(self) -> bool {
        !matches!(self, OmpConstruct::Barrier | OmpConstruct::TargetUpdate)
    }
}

/// Reduction operators accepted in `reduction(op: vars)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionOp {
    Add,
    Mul,
    Min,
    Max,
    BitXor,
    BitAnd,
    BitOr,
}

impl ReductionOp {
    pub fn symbol(self) -> &'static str {
        match self {
            ReductionOp::Add => "+",
            ReductionOp::Mul => "*",
            ReductionOp::Min => "min",
            ReductionOp::Max => "max",
            ReductionOp::BitXor => "^",
            ReductionOp::BitAnd => "&",
            ReductionOp::BitOr => "|",
        }
    }

    pub fn from_symbol(s: &str) -> Option<Self> {
        Some(match s {
            "+" => ReductionOp::Add,
            "*" => ReductionOp::Mul,
            "min" => ReductionOp::Min,
            "max" => ReductionOp::Max,
            "^" => ReductionOp::BitXor,
            "&" => ReductionOp::BitAnd,
            "|" => ReductionOp::BitOr,
            _ => return None,
        })
    }
}

/// Data-mapping direction for `map(...)` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapKind {
    To,
    From,
    ToFrom,
    Alloc,
}

impl MapKind {
    pub fn keyword(self) -> &'static str {
        match self {
            MapKind::To => "to",
            MapKind::From => "from",
            MapKind::ToFrom => "tofrom",
            MapKind::Alloc => "alloc",
        }
    }

    pub fn copies_to_device(self) -> bool {
        matches!(self, MapKind::To | MapKind::ToFrom)
    }

    pub fn copies_from_device(self) -> bool {
        matches!(self, MapKind::From | MapKind::ToFrom)
    }
}

/// An array section in a map clause: `x[lo : len]` (possibly multi-dim), or a
/// bare variable name.
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySection {
    pub var: String,
    /// Each `[lo:len]` pair; empty for a bare scalar mapping.
    pub ranges: Vec<(Expr, Expr)>,
}

impl ArraySection {
    pub fn scalar(var: impl Into<String>) -> Self {
        ArraySection {
            var: var.into(),
            ranges: vec![],
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum OmpClause {
    NumThreads(Expr),
    NumTeams(Expr),
    ThreadLimit(Expr),
    Collapse(i64),
    Reduction {
        op: ReductionOp,
        vars: Vec<String>,
    },
    Map {
        kind: MapKind,
        sections: Vec<ArraySection>,
    },
    Private(Vec<String>),
    FirstPrivate(Vec<String>),
    Shared(Vec<String>),
    Schedule {
        kind: String,
        chunk: Option<Expr>,
    },
    Default(String),
    If(Expr),
    Device(Expr),
    /// Clause we don't model; kept for faithful printing and lenient
    /// validation (real compilers warn on many of these).
    Unknown {
        name: String,
        text: String,
    },
}

impl OmpClause {
    pub fn name(&self) -> &str {
        match self {
            OmpClause::NumThreads(_) => "num_threads",
            OmpClause::NumTeams(_) => "num_teams",
            OmpClause::ThreadLimit(_) => "thread_limit",
            OmpClause::Collapse(_) => "collapse",
            OmpClause::Reduction { .. } => "reduction",
            OmpClause::Map { .. } => "map",
            OmpClause::Private(_) => "private",
            OmpClause::FirstPrivate(_) => "firstprivate",
            OmpClause::Shared(_) => "shared",
            OmpClause::Schedule { .. } => "schedule",
            OmpClause::Default(_) => "default",
            OmpClause::If(_) => "if",
            OmpClause::Device(_) => "device",
            OmpClause::Unknown { name, .. } => name,
        }
    }
}

/// A full `#pragma omp ...` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct OmpDirective {
    pub constructs: Vec<OmpConstruct>,
    pub clauses: Vec<OmpClause>,
    pub span: Span,
}

impl OmpDirective {
    pub fn new(constructs: Vec<OmpConstruct>) -> Self {
        OmpDirective {
            constructs,
            clauses: vec![],
            span: Span::DUMMY,
        }
    }

    pub fn with_clause(mut self, clause: OmpClause) -> Self {
        self.clauses.push(clause);
        self
    }

    pub fn has(&self, c: OmpConstruct) -> bool {
        self.constructs.contains(&c)
    }

    /// Does this directive move execution to the device?
    pub fn targets_device(&self) -> bool {
        self.has(OmpConstruct::Target) || self.has(OmpConstruct::TargetData)
    }

    /// Is this a worksharing-loop directive (i.e. must be followed by a
    /// `for` statement)?
    pub fn is_loop_directive(&self) -> bool {
        self.has(OmpConstruct::For) || self.has(OmpConstruct::Distribute)
    }

    /// Is this a standalone directive (no attached statement)?
    pub fn is_standalone(&self) -> bool {
        self.constructs.iter().all(|c| !c.needs_body())
    }

    /// Does it open a structured block rather than a loop (`parallel`,
    /// `target`, `target data`, `teams` without a loop construct)?
    pub fn opens_region(&self) -> bool {
        !self.is_loop_directive() && !self.is_standalone()
    }

    pub fn collapse(&self) -> i64 {
        self.clauses
            .iter()
            .find_map(|c| match c {
                OmpClause::Collapse(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(1)
    }

    pub fn map_clauses(&self) -> impl Iterator<Item = (&MapKind, &Vec<ArraySection>)> {
        self.clauses.iter().filter_map(|c| match c {
            OmpClause::Map { kind, sections } => Some((kind, sections)),
            _ => None,
        })
    }

    pub fn reductions(&self) -> impl Iterator<Item = (&ReductionOp, &Vec<String>)> {
        self.clauses.iter().filter_map(|c| match c {
            OmpClause::Reduction { op, vars } => Some((op, vars)),
            _ => None,
        })
    }

    /// Canonical directive text, e.g.
    /// `omp target teams distribute parallel for collapse(2)`.
    pub fn text(&self) -> String {
        let mut out = String::from("omp");
        for c in &self.constructs {
            out.push(' ');
            out.push_str(c.keyword());
        }
        for cl in &self.clauses {
            out.push(' ');
            out.push_str(&crate::printer::clause_to_string(cl));
        }
        out
    }
}

impl fmt::Display for OmpDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#pragma {}", self.text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_predicates() {
        let d = OmpDirective::new(vec![
            OmpConstruct::Target,
            OmpConstruct::Teams,
            OmpConstruct::Distribute,
            OmpConstruct::Parallel,
            OmpConstruct::For,
        ]);
        assert!(d.targets_device());
        assert!(d.is_loop_directive());
        assert!(!d.is_standalone());

        let listing4 = OmpDirective::new(vec![OmpConstruct::Teams, OmpConstruct::Distribute]);
        assert!(!listing4.targets_device(), "paper Listing 4: no target");
        assert!(listing4.is_loop_directive());

        let barrier = OmpDirective::new(vec![OmpConstruct::Barrier]);
        assert!(barrier.is_standalone());

        let data = OmpDirective::new(vec![OmpConstruct::TargetData]);
        assert!(data.opens_region());
    }

    #[test]
    fn collapse_default_is_one() {
        let d = OmpDirective::new(vec![OmpConstruct::Parallel, OmpConstruct::For]);
        assert_eq!(d.collapse(), 1);
        let d = d.with_clause(OmpClause::Collapse(2));
        assert_eq!(d.collapse(), 2);
    }

    #[test]
    fn map_kind_directions() {
        assert!(MapKind::To.copies_to_device());
        assert!(!MapKind::To.copies_from_device());
        assert!(MapKind::From.copies_from_device());
        assert!(MapKind::ToFrom.copies_to_device() && MapKind::ToFrom.copies_from_device());
        assert!(!MapKind::Alloc.copies_to_device());
    }

    #[test]
    fn reduction_symbols() {
        for op in [
            ReductionOp::Add,
            ReductionOp::Mul,
            ReductionOp::Min,
            ReductionOp::Max,
            ReductionOp::BitXor,
            ReductionOp::BitAnd,
            ReductionOp::BitOr,
        ] {
            assert_eq!(ReductionOp::from_symbol(op.symbol()), Some(op));
        }
    }
}
