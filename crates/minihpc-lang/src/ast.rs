//! Abstract syntax tree for MiniHPC.
//!
//! One AST covers all four execution-model dialects; dialect-specific
//! constructs (CUDA kernel launches, OpenMP pragmas, Kokkos views/lambdas)
//! are ordinary nodes that semantic analysis accepts or rejects depending on
//! the programming model a translation unit is compiled for.

use crate::pragma::OmpDirective;
use crate::span::Span;

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

/// Builtin scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    Void,
    Bool,
    Char,
    Int,
    Long,
    SizeT,
    Float,
    Double,
}

impl ScalarType {
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            ScalarType::Bool
                | ScalarType::Char
                | ScalarType::Int
                | ScalarType::Long
                | ScalarType::SizeT
        )
    }

    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::Float | ScalarType::Double)
    }

    pub fn keyword(self) -> &'static str {
        match self {
            ScalarType::Void => "void",
            ScalarType::Bool => "bool",
            ScalarType::Char => "char",
            ScalarType::Int => "int",
            ScalarType::Long => "long",
            ScalarType::SizeT => "size_t",
            ScalarType::Float => "float",
            ScalarType::Double => "double",
        }
    }

    pub fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "void" => ScalarType::Void,
            "bool" => ScalarType::Bool,
            "char" => ScalarType::Char,
            "int" => ScalarType::Int,
            "long" => ScalarType::Long,
            "size_t" => ScalarType::SizeT,
            "float" => ScalarType::Float,
            "double" => ScalarType::Double,
            _ => return None,
        })
    }
}

/// A MiniHPC type.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    Scalar(ScalarType),
    /// Pointer to a type: `T*`.
    Ptr(Box<Type>),
    /// `const`-qualified type.
    Const(Box<Type>),
    /// A named (struct/typedef) type.
    Named(String),
    /// CUDA `dim3`.
    Dim3,
    /// Kokkos `View<elem (*s)>`: element type plus rank (number of `*`s).
    View {
        elem: ScalarType,
        rank: u8,
    },
}

impl Type {
    pub const INT: Type = Type::Scalar(ScalarType::Int);
    pub const DOUBLE: Type = Type::Scalar(ScalarType::Double);
    pub const VOID: Type = Type::Scalar(ScalarType::Void);

    pub fn ptr(inner: Type) -> Type {
        Type::Ptr(Box::new(inner))
    }

    /// Strip `const` qualifiers at the top level.
    pub fn unqualified(&self) -> &Type {
        match self {
            Type::Const(inner) => inner.unqualified(),
            other => other,
        }
    }

    pub fn is_pointer(&self) -> bool {
        matches!(self.unqualified(), Type::Ptr(_))
    }

    pub fn is_view(&self) -> bool {
        matches!(self.unqualified(), Type::View { .. })
    }

    pub fn is_numeric(&self) -> bool {
        match self.unqualified() {
            Type::Scalar(s) => *s != ScalarType::Void,
            _ => false,
        }
    }

    /// Element type of a pointer or view, if any.
    pub fn pointee(&self) -> Option<&Type> {
        match self.unqualified() {
            Type::Ptr(inner) => Some(inner),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
    BitNot,
    /// `*p`
    Deref,
    /// `&x`
    AddrOf,
    PreInc,
    PreDec,
    PostInc,
    PostDec,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitOr,
    BitXor,
    And,
    Or,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Lambda capture mode (`[=]`, `[&]`, or the `KOKKOS_LAMBDA` macro which is
/// by-value capture plus host/device annotation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureMode {
    ByValue,
    ByRef,
    KokkosLambda,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Convenience constructor used heavily by the transpilers.
    pub fn synth(kind: ExprKind) -> Self {
        Expr {
            kind,
            span: Span::DUMMY,
        }
    }

    pub fn ident(name: impl Into<String>) -> Self {
        Expr::synth(ExprKind::Ident(name.into()))
    }

    pub fn int(v: i64) -> Self {
        Expr::synth(ExprKind::IntLit(v))
    }

    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::synth(ExprKind::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    pub fn call(callee: Expr, args: Vec<Expr>) -> Self {
        Expr::synth(ExprKind::Call {
            callee: Box::new(callee),
            args,
        })
    }

    pub fn path(segments: &[&str]) -> Self {
        Expr::synth(ExprKind::Path(
            segments.iter().map(|s| s.to_string()).collect(),
        ))
    }

    pub fn index(base: Expr, idx: Expr) -> Self {
        Expr::synth(ExprKind::Index {
            base: Box::new(base),
            index: Box::new(idx),
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    CharLit(char),
    BoolLit(bool),
    Ident(String),
    /// A `::`-separated path such as `Kokkos::parallel_for`.
    Path(Vec<String>),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `lhs = rhs` or compound `lhs op= rhs`.
    Assign {
        op: Option<BinOp>,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Ternary {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    /// CUDA kernel launch: `name<<<grid, block>>>(args)`.
    KernelLaunch {
        kernel: String,
        grid: Box<Expr>,
        block: Box<Expr>,
        args: Vec<Expr>,
    },
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    Member {
        base: Box<Expr>,
        member: String,
        arrow: bool,
    },
    Cast {
        ty: Type,
        expr: Box<Expr>,
    },
    SizeOfType(Type),
    SizeOfExpr(Box<Expr>),
    /// C++/Kokkos lambda.
    Lambda {
        capture: CaptureMode,
        params: Vec<Param>,
        body: Block,
    },
    /// Parenthesised sub-expression (kept so the printer round-trips and the
    /// injectors can target user-visible structure).
    Paren(Box<Expr>),
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

impl Block {
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block {
            stmts,
            span: Span::DUMMY,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

impl Stmt {
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }

    pub fn synth(kind: StmtKind) -> Self {
        Stmt {
            kind,
            span: Span::DUMMY,
        }
    }

    pub fn expr(e: Expr) -> Self {
        Stmt::synth(StmtKind::Expr(e))
    }
}

/// Variable initialiser.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// `= expr`
    Expr(Expr),
    /// `= { e, e, ... }`
    List(Vec<Expr>),
    /// C++ constructor syntax: `dim3 grid(gx, gy);`, `View<double*> a("a", n);`
    Ctor(Vec<Expr>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    pub name: String,
    pub ty: Type,
    /// Fixed array dimensions, e.g. `double a[N][M]` (dimension expressions).
    pub array_dims: Vec<Expr>,
    pub init: Option<Init>,
    pub is_static: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    Decl(VarDecl),
    Expr(Expr),
    If {
        cond: Expr,
        then: Box<Stmt>,
        els: Option<Box<Stmt>>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Block(Block),
    /// An OpenMP directive, possibly attached to the statement it governs
    /// (loop constructs) or standalone (`barrier`) or opening a structured
    /// block (`target data { ... }`).
    Omp {
        directive: OmpDirective,
        body: Option<Box<Stmt>>,
    },
    /// A non-OpenMP pragma kept verbatim.
    RawPragma(String),
    Empty,
}

// ---------------------------------------------------------------------------
// Items
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub ty: Type,
    pub name: String,
}

impl Param {
    pub fn new(ty: Type, name: impl Into<String>) -> Self {
        Param {
            ty,
            name: name.into(),
        }
    }
}

/// Function qualifiers across dialects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FnQuals {
    /// CUDA `__global__` (kernel entry point).
    pub cuda_global: bool,
    /// CUDA `__device__`.
    pub cuda_device: bool,
    /// CUDA `__host__`.
    pub cuda_host: bool,
    pub is_static: bool,
    pub is_inline: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub quals: FnQuals,
    pub ret: Type,
    pub name: String,
    pub params: Vec<Param>,
    /// `None` for a forward declaration / extern prototype.
    pub body: Option<Block>,
    pub span: Span,
}

impl Function {
    pub fn is_definition(&self) -> bool {
        self.body.is_some()
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub ty: Type,
    pub name: String,
    pub array_dims: Vec<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<Field>,
    /// True when declared `typedef struct {...} Name;`.
    pub is_typedef: bool,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    pub kind: ItemKind,
    pub span: Span,
}

impl Item {
    pub fn synth(kind: ItemKind) -> Self {
        Item {
            kind,
            span: Span::DUMMY,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum ItemKind {
    Include {
        path: String,
        system: bool,
    },
    /// Preserved object-like macro: name and original body text.
    Define {
        name: String,
        body_text: String,
    },
    /// Preserved unknown preprocessor directive.
    OtherDirective(String),
    Struct(StructDef),
    Global(VarDecl),
    Function(Function),
}

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceFile {
    pub items: Vec<Item>,
}

impl SourceFile {
    /// Iterate over function definitions in the file.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match &i.kind {
            ItemKind::Function(f) => Some(f),
            _ => None,
        })
    }

    pub fn functions_mut(&mut self) -> impl Iterator<Item = &mut Function> {
        self.items.iter_mut().filter_map(|i| match &mut i.kind {
            ItemKind::Function(f) => Some(f),
            _ => None,
        })
    }

    /// Local (quoted) include paths referenced by this file.
    pub fn local_includes(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Include {
                    path,
                    system: false,
                } => Some(path.as_str()),
                _ => None,
            })
            .collect()
    }

    pub fn find_function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_helpers() {
        let t = Type::Const(Box::new(Type::ptr(Type::INT)));
        assert!(t.is_pointer());
        assert_eq!(t.unqualified(), &Type::ptr(Type::INT));
        assert_eq!(t.pointee(), Some(&Type::INT));
        assert!(!Type::VOID.is_numeric());
        assert!(Type::DOUBLE.is_numeric());
    }

    #[test]
    fn scalar_keywords_roundtrip() {
        for s in [
            ScalarType::Void,
            ScalarType::Bool,
            ScalarType::Char,
            ScalarType::Int,
            ScalarType::Long,
            ScalarType::SizeT,
            ScalarType::Float,
            ScalarType::Double,
        ] {
            assert_eq!(ScalarType::from_keyword(s.keyword()), Some(s));
        }
        assert_eq!(ScalarType::from_keyword("quux"), None);
    }

    #[test]
    fn expr_builders() {
        let e = Expr::binary(BinOp::Add, Expr::int(1), Expr::ident("x"));
        match e.kind {
            ExprKind::Binary { op, .. } => assert_eq!(op, BinOp::Add),
            _ => panic!(),
        }
    }

    #[test]
    fn source_file_queries() {
        let f = Function {
            quals: FnQuals::default(),
            ret: Type::VOID,
            name: "main".into(),
            params: vec![],
            body: Some(Block::new(vec![])),
            span: Span::DUMMY,
        };
        let sf = SourceFile {
            items: vec![
                Item::synth(ItemKind::Include {
                    path: "kernel.h".into(),
                    system: false,
                }),
                Item::synth(ItemKind::Include {
                    path: "stdio.h".into(),
                    system: true,
                }),
                Item::synth(ItemKind::Function(f)),
            ],
        };
        assert_eq!(sf.local_includes(), vec!["kernel.h"]);
        assert!(sf.find_function("main").is_some());
        assert!(sf.find_function("missing").is_none());
    }

    #[test]
    fn binop_symbols_unique() {
        use std::collections::HashSet;
        let ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Lt,
            BinOp::Gt,
            BinOp::Le,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::BitAnd,
            BinOp::BitOr,
            BinOp::BitXor,
            BinOp::And,
            BinOp::Or,
        ];
        let syms: HashSet<_> = ops.iter().map(|o| o.symbol()).collect();
        assert_eq!(syms.len(), ops.len());
    }
}
