//! Source-code statistics: source lines of code (SLoC) and cyclomatic
//! complexity (CC), reproducing the `pmccabe`-style numbers of paper Table 1.

use crate::ast::*;

/// Statistics for one source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FileStats {
    /// Non-blank, non-comment source lines.
    pub sloc: usize,
    /// Sum of per-function cyclomatic complexity (pmccabe's "modified"
    /// count: decision points + 1 per function).
    pub cyclomatic: usize,
    /// Number of function definitions.
    pub functions: usize,
}

impl FileStats {
    pub fn merge(&mut self, other: FileStats) {
        self.sloc += other.sloc;
        self.cyclomatic += other.cyclomatic;
        self.functions += other.functions;
    }
}

/// Count non-blank, non-comment lines in raw source text.
pub fn sloc(text: &str) -> usize {
    let mut count = 0;
    let mut in_block_comment = false;
    for line in text.lines() {
        let mut content = false;
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if in_block_comment {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    in_block_comment = false;
                    i += 2;
                    continue;
                }
                i += 1;
                continue;
            }
            match bytes[i] {
                b' ' | b'\t' | b'\r' => i += 1,
                b'/' if bytes.get(i + 1) == Some(&b'/') => break,
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    in_block_comment = true;
                    i += 2;
                }
                _ => {
                    content = true;
                    i += 1;
                }
            }
        }
        if content {
            count += 1;
        }
    }
    count
}

/// Cyclomatic complexity of a single function: 1 + number of decision points
/// (`if`, `for`, `while`, ternary, `&&`, `||`).
pub fn function_complexity(f: &Function) -> usize {
    let mut cc = 1;
    if let Some(body) = &f.body {
        for s in &body.stmts {
            cc += stmt_decisions(s);
        }
    }
    cc
}

/// Full statistics for a file, combining text-level SLoC with AST-level CC.
pub fn file_stats(text: &str, file: &SourceFile) -> FileStats {
    let mut stats = FileStats {
        sloc: sloc(text),
        ..FileStats::default()
    };
    for f in file.functions() {
        if f.is_definition() {
            stats.functions += 1;
            stats.cyclomatic += function_complexity(f);
        }
    }
    stats
}

fn stmt_decisions(s: &Stmt) -> usize {
    match &s.kind {
        StmtKind::Decl(d) => match &d.init {
            Some(Init::Expr(e)) => expr_decisions(e),
            Some(Init::List(es)) | Some(Init::Ctor(es)) => es.iter().map(expr_decisions).sum(),
            None => 0,
        },
        StmtKind::Expr(e) => expr_decisions(e),
        StmtKind::If { cond, then, els } => {
            1 + expr_decisions(cond)
                + stmt_decisions(then)
                + els.as_ref().map_or(0, |e| stmt_decisions(e))
        }
        StmtKind::While { cond, body } => 1 + expr_decisions(cond) + stmt_decisions(body),
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            1 + init.as_ref().map_or(0, |i| stmt_decisions(i))
                + cond.as_ref().map_or(0, expr_decisions)
                + step.as_ref().map_or(0, expr_decisions)
                + stmt_decisions(body)
        }
        StmtKind::Return(e) => e.as_ref().map_or(0, expr_decisions),
        StmtKind::Block(b) => b.stmts.iter().map(stmt_decisions).sum(),
        StmtKind::Omp { body, .. } => body.as_ref().map_or(0, |b| stmt_decisions(b)),
        _ => 0,
    }
}

fn expr_decisions(e: &Expr) -> usize {
    match &e.kind {
        ExprKind::Binary { op, lhs, rhs } => {
            let here = usize::from(op.is_logical());
            here + expr_decisions(lhs) + expr_decisions(rhs)
        }
        ExprKind::Ternary { cond, then, els } => {
            1 + expr_decisions(cond) + expr_decisions(then) + expr_decisions(els)
        }
        ExprKind::Unary { expr, .. } => expr_decisions(expr),
        ExprKind::Assign { lhs, rhs, .. } => expr_decisions(lhs) + expr_decisions(rhs),
        ExprKind::Call { callee, args } => {
            expr_decisions(callee) + args.iter().map(expr_decisions).sum::<usize>()
        }
        ExprKind::KernelLaunch {
            grid, block, args, ..
        } => {
            expr_decisions(grid)
                + expr_decisions(block)
                + args.iter().map(expr_decisions).sum::<usize>()
        }
        ExprKind::Index { base, index } => expr_decisions(base) + expr_decisions(index),
        ExprKind::Member { base, .. } => expr_decisions(base),
        ExprKind::Cast { expr, .. } => expr_decisions(expr),
        ExprKind::SizeOfExpr(e) => expr_decisions(e),
        ExprKind::Lambda { body, .. } => body.stmts.iter().map(stmt_decisions).sum(),
        ExprKind::Paren(inner) => expr_decisions(inner),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    #[test]
    fn sloc_ignores_comments_and_blanks() {
        let text = "int x;\n\n// comment only\n/* block\n   comment */\nint y; // trailing\n";
        assert_eq!(sloc(text), 2);
    }

    #[test]
    fn sloc_code_before_block_comment_counts() {
        assert_eq!(sloc("int x; /* c */\n"), 1);
        assert_eq!(sloc("/* c */ int x;\n"), 1);
    }

    #[test]
    fn straight_line_function_has_cc_1() {
        let sf = parse_file("int f() { return 1; }").unwrap();
        assert_eq!(function_complexity(sf.find_function("f").unwrap()), 1);
    }

    #[test]
    fn branches_and_logicals_count() {
        let src = r#"
int f(int i, int j, int n) {
    int count = 0;
    if (i < n && j < n) {
        if (i > 0) count++;
        if (j > 0) count++;
    }
    return (count == 1) ? 1 : 0;
}
"#;
        let sf = parse_file(src).unwrap();
        // 1 (base) + if + && + if + if + ternary = 6
        assert_eq!(function_complexity(sf.find_function("f").unwrap()), 6);
    }

    #[test]
    fn loops_count() {
        let src = "void f(int n) { for (int i = 0; i < n; i++) { while (n > 0) { n--; } } }";
        let sf = parse_file(src).unwrap();
        assert_eq!(function_complexity(sf.find_function("f").unwrap()), 3);
    }

    #[test]
    fn file_stats_sums_functions() {
        let src = "int a() { return 1; }\nint b(int x) { if (x) return 1; return 0; }\n";
        let sf = parse_file(src).unwrap();
        let stats = file_stats(src, &sf);
        assert_eq!(stats.functions, 2);
        assert_eq!(stats.cyclomatic, 1 + 2);
        assert_eq!(stats.sloc, 2);
    }

    #[test]
    fn omp_body_counted() {
        let src = r#"
void f(int* a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) { if (a[i] > 0) a[i] = 0; }
}
"#;
        let sf = parse_file(src).unwrap();
        assert_eq!(function_complexity(sf.find_function("f").unwrap()), 3);
    }
}
