//! Parallel programming (execution) models and detection of which model a
//! source file is written in.
//!
//! The paper's correctness criterion requires a translation to be
//! "implemented using the requested target programming model"; the detector
//! here is what the harness uses to enforce that (e.g. a "translation" that
//! leaves CUDA kernel launches in place is rejected even if it runs).

use crate::ast::{Expr, ExprKind, ItemKind, SourceFile, Stmt, StmtKind};
use crate::pragma::OmpDirective;
use std::fmt;

/// The four parallel programming models in ParEval-Repo (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExecutionModel {
    /// OpenMP CPU threading (`#pragma omp parallel for`).
    OmpThreads,
    /// OpenMP GPU offloading (`#pragma omp target ...`).
    OmpOffload,
    /// NVIDIA CUDA (`__global__`, `<<<...>>>`).
    Cuda,
    /// Kokkos (views, `parallel_for`, lambdas).
    Kokkos,
}

impl ExecutionModel {
    pub const ALL: [ExecutionModel; 4] = [
        ExecutionModel::OmpThreads,
        ExecutionModel::OmpOffload,
        ExecutionModel::Cuda,
        ExecutionModel::Kokkos,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionModel::OmpThreads => "OpenMP Threads",
            ExecutionModel::OmpOffload => "OpenMP Offload",
            ExecutionModel::Cuda => "CUDA",
            ExecutionModel::Kokkos => "Kokkos",
        }
    }

    /// Short identifier used in file names and reports.
    pub fn id(self) -> &'static str {
        match self {
            ExecutionModel::OmpThreads => "omp-threads",
            ExecutionModel::OmpOffload => "omp-offload",
            ExecutionModel::Cuda => "cuda",
            ExecutionModel::Kokkos => "kokkos",
        }
    }

    /// Does code in this model execute on the (simulated) GPU?
    pub fn is_gpu(self) -> bool {
        !matches!(self, ExecutionModel::OmpThreads)
    }

    /// The build system generator conventionally used with this model in the
    /// paper's tasks (Kokkos uses CMake; the rest use Make).
    pub fn build_system(self) -> BuildSystemKind {
        match self {
            ExecutionModel::Kokkos => BuildSystemKind::CMake,
            _ => BuildSystemKind::Make,
        }
    }
}

impl fmt::Display for ExecutionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which build-system generator a repository uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BuildSystemKind {
    Make,
    CMake,
}

impl BuildSystemKind {
    pub fn file_name(self) -> &'static str {
        match self {
            BuildSystemKind::Make => "Makefile",
            BuildSystemKind::CMake => "CMakeLists.txt",
        }
    }
}

/// A translation pair: source model → destination model (paper Sec. 5.2).
/// `Ord` follows the `(from, to)` field order so the pair can key an
/// allocation-free cell index ([`ExecutionModel`] is already `Ord`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TranslationPair {
    pub from: ExecutionModel,
    pub to: ExecutionModel,
}

impl TranslationPair {
    pub const CUDA_TO_OMP_OFFLOAD: TranslationPair = TranslationPair {
        from: ExecutionModel::Cuda,
        to: ExecutionModel::OmpOffload,
    };
    pub const CUDA_TO_KOKKOS: TranslationPair = TranslationPair {
        from: ExecutionModel::Cuda,
        to: ExecutionModel::Kokkos,
    };
    pub const OMP_THREADS_TO_OFFLOAD: TranslationPair = TranslationPair {
        from: ExecutionModel::OmpThreads,
        to: ExecutionModel::OmpOffload,
    };

    /// The three pairs evaluated in the paper, in figure order.
    pub const ALL: [TranslationPair; 3] = [
        Self::CUDA_TO_OMP_OFFLOAD,
        Self::CUDA_TO_KOKKOS,
        Self::OMP_THREADS_TO_OFFLOAD,
    ];

    pub fn id(self) -> String {
        format!("{}-to-{}", self.from.id(), self.to.id())
    }
}

impl fmt::Display for TranslationPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} to {}", self.from, self.to)
    }
}

/// Evidence of execution-model usage found in a source file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelUsage {
    pub cuda_kernels: usize,
    pub cuda_launches: usize,
    pub cuda_api_calls: usize,
    pub omp_parallel_directives: usize,
    pub omp_target_directives: usize,
    pub kokkos_views: usize,
    pub kokkos_parallel_calls: usize,
}

impl ModelUsage {
    pub fn merge(&mut self, other: &ModelUsage) {
        self.cuda_kernels += other.cuda_kernels;
        self.cuda_launches += other.cuda_launches;
        self.cuda_api_calls += other.cuda_api_calls;
        self.omp_parallel_directives += other.omp_parallel_directives;
        self.omp_target_directives += other.omp_target_directives;
        self.kokkos_views += other.kokkos_views;
        self.kokkos_parallel_calls += other.kokkos_parallel_calls;
    }

    pub fn uses_cuda(&self) -> bool {
        self.cuda_kernels + self.cuda_launches + self.cuda_api_calls > 0
    }

    pub fn uses_omp_offload(&self) -> bool {
        self.omp_target_directives > 0
    }

    pub fn uses_omp_threads(&self) -> bool {
        self.omp_parallel_directives > 0 && self.omp_target_directives == 0
    }

    pub fn uses_kokkos(&self) -> bool {
        self.kokkos_views + self.kokkos_parallel_calls > 0
    }

    /// Which models this file shows evidence of using (possibly several, for
    /// a half-translated file).
    pub fn models(&self) -> Vec<ExecutionModel> {
        let mut out = Vec::new();
        if self.uses_cuda() {
            out.push(ExecutionModel::Cuda);
        }
        if self.uses_omp_offload() {
            out.push(ExecutionModel::OmpOffload);
        }
        if self.uses_omp_threads() {
            out.push(ExecutionModel::OmpThreads);
        }
        if self.uses_kokkos() {
            out.push(ExecutionModel::Kokkos);
        }
        out
    }

    /// Does this usage pattern satisfy "written in `model`" for the
    /// harness's target-model check? Parallel constructs of *other* GPU
    /// models must be absent.
    pub fn conforms_to(&self, model: ExecutionModel) -> bool {
        match model {
            ExecutionModel::Cuda => {
                self.uses_cuda() && !self.uses_kokkos() && !self.uses_omp_offload()
            }
            ExecutionModel::OmpOffload => {
                self.uses_omp_offload() && !self.uses_cuda() && !self.uses_kokkos()
            }
            ExecutionModel::OmpThreads => {
                self.uses_omp_threads() && !self.uses_cuda() && !self.uses_kokkos()
            }
            ExecutionModel::Kokkos => {
                self.uses_kokkos() && !self.uses_cuda() && !self.uses_omp_offload()
            }
        }
    }
}

/// Scan a parsed file for evidence of each execution model.
pub fn detect_usage(file: &SourceFile) -> ModelUsage {
    let mut u = ModelUsage::default();
    for item in &file.items {
        match &item.kind {
            ItemKind::Function(f) => {
                if f.quals.cuda_global || f.quals.cuda_device {
                    u.cuda_kernels += 1;
                }
                if let Some(body) = &f.body {
                    for s in &body.stmts {
                        scan_stmt(s, &mut u);
                    }
                }
            }
            ItemKind::Global(d) if d.ty.is_view() => {
                u.kokkos_views += 1;
            }
            _ => {}
        }
    }
    u
}

fn scan_stmt(s: &Stmt, u: &mut ModelUsage) {
    match &s.kind {
        StmtKind::Decl(d) => {
            if d.ty.is_view() {
                u.kokkos_views += 1;
            }
            if let Some(crate::ast::Init::Expr(e)) = &d.init {
                scan_expr(e, u);
            }
            if let Some(crate::ast::Init::Ctor(args)) = &d.init {
                for a in args {
                    scan_expr(a, u);
                }
            }
        }
        StmtKind::Expr(e) => scan_expr(e, u),
        StmtKind::If { cond, then, els } => {
            scan_expr(cond, u);
            scan_stmt(then, u);
            if let Some(e) = els {
                scan_stmt(e, u);
            }
        }
        StmtKind::While { cond, body } => {
            scan_expr(cond, u);
            scan_stmt(body, u);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                scan_stmt(i, u);
            }
            if let Some(c) = cond {
                scan_expr(c, u);
            }
            if let Some(st) = step {
                scan_expr(st, u);
            }
            scan_stmt(body, u);
        }
        StmtKind::Return(Some(e)) => scan_expr(e, u),
        StmtKind::Block(b) => {
            for s in &b.stmts {
                scan_stmt(s, u);
            }
        }
        StmtKind::Omp { directive, body } => {
            scan_directive(directive, u);
            if let Some(b) = body {
                scan_stmt(b, u);
            }
        }
        _ => {}
    }
}

fn scan_directive(d: &OmpDirective, u: &mut ModelUsage) {
    if d.targets_device() {
        u.omp_target_directives += 1;
    } else {
        u.omp_parallel_directives += 1;
    }
}

fn scan_expr(e: &Expr, u: &mut ModelUsage) {
    match &e.kind {
        ExprKind::KernelLaunch {
            grid, block, args, ..
        } => {
            u.cuda_launches += 1;
            scan_expr(grid, u);
            scan_expr(block, u);
            for a in args {
                scan_expr(a, u);
            }
        }
        ExprKind::Call { callee, args } => {
            match &callee.kind {
                ExprKind::Ident(name) if name.starts_with("cuda") || name.starts_with("curand") => {
                    u.cuda_api_calls += 1;
                }
                ExprKind::Path(segments)
                    if segments.first().map(String::as_str) == Some("Kokkos")
                        && segments.get(1).is_some_and(|s| s.starts_with("parallel_")) =>
                {
                    u.kokkos_parallel_calls += 1;
                }
                _ => {}
            }
            scan_expr(callee, u);
            for a in args {
                scan_expr(a, u);
            }
        }
        ExprKind::Unary { expr, .. } => scan_expr(expr, u),
        ExprKind::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, u);
            scan_expr(rhs, u);
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            scan_expr(lhs, u);
            scan_expr(rhs, u);
        }
        ExprKind::Ternary { cond, then, els } => {
            scan_expr(cond, u);
            scan_expr(then, u);
            scan_expr(els, u);
        }
        ExprKind::Index { base, index } => {
            scan_expr(base, u);
            scan_expr(index, u);
        }
        ExprKind::Member { base, .. } => scan_expr(base, u),
        ExprKind::Cast { expr, .. } => scan_expr(expr, u),
        ExprKind::SizeOfExpr(e) => scan_expr(e, u),
        ExprKind::Lambda { body, .. } => {
            for s in &body.stmts {
                scan_stmt(s, u);
            }
        }
        ExprKind::Paren(inner) => scan_expr(inner, u),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    #[test]
    fn detects_cuda() {
        let src = r#"
__global__ void k(int* a) { a[threadIdx.x] = 1; }
int main() { int* d; cudaMalloc(&d, 4); k<<<1, 32>>>(d); return 0; }
"#;
        let u = detect_usage(&parse_file(src).unwrap());
        assert!(u.uses_cuda());
        assert_eq!(u.cuda_kernels, 1);
        assert_eq!(u.cuda_launches, 1);
        assert!(u.cuda_api_calls >= 1);
        assert!(u.conforms_to(ExecutionModel::Cuda));
        assert!(!u.conforms_to(ExecutionModel::OmpOffload));
    }

    #[test]
    fn detects_omp_threads_vs_offload() {
        let threads = r#"
void f(int* a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) a[i] = i;
}
"#;
        let u = detect_usage(&parse_file(threads).unwrap());
        assert!(u.uses_omp_threads());
        assert!(!u.uses_omp_offload());
        assert!(u.conforms_to(ExecutionModel::OmpThreads));

        let offload = r#"
void f(int* a, int n) {
    #pragma omp target teams distribute parallel for map(tofrom: a[0:n])
    for (int i = 0; i < n; i++) a[i] = i;
}
"#;
        let u = detect_usage(&parse_file(offload).unwrap());
        assert!(u.uses_omp_offload());
        assert!(u.conforms_to(ExecutionModel::OmpOffload));
    }

    #[test]
    fn detects_kokkos() {
        let src = r#"
int main() {
    Kokkos::View<double*> d("d", 10);
    Kokkos::parallel_for(10, KOKKOS_LAMBDA(int i) { d(i) = i; });
    return 0;
}
"#;
        let u = detect_usage(&parse_file(src).unwrap());
        assert!(u.uses_kokkos());
        assert_eq!(u.kokkos_views, 1);
        assert_eq!(u.kokkos_parallel_calls, 1);
        assert!(u.conforms_to(ExecutionModel::Kokkos));
    }

    #[test]
    fn half_translated_file_conforms_to_nothing() {
        // CUDA launch left behind in an "OpenMP offload translation".
        let src = r#"
void f(int* a, int n) {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; i++) a[i] = i;
}
int main() { int* d; k<<<1, 32>>>(d); return 0; }
"#;
        let u = detect_usage(&parse_file(src).unwrap());
        assert!(!u.conforms_to(ExecutionModel::OmpOffload));
        assert!(!u.conforms_to(ExecutionModel::Cuda));
    }

    #[test]
    fn pair_ids() {
        assert_eq!(
            TranslationPair::CUDA_TO_OMP_OFFLOAD.id(),
            "cuda-to-omp-offload"
        );
        assert_eq!(TranslationPair::ALL.len(), 3);
    }

    #[test]
    fn build_system_conventions() {
        assert_eq!(
            ExecutionModel::Kokkos.build_system(),
            BuildSystemKind::CMake
        );
        assert_eq!(ExecutionModel::Cuda.build_system(), BuildSystemKind::Make);
        assert_eq!(BuildSystemKind::CMake.file_name(), "CMakeLists.txt");
    }
}
