//! # minihpc-lang
//!
//! The MiniHPC mini-language: a C-like source language with four
//! execution-model dialects (OpenMP threads, OpenMP offload, CUDA, Kokkos),
//! used as the substrate for the ParEval-Repo reproduction.
//!
//! The paper's benchmark operates on real C/C++/CUDA repositories compiled
//! by clang/nvcc and executed on an A100. This crate (together with
//! `minihpc-build` and `minihpc-runtime`) replaces that stack with a
//! self-contained simulated toolchain that preserves the properties the
//! benchmark measures: multi-file repositories with headers and build
//! systems, dialect-specific parallel constructs, and a compiler that
//! produces the same *categories* of diagnostics the paper clusters.
//!
//! ## Layout
//!
//! - [`lexer`] / [`parser`] / [`ast`] / [`printer`]: the language front end
//!   and source regeneration (`print ∘ parse` is idempotent).
//! - [`pragma`]: structured OpenMP directives.
//! - [`model`]: execution models, translation pairs, and model-usage
//!   detection (enforces the paper's "must use the requested model" rule).
//! - [`complexity`]: SLoC and cyclomatic-complexity statistics (Table 1).
//! - [`repo`]: the in-memory repository that translation tasks rewrite.

pub mod ast;
pub mod codec;
pub mod complexity;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod pragma;
pub mod printer;
pub mod repo;
pub mod span;
pub mod token;

pub use ast::SourceFile;
pub use model::{ExecutionModel, TranslationPair};
pub use parser::{parse_file, ParseError};
pub use printer::print_file;
pub use repo::{FileKind, SourceRepo};
