//! Recursive-descent parser for MiniHPC.
//!
//! The grammar is a C subset extended with the dialect constructs the
//! ParEval-Repo applications need: CUDA qualifiers and kernel launches,
//! OpenMP pragmas (structured, see [`crate::pragma`]), Kokkos views, paths
//! and lambdas. Parse errors map to the paper's "Code Syntax Error" build
//! category; malformed OpenMP directives map to "OpenMP Invalid Directive".

use crate::ast::*;
use crate::lexer::{self, LexError};
use crate::pragma::*;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::fmt;

/// A syntax error with a source span.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub span: Span,
    /// True when the error occurred inside an OpenMP directive — the build
    /// driver reports these under a distinct diagnostic category.
    pub in_omp_directive: bool,
}

impl ParseError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
            in_omp_directive: false,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.message, e.span)
    }
}

/// Parse a complete source file (after macro expansion).
pub fn parse_file(src: &str) -> Result<SourceFile, ParseError> {
    let tokens = lexer::expand_defines(lexer::lex(src)?);
    Parser::new(tokens).parse_source_file()
}

/// Parse a single expression from source text (test/injector helper).
pub fn parse_expr_str(src: &str) -> Result<Expr, ParseError> {
    let tokens = lexer::lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parse a single statement from source text (test/injector helper).
pub fn parse_stmt_str(src: &str) -> Result<Stmt, ParseError> {
    let tokens = lexer::lex(src)?;
    let mut p = Parser::new(tokens);
    let s = p.parse_stmt()?;
    p.expect_eof()?;
    Ok(s)
}

/// Parse the token stream of a `#pragma` line. Returns `Ok(None)` for
/// non-OpenMP pragmas (which are preserved verbatim).
pub fn parse_omp_directive(
    tokens: &[Token],
    span: Span,
) -> Result<Option<OmpDirective>, ParseError> {
    let mut toks = tokens.to_vec();
    toks.push(Token::new(TokenKind::Eof, span));
    let mut p = Parser::new(toks);
    if !p.at_ident("omp") {
        return Ok(None);
    }
    p.bump();
    let d = p.parse_omp_body(span).map_err(|mut e| {
        e.in_omp_directive = true;
        e
    })?;
    Ok(Some(d))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    // -- token helpers ------------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek_kind(), TokenKind::Ident(s) if s == name)
    }

    fn ident_ahead(&self, n: usize) -> Option<&str> {
        match self.peek_ahead(n) {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek_kind().describe()
                ),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                let sp = self.span();
                self.bump();
                Ok((s, sp))
            }
            other => Err(ParseError::new(
                format!("expected identifier, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek_kind(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(ParseError::new(
                format!(
                    "unexpected {} after end of construct",
                    self.peek_kind().describe()
                ),
                self.span(),
            ))
        }
    }

    fn error<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(msg, self.span()))
    }

    // -- items --------------------------------------------------------------

    fn parse_source_file(&mut self) -> Result<SourceFile, ParseError> {
        let mut items = Vec::new();
        while !matches!(self.peek_kind(), TokenKind::Eof) {
            items.push(self.parse_item()?);
        }
        Ok(SourceFile { items })
    }

    fn parse_item(&mut self) -> Result<Item, ParseError> {
        let start = self.span();
        match self.peek_kind().clone() {
            TokenKind::Include { path, system } => {
                self.bump();
                Ok(Item {
                    kind: ItemKind::Include { path, system },
                    span: start,
                })
            }
            TokenKind::Define { name, body } => {
                self.bump();
                let body_text = tokens_to_text(&body);
                Ok(Item {
                    kind: ItemKind::Define { name, body_text },
                    span: start,
                })
            }
            TokenKind::OtherDirective(d) => {
                self.bump();
                Ok(Item {
                    kind: ItemKind::OtherDirective(d),
                    span: start,
                })
            }
            TokenKind::Pragma { text, .. } => {
                // Item-level pragmas (e.g. `#pragma once`) are preserved.
                self.bump();
                Ok(Item {
                    kind: ItemKind::OtherDirective(format!("pragma {text}")),
                    span: start,
                })
            }
            TokenKind::Ident(kw) if kw == "typedef" => self.parse_typedef_struct(),
            TokenKind::Ident(kw)
                if kw == "struct" && matches!(self.peek_ahead(2), TokenKind::LBrace) =>
            {
                self.parse_struct_def(false)
            }
            _ => self.parse_function_or_global(),
        }
    }

    fn parse_typedef_struct(&mut self) -> Result<Item, ParseError> {
        let start = self.span();
        self.bump(); // typedef
        if !self.eat_ident("struct") {
            return self.error("only `typedef struct` is supported");
        }
        // Optional tag name.
        let mut tag = None;
        if let TokenKind::Ident(name) = self.peek_kind().clone() {
            if !self.at(&TokenKind::LBrace) {
                tag = Some(name);
                self.bump();
            }
        }
        let fields = self.parse_struct_fields()?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Semi)?;
        let _ = tag;
        Ok(Item {
            kind: ItemKind::Struct(StructDef {
                name,
                fields,
                is_typedef: true,
                span: start,
            }),
            span: start,
        })
    }

    fn parse_struct_def(&mut self, _typedef: bool) -> Result<Item, ParseError> {
        let start = self.span();
        self.bump(); // struct
        let (name, _) = self.expect_ident()?;
        let fields = self.parse_struct_fields()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Item {
            kind: ItemKind::Struct(StructDef {
                name,
                fields,
                is_typedef: false,
                span: start,
            }),
            span: start,
        })
    }

    fn parse_struct_fields(&mut self) -> Result<Vec<Field>, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            let ty = self.parse_type()?;
            loop {
                let (name, _) = self.expect_ident()?;
                let mut array_dims = Vec::new();
                while self.eat(&TokenKind::LBracket) {
                    array_dims.push(self.parse_expr()?);
                    self.expect(&TokenKind::RBracket)?;
                }
                fields.push(Field {
                    ty: ty.clone(),
                    name,
                    array_dims,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::Semi)?;
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(fields)
    }

    fn parse_fn_quals(&mut self) -> FnQuals {
        let mut quals = FnQuals::default();
        loop {
            if self.eat_ident("__global__") {
                quals.cuda_global = true;
            } else if self.eat_ident("__device__") {
                quals.cuda_device = true;
            } else if self.eat_ident("__host__") {
                quals.cuda_host = true;
            } else if self.eat_ident("static") {
                quals.is_static = true;
            } else if self.eat_ident("inline") {
                quals.is_inline = true;
            } else if self.eat_ident("extern") {
                // `extern` prototypes behave like plain declarations here.
            } else {
                return quals;
            }
        }
    }

    fn parse_function_or_global(&mut self) -> Result<Item, ParseError> {
        let start = self.span();
        let quals = self.parse_fn_quals();
        let ty = self.parse_type()?;
        let (name, _) = self.expect_ident()?;

        if self.at(&TokenKind::LParen) {
            // Function definition or declaration.
            let params = self.parse_params()?;
            let body = if self.at(&TokenKind::LBrace) {
                Some(self.parse_block()?)
            } else {
                self.expect(&TokenKind::Semi)?;
                None
            };
            let end = self.tokens[self.pos.saturating_sub(1)].span;
            Ok(Item {
                kind: ItemKind::Function(Function {
                    quals,
                    ret: ty,
                    name,
                    params,
                    body,
                    span: start.to(end),
                }),
                span: start.to(end),
            })
        } else {
            // Global variable.
            let decl = self.finish_var_decl(ty, name, quals.is_static)?;
            self.expect(&TokenKind::Semi)?;
            Ok(Item {
                kind: ItemKind::Global(decl),
                span: start,
            })
        }
    }

    fn parse_params(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.at(&TokenKind::RParen) {
            self.bump();
            return Ok(params);
        }
        // `(void)` parameter list.
        if self.at_ident("void") && matches!(self.peek_ahead(1), TokenKind::RParen) {
            self.bump();
            self.bump();
            return Ok(params);
        }
        loop {
            let ty = self.parse_type()?;
            // C++ reference marker (`double& lsum` in Kokkos reduce lambdas):
            // MiniHPC treats reference parameters as the interpreter's
            // accumulator convention, so the `&` is accepted and dropped.
            self.eat(&TokenKind::Amp);
            let name = match self.peek_kind().clone() {
                TokenKind::Ident(s) => {
                    self.bump();
                    s
                }
                // Unnamed parameter in a prototype.
                _ => String::new(),
            };
            // `T x[]` decays to pointer.
            let mut ty = ty;
            while self.eat(&TokenKind::LBracket) {
                if !self.at(&TokenKind::RBracket) {
                    let _ = self.parse_expr()?;
                }
                self.expect(&TokenKind::RBracket)?;
                ty = Type::ptr(ty);
            }
            params.push(Param { ty, name });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(params)
    }

    // -- types --------------------------------------------------------------

    /// Is the token at offset `n` the start of a type?
    fn is_type_start(&self, n: usize) -> bool {
        match self.peek_ahead(n) {
            TokenKind::Ident(s) => {
                ScalarType::from_keyword(s).is_some()
                    || s == "const"
                    || s == "struct"
                    || s == "dim3"
                    || s == "unsigned"
                    || s == "Kokkos"
                    || s == "View"
            }
            _ => false,
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let mut is_const = false;
        while self.eat_ident("const") {
            is_const = true;
        }
        let mut base = self.parse_base_type()?;
        // `const` may also follow the base type (`int const`).
        while self.eat_ident("const") {
            is_const = true;
        }
        while self.eat(&TokenKind::Star) {
            if is_const {
                base = Type::Const(Box::new(base));
                is_const = false;
            }
            base = Type::ptr(base);
            while self.eat_ident("const") {
                is_const = true;
            }
        }
        if is_const {
            base = Type::Const(Box::new(base));
        }
        Ok(base)
    }

    fn parse_base_type(&mut self) -> Result<Type, ParseError> {
        // `unsigned int` / `unsigned long` treated as their signed widths
        // (MiniHPC ints are i64 at runtime; signedness is not modelled).
        if self.eat_ident("unsigned") {
            if let TokenKind::Ident(s) = self.peek_kind().clone() {
                if let Some(sc) = ScalarType::from_keyword(&s) {
                    self.bump();
                    return Ok(Type::Scalar(sc));
                }
            }
            return Ok(Type::INT);
        }
        if self.eat_ident("struct") {
            let (name, _) = self.expect_ident()?;
            return Ok(Type::Named(name));
        }
        if self.eat_ident("dim3") {
            return Ok(Type::Dim3);
        }
        // Kokkos::View<...> or bare View<...>.
        if self.at_ident("Kokkos") && matches!(self.peek_ahead(1), TokenKind::ColonColon) {
            if self.ident_ahead(2) == Some("View") {
                self.bump(); // Kokkos
                self.bump(); // ::
                self.bump(); // View
                return self.parse_view_args();
            }
            return self.error("unknown Kokkos type (only Kokkos::View is supported)");
        }
        if self.at_ident("View") && matches!(self.peek_ahead(1), TokenKind::Lt) {
            self.bump();
            return self.parse_view_args();
        }
        let (name, sp) = self.expect_ident()?;
        if let Some(sc) = ScalarType::from_keyword(&name) {
            return Ok(Type::Scalar(sc));
        }
        // Heuristic: a named (typedef'd struct) type. Reject obvious
        // non-types so expression-statement misparses surface clearly.
        if name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            Ok(Type::Named(name))
        } else {
            Err(ParseError::new(
                format!("expected type, found `{name}`"),
                sp,
            ))
        }
    }

    fn parse_view_args(&mut self) -> Result<Type, ParseError> {
        self.expect(&TokenKind::Lt)?;
        let (name, sp) = self.expect_ident()?;
        let elem = ScalarType::from_keyword(&name)
            .ok_or_else(|| ParseError::new(format!("unknown View element type `{name}`"), sp))?;
        let mut rank: u8 = 0;
        while self.eat(&TokenKind::Star) {
            rank += 1;
        }
        if rank == 0 {
            return self.error("Kokkos::View requires at least one `*` in its element type");
        }
        self.expect(&TokenKind::Gt)?;
        Ok(Type::View { elem, rank })
    }

    // -- statements ---------------------------------------------------------

    fn parse_block(&mut self) -> Result<Block, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if matches!(self.peek_kind(), TokenKind::Eof) {
                return self.error("unexpected end of file inside block (missing `}`)");
            }
            stmts.push(self.parse_stmt()?);
        }
        let end = self.span();
        self.expect(&TokenKind::RBrace)?;
        Ok(Block {
            stmts,
            span: start.to(end),
        })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        match self.peek_kind().clone() {
            TokenKind::Pragma { text, tokens } => {
                let span = self.span();
                self.bump();
                match parse_omp_directive(&tokens, span)? {
                    Some(directive) => {
                        let body = if directive.is_standalone() {
                            None
                        } else {
                            Some(Box::new(self.parse_stmt()?))
                        };
                        Ok(Stmt::new(StmtKind::Omp { directive, body }, span))
                    }
                    None => Ok(Stmt::new(StmtKind::RawPragma(text), span)),
                }
            }
            TokenKind::LBrace => {
                let b = self.parse_block()?;
                let span = b.span;
                Ok(Stmt::new(StmtKind::Block(b), span))
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::new(StmtKind::Empty, start))
            }
            TokenKind::Ident(kw) => match kw.as_str() {
                "if" => self.parse_if(),
                "while" => self.parse_while(),
                "for" => self.parse_for(),
                "return" => {
                    self.bump();
                    let value = if self.at(&TokenKind::Semi) {
                        None
                    } else {
                        Some(self.parse_expr()?)
                    };
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::new(StmtKind::Return(value), start))
                }
                "break" => {
                    self.bump();
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::new(StmtKind::Break, start))
                }
                "continue" => {
                    self.bump();
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::new(StmtKind::Continue, start))
                }
                _ if self.stmt_starts_decl() => {
                    let s = self.parse_decl_stmt()?;
                    Ok(s)
                }
                _ => {
                    let e = self.parse_expr()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::new(StmtKind::Expr(e), start))
                }
            },
            _ => {
                let e = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::new(StmtKind::Expr(e), start))
            }
        }
    }

    /// Decide whether the statement starting here is a declaration.
    fn stmt_starts_decl(&self) -> bool {
        if self.at_ident("static") || self.at_ident("const") {
            return true;
        }
        if self.is_type_start(0) {
            // `struct` always begins a decl in statement position; scalar
            // keywords too. An identifier that merely *could* be a named
            // type needs the two-identifier check below.
            if let TokenKind::Ident(s) = self.peek_kind() {
                if ScalarType::from_keyword(s).is_some()
                    || s == "struct"
                    || s == "dim3"
                    || s == "unsigned"
                {
                    return true;
                }
                if s == "Kokkos" || s == "View" {
                    // Kokkos::View<...> name  — a decl; Kokkos::parallel_for(...) — not.
                    return self.view_type_ahead();
                }
            }
        }
        // `Name ident ...` or `Name* ident ...` → a declaration with a named type.
        if matches!(self.peek_kind(), TokenKind::Ident(_)) {
            match self.peek_ahead(1) {
                TokenKind::Ident(_) => return true,
                TokenKind::Star => {
                    let mut n = 1;
                    while matches!(self.peek_ahead(n), TokenKind::Star) {
                        n += 1;
                    }
                    if matches!(self.peek_ahead(n), TokenKind::Ident(_)) {
                        // `T* name =` / `T* name;` / `T* name[` / `T* name(`...
                        return matches!(
                            self.peek_ahead(n + 1),
                            TokenKind::Eq
                                | TokenKind::Semi
                                | TokenKind::Comma
                                | TokenKind::LBracket
                        );
                    }
                }
                _ => {}
            }
        }
        false
    }

    fn view_type_ahead(&self) -> bool {
        // `View<` or `Kokkos::View<`.
        if self.at_ident("View") {
            return matches!(self.peek_ahead(1), TokenKind::Lt);
        }
        self.at_ident("Kokkos")
            && matches!(self.peek_ahead(1), TokenKind::ColonColon)
            && self.ident_ahead(2) == Some("View")
            && matches!(self.peek_ahead(3), TokenKind::Lt)
    }

    fn parse_decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        let is_static = self.eat_ident("static");
        let ty = self.parse_type()?;
        let mut decls = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            let decl = self.finish_var_decl(ty.clone(), name, is_static)?;
            decls.push(decl);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semi)?;
        if decls.len() == 1 {
            Ok(Stmt::new(StmtKind::Decl(decls.pop().unwrap()), start))
        } else {
            // Multi-declarator statements become a flat block of decls.
            let stmts = decls
                .into_iter()
                .map(|d| Stmt::new(StmtKind::Decl(d), start))
                .collect();
            Ok(Stmt::new(
                StmtKind::Block(Block { stmts, span: start }),
                start,
            ))
        }
    }

    fn finish_var_decl(
        &mut self,
        ty: Type,
        name: String,
        is_static: bool,
    ) -> Result<VarDecl, ParseError> {
        let mut array_dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            array_dims.push(self.parse_expr()?);
            self.expect(&TokenKind::RBracket)?;
        }
        let init = if self.eat(&TokenKind::Eq) {
            if self.at(&TokenKind::LBrace) {
                self.bump();
                let mut elems = Vec::new();
                while !self.at(&TokenKind::RBrace) {
                    elems.push(self.parse_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBrace)?;
                Some(Init::List(elems))
            } else {
                Some(Init::Expr(self.parse_expr()?))
            }
        } else if self.at(&TokenKind::LParen) {
            // Constructor syntax: `dim3 grid(gx, gy);`, `View<double*> v("v", n);`
            self.bump();
            let mut args = Vec::new();
            while !self.at(&TokenKind::RParen) {
                args.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            Some(Init::Ctor(args))
        } else {
            None
        };
        Ok(VarDecl {
            name,
            ty,
            array_dims,
            init,
            is_static,
        })
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        self.bump(); // if
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let then = Box::new(self.parse_stmt()?);
        let els = if self.eat_ident("else") {
            Some(Box::new(self.parse_stmt()?))
        } else {
            None
        };
        Ok(Stmt::new(StmtKind::If { cond, then, els }, start))
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        self.bump(); // while
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.parse_stmt()?);
        Ok(Stmt::new(StmtKind::While { cond, body }, start))
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        self.bump(); // for
        self.expect(&TokenKind::LParen)?;
        let init = if self.at(&TokenKind::Semi) {
            self.bump();
            None
        } else if self.stmt_starts_decl() {
            Some(Box::new(self.parse_decl_stmt()?))
        } else {
            let e = self.parse_expr()?;
            self.expect(&TokenKind::Semi)?;
            Some(Box::new(Stmt::expr(e)))
        };
        let cond = if self.at(&TokenKind::Semi) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect(&TokenKind::Semi)?;
        let step = if self.at(&TokenKind::RParen) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.parse_stmt()?);
        Ok(Stmt::new(
            StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            start,
        ))
    }

    // -- expressions ---------------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_ternary()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => None,
            TokenKind::PlusEq => Some(BinOp::Add),
            TokenKind::MinusEq => Some(BinOp::Sub),
            TokenKind::StarEq => Some(BinOp::Mul),
            TokenKind::SlashEq => Some(BinOp::Div),
            TokenKind::PercentEq => Some(BinOp::Rem),
            TokenKind::AmpEq => Some(BinOp::BitAnd),
            TokenKind::PipeEq => Some(BinOp::BitOr),
            TokenKind::CaretEq => Some(BinOp::BitXor),
            TokenKind::ShlEq => Some(BinOp::Shl),
            TokenKind::ShrEq => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        let span = lhs.span;
        self.bump();
        let rhs = self.parse_assign()?;
        Ok(Expr::new(
            ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then = self.parse_expr()?;
            self.expect(&TokenKind::Colon)?;
            let els = self.parse_ternary()?;
            let span = cond.span;
            Ok(Expr::new(
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                },
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self) -> Option<(BinOp, u8)> {
        let (op, prec) = match self.peek_kind() {
            TokenKind::PipePipe => (BinOp::Or, 1),
            TokenKind::AmpAmp => (BinOp::And, 2),
            TokenKind::Pipe => (BinOp::BitOr, 3),
            TokenKind::Caret => (BinOp::BitXor, 4),
            TokenKind::Amp => (BinOp::BitAnd, 5),
            TokenKind::EqEq => (BinOp::Eq, 6),
            TokenKind::Ne => (BinOp::Ne, 6),
            TokenKind::Lt => (BinOp::Lt, 7),
            TokenKind::Gt => (BinOp::Gt, 7),
            TokenKind::Le => (BinOp::Le, 7),
            TokenKind::Ge => (BinOp::Ge, 7),
            TokenKind::Shl => (BinOp::Shl, 8),
            TokenKind::Shr => (BinOp::Shr, 8),
            TokenKind::Plus => (BinOp::Add, 9),
            TokenKind::Minus => (BinOp::Sub, 9),
            TokenKind::Star => (BinOp::Mul, 10),
            TokenKind::Slash => (BinOp::Div, 10),
            TokenKind::Percent => (BinOp::Rem, 10),
            _ => return None,
        };
        Some((op, prec))
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.binop_at() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Bang => Some(UnaryOp::Not),
            TokenKind::Tilde => Some(UnaryOp::BitNot),
            TokenKind::Star => Some(UnaryOp::Deref),
            TokenKind::Amp => Some(UnaryOp::AddrOf),
            TokenKind::PlusPlus => Some(UnaryOp::PreInc),
            TokenKind::MinusMinus => Some(UnaryOp::PreDec),
            TokenKind::Plus => {
                // Unary plus: just skip it.
                self.bump();
                return self.parse_unary();
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.parse_unary()?;
            return Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    expr: Box::new(expr),
                },
                start,
            ));
        }
        // sizeof
        if self.at_ident("sizeof") {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            if self.is_type_start(0) && !self.sizeof_arg_is_expr() {
                let ty = self.parse_type()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::new(ExprKind::SizeOfType(ty), start));
            }
            let e = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::new(ExprKind::SizeOfExpr(Box::new(e)), start));
        }
        // Cast: `(type) unary` — only when the parenthesised text is clearly a type.
        if self.at(&TokenKind::LParen) && self.cast_ahead() {
            self.bump();
            let ty = self.parse_type()?;
            self.expect(&TokenKind::RParen)?;
            let expr = self.parse_unary()?;
            return Ok(Expr::new(
                ExprKind::Cast {
                    ty,
                    expr: Box::new(expr),
                },
                start,
            ));
        }
        self.parse_postfix()
    }

    /// Inside `sizeof(...)`: treat `sizeof(N)` where N could be a named type
    /// as an expression unless it is an unambiguous type keyword.
    fn sizeof_arg_is_expr(&self) -> bool {
        if let TokenKind::Ident(s) = self.peek_kind() {
            let unambiguous = ScalarType::from_keyword(s).is_some()
                || s == "struct"
                || s == "const"
                || s == "unsigned"
                || s == "dim3";
            if !unambiguous {
                // `sizeof(Name)` with a following `)` stays ambiguous; MiniHPC
                // resolves it as a *type* only if it starts with an uppercase
                // letter (our typedef convention), else an expression.
                return !s.chars().next().is_some_and(|c| c.is_ascii_uppercase());
            }
            false
        } else {
            true
        }
    }

    fn cast_ahead(&self) -> bool {
        // `( const? <scalar-kw|struct|dim3|unsigned> ... * ... )` followed by
        // an expression-start token.
        let mut n = 1;
        if self.ident_ahead(n) == Some("const") {
            n += 1;
        }
        let (is_kw_type, is_named) = match self.ident_ahead(n) {
            Some(s) => {
                let kw = ScalarType::from_keyword(s).is_some()
                    || s == "struct"
                    || s == "dim3"
                    || s == "unsigned";
                // A named (typedef'd) type cast, `(State*)p`, is recognised
                // only in pointer form — `(name)` alone is indistinguishable
                // from a parenthesised expression.
                let named = !kw
                    && s.chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
                (kw, named)
            }
            None => (false, false),
        };
        if !is_kw_type && !is_named {
            return false;
        }
        if self.ident_ahead(n) == Some("struct") || self.ident_ahead(n) == Some("unsigned") {
            n += 1; // tag / width name
        }
        n += 1;
        let mut stars = 0;
        while matches!(self.peek_ahead(n), TokenKind::Star) {
            n += 1;
            stars += 1;
        }
        if is_named && stars == 0 {
            return false;
        }
        if !matches!(self.peek_ahead(n), TokenKind::RParen) {
            return false;
        }
        // Lookahead past `)`: cast must be followed by something that can
        // begin a unary expression.
        matches!(
            self.peek_ahead(n + 1),
            TokenKind::Ident(_)
                | TokenKind::Int(_)
                | TokenKind::Float(_)
                | TokenKind::Str(_)
                | TokenKind::Char(_)
                | TokenKind::LParen
                | TokenKind::Minus
                | TokenKind::Bang
                | TokenKind::Tilde
                | TokenKind::Star
                | TokenKind::Amp
        )
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek_kind() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    while !self.at(&TokenKind::RParen) {
                        args.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    let span = e.span;
                    e = Expr::new(
                        ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                        span,
                    );
                }
                TokenKind::LaunchOpen => {
                    // Kernel launch: callee must be a plain identifier.
                    let kernel = match &e.kind {
                        ExprKind::Ident(name) => name.clone(),
                        _ => return self.error("kernel launch `<<<...>>>` requires a kernel name"),
                    };
                    self.bump();
                    let grid = self.parse_expr()?;
                    self.expect(&TokenKind::Comma)?;
                    let block = self.parse_expr()?;
                    self.expect(&TokenKind::LaunchClose)?;
                    self.expect(&TokenKind::LParen)?;
                    let mut args = Vec::new();
                    while !self.at(&TokenKind::RParen) {
                        args.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    let span = e.span;
                    e = Expr::new(
                        ExprKind::KernelLaunch {
                            kernel,
                            grid: Box::new(grid),
                            block: Box::new(block),
                            args,
                        },
                        span,
                    );
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    let span = e.span;
                    e = Expr::new(
                        ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(idx),
                        },
                        span,
                    );
                }
                TokenKind::Dot | TokenKind::Arrow => {
                    let arrow = matches!(self.peek_kind(), TokenKind::Arrow);
                    self.bump();
                    let (member, _) = self.expect_ident()?;
                    let span = e.span;
                    e = Expr::new(
                        ExprKind::Member {
                            base: Box::new(e),
                            member,
                            arrow,
                        },
                        span,
                    );
                }
                TokenKind::PlusPlus => {
                    self.bump();
                    let span = e.span;
                    e = Expr::new(
                        ExprKind::Unary {
                            op: UnaryOp::PostInc,
                            expr: Box::new(e),
                        },
                        span,
                    );
                }
                TokenKind::MinusMinus => {
                    self.bump();
                    let span = e.span;
                    e = Expr::new(
                        ExprKind::Unary {
                            op: UnaryOp::PostDec,
                            expr: Box::new(e),
                        },
                        span,
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), start))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::StrLit(s), start))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(Expr::new(ExprKind::CharLit(c), start))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::new(ExprKind::Paren(Box::new(e)), start))
            }
            TokenKind::LBracket => self.parse_lambda(start),
            TokenKind::Ident(name) => {
                match name.as_str() {
                    "true" => {
                        self.bump();
                        return Ok(Expr::new(ExprKind::BoolLit(true), start));
                    }
                    "false" => {
                        self.bump();
                        return Ok(Expr::new(ExprKind::BoolLit(false), start));
                    }
                    "KOKKOS_LAMBDA" => {
                        self.bump();
                        return self.parse_lambda_params_body(CaptureMode::KokkosLambda, start);
                    }
                    _ => {}
                }
                self.bump();
                // `::`-separated path.
                if self.at(&TokenKind::ColonColon) {
                    let mut segments = vec![name];
                    while self.eat(&TokenKind::ColonColon) {
                        let (seg, _) = self.expect_ident()?;
                        segments.push(seg);
                    }
                    // `Kokkos::RangePolicy<...>`-style template args in
                    // expression position are folded into the last segment.
                    if self.at(&TokenKind::Lt) && self.template_args_ahead() {
                        let text = self.consume_template_args()?;
                        let last = segments.last_mut().unwrap();
                        last.push_str(&text);
                    }
                    return Ok(Expr::new(ExprKind::Path(segments), start));
                }
                Ok(Expr::new(ExprKind::Ident(name), start))
            }
            other => self.error(format!("expected expression, found {}", other.describe())),
        }
    }

    /// Heuristic: `<` begins template arguments (rather than a comparison) if
    /// a matching `>` appears before any `;`, `{`, or EOF and the contents
    /// look type-ish. Used only for Kokkos policy paths.
    fn template_args_ahead(&self) -> bool {
        let mut n = 1;
        let mut depth = 1;
        loop {
            match self.peek_ahead(n) {
                TokenKind::Lt => depth += 1,
                TokenKind::Gt => {
                    depth -= 1;
                    if depth == 0 {
                        return matches!(self.peek_ahead(n + 1), TokenKind::LParen);
                    }
                }
                TokenKind::Shr => {
                    depth -= 2;
                    if depth <= 0 {
                        return matches!(self.peek_ahead(n + 1), TokenKind::LParen);
                    }
                }
                TokenKind::Semi | TokenKind::LBrace | TokenKind::Eof => return false,
                _ => {}
            }
            n += 1;
            if n > 32 {
                return false;
            }
        }
    }

    fn consume_template_args(&mut self) -> Result<String, ParseError> {
        let mut depth = 0i32;
        let mut text = String::new();
        loop {
            match self.peek_kind() {
                TokenKind::Lt => {
                    depth += 1;
                    text.push('<');
                    self.bump();
                }
                TokenKind::Gt => {
                    depth -= 1;
                    text.push('>');
                    self.bump();
                    if depth == 0 {
                        return Ok(text);
                    }
                }
                TokenKind::Shr => {
                    depth -= 2;
                    text.push_str(">>");
                    self.bump();
                    if depth <= 0 {
                        return Ok(text);
                    }
                }
                TokenKind::Eof => return self.error("unterminated template argument list"),
                other => {
                    let sym = other.symbol();
                    if sym.is_empty() {
                        match other {
                            TokenKind::Ident(s) => text.push_str(s),
                            TokenKind::Int(v) => text.push_str(&v.to_string()),
                            _ => return self.error("unexpected token in template arguments"),
                        }
                    } else {
                        text.push_str(sym);
                    }
                    self.bump();
                }
            }
        }
    }

    fn parse_lambda(&mut self, start: Span) -> Result<Expr, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let capture = if self.eat(&TokenKind::Eq) {
            CaptureMode::ByValue
        } else if self.eat(&TokenKind::Amp) {
            CaptureMode::ByRef
        } else if self.at(&TokenKind::RBracket) {
            CaptureMode::ByValue
        } else {
            return self.error("lambda capture must be `[=]`, `[&]`, or `[]`");
        };
        self.expect(&TokenKind::RBracket)?;
        self.parse_lambda_params_body(capture, start)
    }

    fn parse_lambda_params_body(
        &mut self,
        capture: CaptureMode,
        start: Span,
    ) -> Result<Expr, ParseError> {
        let params = self.parse_params()?;
        let body = self.parse_block()?;
        Ok(Expr::new(
            ExprKind::Lambda {
                capture,
                params,
                body,
            },
            start,
        ))
    }

    // -- OpenMP directives ---------------------------------------------------

    fn parse_omp_body(&mut self, span: Span) -> Result<OmpDirective, ParseError> {
        let mut constructs = Vec::new();
        while let Some(name) = self.ident_ahead(0).map(str::to_string) {
            let construct = match name.as_str() {
                "parallel" => OmpConstruct::Parallel,
                "for" => OmpConstruct::For,
                "simd" => OmpConstruct::Simd,
                "target" => {
                    self.bump();
                    if self.at_ident("data") {
                        self.bump();
                        constructs.push(OmpConstruct::TargetData);
                        continue;
                    }
                    if self.at_ident("update") {
                        self.bump();
                        constructs.push(OmpConstruct::TargetUpdate);
                        continue;
                    }
                    constructs.push(OmpConstruct::Target);
                    continue;
                }
                "teams" => OmpConstruct::Teams,
                "distribute" => OmpConstruct::Distribute,
                "barrier" => OmpConstruct::Barrier,
                "critical" => OmpConstruct::Critical,
                "atomic" => OmpConstruct::Atomic,
                "single" => OmpConstruct::Single,
                "master" => OmpConstruct::Master,
                _ => break,
            };
            self.bump();
            constructs.push(construct);
        }
        if constructs.is_empty() {
            return Err(ParseError::new(
                "OpenMP directive has no recognised construct",
                span,
            ));
        }
        let mut clauses = Vec::new();
        while !matches!(self.peek_kind(), TokenKind::Eof) {
            clauses.push(self.parse_omp_clause()?);
            // Optional comma separators between clauses.
            self.eat(&TokenKind::Comma);
        }
        Ok(OmpDirective {
            constructs,
            clauses,
            span,
        })
    }

    fn parse_omp_clause(&mut self) -> Result<OmpClause, ParseError> {
        let (name, sp) = self.expect_ident()?;
        let clause = match name.as_str() {
            "num_threads" => {
                self.expect(&TokenKind::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                OmpClause::NumThreads(e)
            }
            "num_teams" => {
                self.expect(&TokenKind::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                OmpClause::NumTeams(e)
            }
            "thread_limit" => {
                self.expect(&TokenKind::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                OmpClause::ThreadLimit(e)
            }
            "collapse" => {
                self.expect(&TokenKind::LParen)?;
                let n = match self.peek_kind() {
                    TokenKind::Int(v) => {
                        let v = *v;
                        self.bump();
                        v
                    }
                    _ => {
                        return Err(ParseError::new(
                            "collapse clause requires an integer literal",
                            self.span(),
                        ))
                    }
                };
                self.expect(&TokenKind::RParen)?;
                if n < 1 {
                    return Err(ParseError::new("collapse argument must be >= 1", sp));
                }
                OmpClause::Collapse(n)
            }
            "reduction" => {
                self.expect(&TokenKind::LParen)?;
                let op_sym = match self.peek_kind().clone() {
                    TokenKind::Plus => "+".to_string(),
                    TokenKind::Star => "*".to_string(),
                    TokenKind::Caret => "^".to_string(),
                    TokenKind::Amp => "&".to_string(),
                    TokenKind::Pipe => "|".to_string(),
                    TokenKind::Ident(s) => s,
                    other => {
                        return Err(ParseError::new(
                            format!("invalid reduction operator {}", other.describe()),
                            self.span(),
                        ))
                    }
                };
                self.bump();
                let op = ReductionOp::from_symbol(&op_sym).ok_or_else(|| {
                    ParseError::new(format!("invalid reduction operator `{op_sym}`"), sp)
                })?;
                self.expect(&TokenKind::Colon)?;
                let vars = self.parse_ident_list()?;
                self.expect(&TokenKind::RParen)?;
                OmpClause::Reduction { op, vars }
            }
            "map" => {
                self.expect(&TokenKind::LParen)?;
                // Optional map kind.
                let mut kind = MapKind::ToFrom;
                if let Some(k) = self.ident_ahead(0) {
                    let candidate = match k {
                        "to" => Some(MapKind::To),
                        "from" => Some(MapKind::From),
                        "tofrom" => Some(MapKind::ToFrom),
                        "alloc" => Some(MapKind::Alloc),
                        _ => None,
                    };
                    if let Some(c) = candidate {
                        if matches!(self.peek_ahead(1), TokenKind::Colon) {
                            self.bump();
                            self.bump();
                            kind = c;
                        }
                    }
                }
                let mut sections = Vec::new();
                loop {
                    sections.push(self.parse_array_section()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                OmpClause::Map { kind, sections }
            }
            "private" => OmpClause::Private(self.parse_paren_ident_list()?),
            "firstprivate" => OmpClause::FirstPrivate(self.parse_paren_ident_list()?),
            "shared" => OmpClause::Shared(self.parse_paren_ident_list()?),
            "schedule" => {
                self.expect(&TokenKind::LParen)?;
                let (kind, _) = self.expect_ident()?;
                let chunk = if self.eat(&TokenKind::Comma) {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect(&TokenKind::RParen)?;
                OmpClause::Schedule { kind, chunk }
            }
            "default" => {
                self.expect(&TokenKind::LParen)?;
                let (mode, _) = self.expect_ident()?;
                self.expect(&TokenKind::RParen)?;
                OmpClause::Default(mode)
            }
            "if" => {
                self.expect(&TokenKind::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                OmpClause::If(e)
            }
            "device" => {
                self.expect(&TokenKind::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                OmpClause::Device(e)
            }
            _ => {
                // Unknown clause: consume a balanced parenthesised argument
                // list if present, keep the raw text (lenient like clang -W).
                let mut text = String::new();
                if self.at(&TokenKind::LParen) {
                    let mut depth = 0;
                    loop {
                        match self.peek_kind() {
                            TokenKind::LParen => depth += 1,
                            TokenKind::RParen => {
                                depth -= 1;
                                if depth == 0 {
                                    text.push(')');
                                    self.bump();
                                    break;
                                }
                            }
                            TokenKind::Eof => {
                                return Err(ParseError::new(
                                    format!("unterminated `{name}` clause"),
                                    sp,
                                ))
                            }
                            _ => {}
                        }
                        let t = self.bump();
                        let sym = t.kind.symbol();
                        if !sym.is_empty() {
                            text.push_str(sym);
                        } else {
                            match &t.kind {
                                TokenKind::Ident(s) => {
                                    if !text.is_empty() && !text.ends_with('(') {
                                        text.push(' ');
                                    }
                                    text.push_str(s);
                                }
                                TokenKind::Int(v) => text.push_str(&v.to_string()),
                                TokenKind::Float(v) => text.push_str(&v.to_string()),
                                _ => {}
                            }
                        }
                    }
                }
                OmpClause::Unknown { name, text }
            }
        };
        Ok(clause)
    }

    fn parse_ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = Vec::new();
        loop {
            let (n, _) = self.expect_ident()?;
            names.push(n);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(names)
    }

    fn parse_paren_ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let names = self.parse_ident_list()?;
        self.expect(&TokenKind::RParen)?;
        Ok(names)
    }

    fn parse_array_section(&mut self) -> Result<ArraySection, ParseError> {
        let (var, _) = self.expect_ident()?;
        let mut ranges = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            let lo = self.parse_expr()?;
            self.expect(&TokenKind::Colon)?;
            let len = self.parse_expr()?;
            self.expect(&TokenKind::RBracket)?;
            ranges.push((lo, len));
        }
        Ok(ArraySection { var, ranges })
    }
}

/// Reconstruct approximate text from a token slice (used for preserved
/// `#define` bodies).
pub(crate) fn tokens_to_text(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        let sym = t.kind.symbol();
        if !sym.is_empty() {
            out.push_str(sym);
            continue;
        }
        match &t.kind {
            TokenKind::Ident(s) => {
                if !out.is_empty() && out.chars().last().is_some_and(|c| c.is_alphanumeric()) {
                    out.push(' ');
                }
                out.push_str(s);
            }
            TokenKind::Int(v) => {
                if !out.is_empty() && out.chars().last().is_some_and(|c| c.is_alphanumeric()) {
                    out.push(' ');
                }
                out.push_str(&v.to_string());
            }
            TokenKind::Float(v) => out.push_str(&format!("{v:?}")),
            TokenKind::Str(s) => out.push_str(&format!("{s:?}")),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_function() {
        let sf = parse_file("int add(int a, int b) { return a + b; }").unwrap();
        let f = sf.find_function("add").unwrap();
        assert_eq!(f.params.len(), 2);
        assert!(f.is_definition());
    }

    #[test]
    fn parse_cuda_kernel_and_launch() {
        let src = r#"
__global__ void k(const int* in, int* out, size_t n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { out[i] = in[i] ^ 1; }
}
int main() {
    int* d_in;
    cudaMalloc(&d_in, 100 * sizeof(int));
    k<<<4, 32>>>(d_in, d_in, 100);
    return 0;
}
"#;
        let sf = parse_file(src).unwrap();
        let k = sf.find_function("k").unwrap();
        assert!(k.quals.cuda_global);
        assert_eq!(k.params[0].ty, Type::ptr(Type::Const(Box::new(Type::INT))));
        let main = sf.find_function("main").unwrap();
        let body = main.body.as_ref().unwrap();
        let has_launch = body.stmts.iter().any(|s| {
            matches!(&s.kind, StmtKind::Expr(e) if matches!(&e.kind, ExprKind::KernelLaunch { kernel, .. } if kernel == "k"))
        });
        assert!(has_launch);
    }

    #[test]
    fn parse_omp_offload_pragma() {
        let src = r#"
void f(int* a, int n) {
    #pragma omp target teams distribute parallel for map(tofrom: a[0:n]) collapse(1)
    for (int i = 0; i < n; i++) { a[i] = i; }
}
"#;
        let sf = parse_file(src).unwrap();
        let f = sf.find_function("f").unwrap();
        let body = f.body.as_ref().unwrap();
        match &body.stmts[0].kind {
            StmtKind::Omp { directive, body } => {
                assert!(directive.targets_device());
                assert!(directive.has(OmpConstruct::Parallel));
                assert_eq!(directive.collapse(), 1);
                assert!(body.is_some());
            }
            other => panic!("expected omp stmt, got {other:?}"),
        }
    }

    #[test]
    fn parse_omp_reduction() {
        let s = parse_stmt_str(
            "#pragma omp parallel for reduction(+: total)\nfor (int i = 0; i < n; i++) total += i;",
        )
        .unwrap();
        match s.kind {
            StmtKind::Omp { directive, .. } => {
                let (op, vars) = directive.reductions().next().unwrap();
                assert_eq!(*op, ReductionOp::Add);
                assert_eq!(vars, &vec!["total".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_barrier_is_standalone() {
        let src = "void f() { \n#pragma omp barrier\n int x = 1; }";
        let sf = parse_file(src).unwrap();
        let f = sf.find_function("f").unwrap();
        let stmts = &f.body.as_ref().unwrap().stmts;
        assert_eq!(stmts.len(), 2, "barrier must not swallow the next stmt");
    }

    #[test]
    fn parse_kokkos_view_and_lambda() {
        let src = r#"
int main() {
    Kokkos::View<double*> d("d", 100);
    Kokkos::parallel_for(100, KOKKOS_LAMBDA(int i) { d(i) = 2.0 * i; });
    Kokkos::fence();
    return 0;
}
"#;
        let sf = parse_file(src).unwrap();
        let main = sf.find_function("main").unwrap();
        let stmts = &main.body.as_ref().unwrap().stmts;
        match &stmts[0].kind {
            StmtKind::Decl(d) => {
                assert_eq!(
                    d.ty,
                    Type::View {
                        elem: ScalarType::Double,
                        rank: 1
                    }
                );
                assert!(matches!(d.init, Some(Init::Ctor(_))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_kokkos_policy_template_path() {
        let e = parse_expr_str("Kokkos::RangePolicy<>(0, n)").unwrap();
        match e.kind {
            ExprKind::Call { callee, .. } => match callee.kind {
                ExprKind::Path(segs) => assert_eq!(segs[0], "Kokkos"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_typedef_struct() {
        let src = "typedef struct { double energy; int mat; } Lookup;\nLookup make(void);";
        let sf = parse_file(src).unwrap();
        match &sf.items[0].kind {
            ItemKind::Struct(s) => {
                assert_eq!(s.name, "Lookup");
                assert!(s.is_typedef);
                assert_eq!(s.fields.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_named_type_decl_statement() {
        let s = parse_stmt_str("SimulationData* data = init(n);").unwrap();
        match s.kind {
            StmtKind::Decl(d) => {
                assert_eq!(d.ty, Type::ptr(Type::Named("SimulationData".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiplication_not_misparsed_as_decl() {
        let s = parse_stmt_str("total = a * b;").unwrap();
        assert!(matches!(s.kind, StmtKind::Expr(_)));
    }

    #[test]
    fn parse_cast_and_sizeof() {
        let e = parse_expr_str("(double*)malloc(n * sizeof(double))").unwrap();
        match e.kind {
            ExprKind::Cast { ty, .. } => assert_eq!(ty, Type::ptr(Type::DOUBLE)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_ternary_and_precedence() {
        let e = parse_expr_str("a + b * c == d ? 1 : 0").unwrap();
        assert!(matches!(e.kind, ExprKind::Ternary { .. }));
        // 1 + 2 * 3 parses as 1 + (2*3)
        let e = parse_expr_str("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary { op, rhs, .. } => {
                assert_eq!(op, BinOp::Add);
                assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_for_loop_with_decl() {
        let s = parse_stmt_str("for (int i = 0; i < n; i++) { x += i; }").unwrap();
        match s.kind {
            StmtKind::For {
                init, cond, step, ..
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(step.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_error_reports_span() {
        let err = parse_file("int f() { return 1 + ; }").unwrap_err();
        assert!(err.message.contains("expected expression"));
        assert!(err.span.start > 0);
    }

    #[test]
    fn missing_brace_errors() {
        assert!(parse_file("void f() { int x = 1; ").is_err());
    }

    #[test]
    fn omp_bad_reduction_operator_errors() {
        let toks = lexer::lex("#pragma omp parallel for reduction(@: x)\nint y;");
        // `@` fails at lex time already.
        assert!(toks.is_err());
        let err = parse_file(
            "void f() {\n#pragma omp parallel for reduction(%: x)\nfor(int i=0;i<1;i++){}\n}",
        )
        .unwrap_err();
        assert!(err.in_omp_directive);
    }

    #[test]
    fn unknown_omp_clause_is_lenient() {
        // Paper Listing 4: `num_threads` on teams distribute compiles (it is
        // semantically wrong but syntactically tolerated by real compilers).
        let src = "void f(int n) {\n#pragma omp teams distribute collapse(2) num_threads(64)\nfor (int i = 0; i < n; i++) {}\n}";
        assert!(parse_file(src).is_ok());
    }

    #[test]
    fn dim3_ctor_decl() {
        let s = parse_stmt_str("dim3 grid(gx, gy);").unwrap();
        match s.kind {
            StmtKind::Decl(d) => {
                assert_eq!(d.ty, Type::Dim3);
                assert!(matches!(d.init, Some(Init::Ctor(ref a)) if a.len() == 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_declarator_splits() {
        let s = parse_stmt_str("int x = 1, y = 2;").unwrap();
        match s.kind {
            StmtKind::Block(b) => assert_eq!(b.stmts.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn postfix_chains() {
        let e = parse_expr_str("data->grid[i * n + j].val++").unwrap();
        assert!(matches!(
            e.kind,
            ExprKind::Unary {
                op: UnaryOp::PostInc,
                ..
            }
        ));
    }

    #[test]
    fn array_decl_with_dims() {
        let s = parse_stmt_str("double a[10][20];").unwrap();
        match s.kind {
            StmtKind::Decl(d) => assert_eq!(d.array_dims.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn define_expansion_in_parse() {
        let sf = parse_file("#define N 256\nint arr[N];\n").unwrap();
        match &sf.items.last().unwrap().kind {
            ItemKind::Global(d) => {
                assert_eq!(d.array_dims[0].kind, ExprKind::IntLit(256));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn map_clause_multiple_sections() {
        let s = parse_stmt_str(
            "#pragma omp target data map(to: input[0:n*n]) map(from: output[0:n*n])\n{ int x = 1; }",
        )
        .unwrap();
        match s.kind {
            StmtKind::Omp { directive, body } => {
                assert_eq!(directive.map_clauses().count(), 2);
                assert!(body.is_some());
            }
            other => panic!("{other:?}"),
        }
    }
}
