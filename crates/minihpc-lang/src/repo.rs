//! In-memory model of a source repository: the unit of translation in
//! ParEval-Repo. A repository is a set of named files — sources, headers,
//! build files, documentation — exactly what gets shown to (and rewritten by)
//! a translation technique.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Classification of a repository file, used by prompt construction, the
//  dependency agent, and the build driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// A compilable source file (`.c`, `.cpp`, `.cu`).
    Source,
    /// A header (`.h`, `.hpp`, `.cuh`).
    Header,
    /// `Makefile`.
    Makefile,
    /// `CMakeLists.txt`.
    CMakeLists,
    /// Documentation or anything else (`README.md`, data files).
    Other,
}

impl FileKind {
    /// Classify by file name.
    pub fn of(path: &str) -> FileKind {
        let name = path.rsplit('/').next().unwrap_or(path);
        if name == "Makefile" || name == "makefile" {
            return FileKind::Makefile;
        }
        if name == "CMakeLists.txt" {
            return FileKind::CMakeLists;
        }
        match name.rsplit('.').next() {
            Some("c") | Some("cpp") | Some("cc") | Some("cu") | Some("cxx") => FileKind::Source,
            Some("h") | Some("hpp") | Some("cuh") | Some("hh") => FileKind::Header,
            _ => FileKind::Other,
        }
    }

    pub fn is_code(self) -> bool {
        matches!(self, FileKind::Source | FileKind::Header)
    }

    pub fn is_build_file(self) -> bool {
        matches!(self, FileKind::Makefile | FileKind::CMakeLists)
    }
}

/// A single repository file.
#[derive(Debug, Clone, PartialEq)]
pub struct RepoFile {
    pub path: String,
    pub contents: String,
}

impl RepoFile {
    pub fn kind(&self) -> FileKind {
        FileKind::of(&self.path)
    }
}

/// An in-memory source repository.
///
/// Files are kept in a `BTreeMap` keyed by path so iteration order (and thus
/// prompts, dependency resolution, and error logs) is deterministic. File
/// bodies are `Arc<str>` handles: cloning a repository (or overlaying a few
/// files on a clone, as repair rounds and Code-only scoring do) shares the
/// unchanged bodies instead of deep-copying every source.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceRepo {
    files: BTreeMap<String, Arc<str>>,
}

impl SourceRepo {
    pub fn new() -> Self {
        SourceRepo::default()
    }

    pub fn with_file(mut self, path: impl Into<String>, contents: impl Into<Arc<str>>) -> Self {
        self.add(path, contents);
        self
    }

    pub fn add(&mut self, path: impl Into<String>, contents: impl Into<Arc<str>>) {
        self.files.insert(path.into(), contents.into());
    }

    pub fn remove(&mut self, path: &str) -> Option<Arc<str>> {
        self.files.remove(path)
    }

    pub fn get(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(|c| &**c)
    }

    /// The shared handle of a file body (cheap to clone into another repo).
    pub fn get_shared(&self, path: &str) -> Option<Arc<str>> {
        self.files.get(path).cloned()
    }

    pub fn contains(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterate `(path, contents)` in deterministic path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(p, c)| (p.as_str(), &**c))
    }

    /// Iterate `(path, shared contents)` in deterministic path order.
    pub fn iter_shared(&self) -> impl Iterator<Item = (&str, &Arc<str>)> {
        self.files.iter().map(|(p, c)| (p.as_str(), c))
    }

    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Paths of all files of the given kind.
    pub fn paths_of_kind(&self, kind: FileKind) -> Vec<&str> {
        self.paths().filter(|p| FileKind::of(p) == kind).collect()
    }

    /// All code files (sources + headers).
    pub fn code_files(&self) -> Vec<&str> {
        self.paths().filter(|p| FileKind::of(p).is_code()).collect()
    }

    /// The build file (Makefile or CMakeLists.txt) if present.
    pub fn build_file(&self) -> Option<(&str, &str)> {
        self.iter().find(|(p, _)| FileKind::of(p).is_build_file())
    }

    /// Resolve a local `#include "path"` relative to the including file, the
    /// repository root, and `src/` (mirroring `-I. -Isrc` include paths).
    pub fn resolve_include(&self, from: &str, include: &str) -> Option<&str> {
        // Relative to the including file's directory.
        if let Some(dir) = from.rfind('/').map(|i| &from[..i]) {
            let candidate = format!("{dir}/{include}");
            if let Some((p, _)) = self.files.get_key_value(&candidate) {
                return Some(p.as_str());
            }
        }
        if let Some((p, _)) = self.files.get_key_value(include) {
            return Some(p.as_str());
        }
        let candidate = format!("src/{include}");
        if let Some((p, _)) = self.files.get_key_value(&candidate) {
            return Some(p.as_str());
        }
        None
    }

    /// Render the file tree in the format used by the paper's prompts
    /// (Listing 1): a `|--`/`+--` tree with `src/` subdirectories.
    pub fn file_tree(&self) -> String {
        let mut top: Vec<&str> = Vec::new();
        let mut dirs: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for path in self.files.keys() {
            match path.split_once('/') {
                Some((dir, rest)) => dirs.entry(dir).or_default().push(rest),
                None => top.push(path),
            }
        }
        let mut out = String::new();
        for (i, f) in top.iter().enumerate() {
            let last = i + 1 == top.len() && dirs.is_empty();
            out.push_str(if last { "+-- " } else { "|-- " });
            out.push_str(f);
            out.push('\n');
        }
        let ndirs = dirs.len();
        for (di, (dir, mut files)) in dirs.into_iter().enumerate() {
            let last_dir = di + 1 == ndirs;
            out.push_str(if last_dir { "+-- " } else { "|-- " });
            out.push_str(dir);
            out.push_str("/\n");
            files.sort_unstable();
            for f in files {
                out.push_str("    ");
                out.push_str("+-- ");
                out.push_str(f);
                out.push('\n');
            }
        }
        out
    }

    /// Total size of all file contents in bytes (used for context-window
    /// accounting in the token model).
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(|c| c.len()).sum()
    }
}

impl fmt::Display for SourceRepo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.file_tree())
    }
}

impl FromIterator<(String, String)> for SourceRepo {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        SourceRepo {
            files: iter.into_iter().map(|(p, c)| (p, Arc::from(c))).collect(),
        }
    }
}

impl FromIterator<(String, Arc<str>)> for SourceRepo {
    fn from_iter<T: IntoIterator<Item = (String, Arc<str>)>>(iter: T) -> Self {
        SourceRepo {
            files: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SourceRepo {
        SourceRepo::new()
            .with_file("Makefile", "all:\n\techo hi\n")
            .with_file("README.md", "# app\n")
            .with_file("src/main.cpp", "int main() { return 0; }\n")
            .with_file("src/kernel.h", "void k();\n")
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(FileKind::of("Makefile"), FileKind::Makefile);
        assert_eq!(FileKind::of("CMakeLists.txt"), FileKind::CMakeLists);
        assert_eq!(FileKind::of("src/main.cu"), FileKind::Source);
        assert_eq!(FileKind::of("src/kernel.cuh"), FileKind::Header);
        assert_eq!(FileKind::of("README.md"), FileKind::Other);
    }

    #[test]
    fn file_tree_format() {
        let tree = sample().file_tree();
        assert!(tree.contains("|-- Makefile"), "{tree}");
        assert!(tree.contains("+-- src/"), "{tree}");
        assert!(tree.contains("    +-- main.cpp"), "{tree}");
    }

    #[test]
    fn resolve_include_same_dir() {
        let repo = sample();
        assert_eq!(
            repo.resolve_include("src/main.cpp", "kernel.h"),
            Some("src/kernel.h")
        );
        assert_eq!(repo.resolve_include("src/main.cpp", "missing.h"), None);
    }

    #[test]
    fn resolve_include_from_root() {
        let repo = SourceRepo::new()
            .with_file("main.cpp", "")
            .with_file("src/util.h", "");
        assert_eq!(
            repo.resolve_include("main.cpp", "util.h"),
            Some("src/util.h")
        );
    }

    #[test]
    fn build_file_lookup() {
        assert_eq!(sample().build_file().map(|(p, _)| p), Some("Makefile"));
        let repo = SourceRepo::new().with_file("CMakeLists.txt", "project(x)");
        assert_eq!(repo.build_file().map(|(p, _)| p), Some("CMakeLists.txt"));
    }

    #[test]
    fn deterministic_iteration() {
        let r1 = sample();
        let mut r2 = SourceRepo::new();
        // Insert in a different order.
        r2.add("src/kernel.h", "void k();\n");
        r2.add("README.md", "# app\n");
        r2.add("src/main.cpp", "int main() { return 0; }\n");
        r2.add("Makefile", "all:\n\techo hi\n");
        let p1: Vec<_> = r1.paths().collect();
        let p2: Vec<_> = r2.paths().collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn clones_share_file_bodies() {
        let a = sample();
        let b = a.clone();
        let pa = a.get_shared("src/main.cpp").unwrap();
        let pb = b.get_shared("src/main.cpp").unwrap();
        assert!(Arc::ptr_eq(&pa, &pb), "clone must not deep-copy bodies");

        // Overlaying one file leaves the other handles shared.
        let mut c = a.clone();
        c.add("src/main.cpp", "int main() { return 1; }\n");
        assert!(!Arc::ptr_eq(&pa, &c.get_shared("src/main.cpp").unwrap()));
        assert!(Arc::ptr_eq(
            &a.get_shared("src/kernel.h").unwrap(),
            &c.get_shared("src/kernel.h").unwrap()
        ));
    }

    #[test]
    fn code_files_excludes_build_and_docs() {
        let files = sample();
        let code = files.code_files();
        assert_eq!(code, vec!["src/kernel.h", "src/main.cpp"]);
    }
}
