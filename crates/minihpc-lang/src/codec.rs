//! A stable byte codec for the MiniHPC AST.
//!
//! The build cache's per-file tier persists compiled translation units —
//! whose payload is an AST — on disk, across processes whose `std` hashers
//! and allocation layouts differ. This module gives every AST node a
//! versionless little-endian encoding in the same style as the journal
//! codec: u8 tags with exhaustive matches (adding an enum variant refuses
//! to compile until it gets a code), u32 length prefixes, and total
//! decoders that return `None` on any malformed input instead of
//! panicking — corrupt bytes must read as "no entry", never as a wrong
//! AST.
//!
//! Format evolution is by re-keying, not by versioned decode: consumers
//! bake a format tag into the content key of whatever they store, so a
//! codec change simply stops matching old entries.

use crate::ast::{
    BinOp, Block, CaptureMode, Expr, ExprKind, Field, FnQuals, Function, Init, Item, ItemKind,
    Param, ScalarType, SourceFile, Stmt, StmtKind, StructDef, Type, UnaryOp, VarDecl,
};
use crate::model::ModelUsage;
use crate::pragma::{ArraySection, MapKind, OmpClause, OmpConstruct, OmpDirective, ReductionOp};
use crate::span::Span;

/// Upper bound a decoder pre-allocates for any length-prefixed sequence;
/// corrupt lengths beyond it still decode (by growing), they just don't
/// reserve memory up front.
const PREALLOC_CAP: usize = 1024;

// ---------------------------------------------------------------------------
// Enum codes
// ---------------------------------------------------------------------------

fn scalar_code(s: ScalarType) -> u8 {
    match s {
        ScalarType::Void => 0,
        ScalarType::Bool => 1,
        ScalarType::Char => 2,
        ScalarType::Int => 3,
        ScalarType::Long => 4,
        ScalarType::SizeT => 5,
        ScalarType::Float => 6,
        ScalarType::Double => 7,
    }
}

fn scalar_from(code: u8) -> Option<ScalarType> {
    Some(match code {
        0 => ScalarType::Void,
        1 => ScalarType::Bool,
        2 => ScalarType::Char,
        3 => ScalarType::Int,
        4 => ScalarType::Long,
        5 => ScalarType::SizeT,
        6 => ScalarType::Float,
        7 => ScalarType::Double,
        _ => return None,
    })
}

fn unary_code(op: UnaryOp) -> u8 {
    match op {
        UnaryOp::Neg => 0,
        UnaryOp::Not => 1,
        UnaryOp::BitNot => 2,
        UnaryOp::Deref => 3,
        UnaryOp::AddrOf => 4,
        UnaryOp::PreInc => 5,
        UnaryOp::PreDec => 6,
        UnaryOp::PostInc => 7,
        UnaryOp::PostDec => 8,
    }
}

fn unary_from(code: u8) -> Option<UnaryOp> {
    Some(match code {
        0 => UnaryOp::Neg,
        1 => UnaryOp::Not,
        2 => UnaryOp::BitNot,
        3 => UnaryOp::Deref,
        4 => UnaryOp::AddrOf,
        5 => UnaryOp::PreInc,
        6 => UnaryOp::PreDec,
        7 => UnaryOp::PostInc,
        8 => UnaryOp::PostDec,
        _ => return None,
    })
}

fn binop_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Shl => 5,
        BinOp::Shr => 6,
        BinOp::Lt => 7,
        BinOp::Gt => 8,
        BinOp::Le => 9,
        BinOp::Ge => 10,
        BinOp::Eq => 11,
        BinOp::Ne => 12,
        BinOp::BitAnd => 13,
        BinOp::BitOr => 14,
        BinOp::BitXor => 15,
        BinOp::And => 16,
        BinOp::Or => 17,
    }
}

fn binop_from(code: u8) -> Option<BinOp> {
    Some(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Shl,
        6 => BinOp::Shr,
        7 => BinOp::Lt,
        8 => BinOp::Gt,
        9 => BinOp::Le,
        10 => BinOp::Ge,
        11 => BinOp::Eq,
        12 => BinOp::Ne,
        13 => BinOp::BitAnd,
        14 => BinOp::BitOr,
        15 => BinOp::BitXor,
        16 => BinOp::And,
        17 => BinOp::Or,
        _ => return None,
    })
}

fn capture_code(c: CaptureMode) -> u8 {
    match c {
        CaptureMode::ByValue => 0,
        CaptureMode::ByRef => 1,
        CaptureMode::KokkosLambda => 2,
    }
}

fn capture_from(code: u8) -> Option<CaptureMode> {
    Some(match code {
        0 => CaptureMode::ByValue,
        1 => CaptureMode::ByRef,
        2 => CaptureMode::KokkosLambda,
        _ => return None,
    })
}

fn construct_code(c: OmpConstruct) -> u8 {
    match c {
        OmpConstruct::Parallel => 0,
        OmpConstruct::For => 1,
        OmpConstruct::Simd => 2,
        OmpConstruct::Target => 3,
        OmpConstruct::Teams => 4,
        OmpConstruct::Distribute => 5,
        OmpConstruct::TargetData => 6,
        OmpConstruct::TargetUpdate => 7,
        OmpConstruct::Barrier => 8,
        OmpConstruct::Critical => 9,
        OmpConstruct::Atomic => 10,
        OmpConstruct::Single => 11,
        OmpConstruct::Master => 12,
    }
}

fn construct_from(code: u8) -> Option<OmpConstruct> {
    Some(match code {
        0 => OmpConstruct::Parallel,
        1 => OmpConstruct::For,
        2 => OmpConstruct::Simd,
        3 => OmpConstruct::Target,
        4 => OmpConstruct::Teams,
        5 => OmpConstruct::Distribute,
        6 => OmpConstruct::TargetData,
        7 => OmpConstruct::TargetUpdate,
        8 => OmpConstruct::Barrier,
        9 => OmpConstruct::Critical,
        10 => OmpConstruct::Atomic,
        11 => OmpConstruct::Single,
        12 => OmpConstruct::Master,
        _ => return None,
    })
}

fn reduction_code(op: ReductionOp) -> u8 {
    match op {
        ReductionOp::Add => 0,
        ReductionOp::Mul => 1,
        ReductionOp::Min => 2,
        ReductionOp::Max => 3,
        ReductionOp::BitXor => 4,
        ReductionOp::BitAnd => 5,
        ReductionOp::BitOr => 6,
    }
}

fn reduction_from(code: u8) -> Option<ReductionOp> {
    Some(match code {
        0 => ReductionOp::Add,
        1 => ReductionOp::Mul,
        2 => ReductionOp::Min,
        3 => ReductionOp::Max,
        4 => ReductionOp::BitXor,
        5 => ReductionOp::BitAnd,
        6 => ReductionOp::BitOr,
        _ => return None,
    })
}

fn map_code(k: MapKind) -> u8 {
    match k {
        MapKind::To => 0,
        MapKind::From => 1,
        MapKind::ToFrom => 2,
        MapKind::Alloc => 3,
    }
}

fn map_from(code: u8) -> Option<MapKind> {
    Some(match code {
        0 => MapKind::To,
        1 => MapKind::From,
        2 => MapKind::ToFrom,
        3 => MapKind::Alloc,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

/// Append-only byte encoder over the AST. Primitive writers are public so
/// downstream codecs (the build crate's compiled-unit format) can compose
/// their own frames around AST payloads.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn str_list(&mut self, items: &[String]) {
        self.u32(items.len() as u32);
        for s in items {
            self.str(s);
        }
    }

    pub fn span(&mut self, s: Span) {
        self.u32(s.start);
        self.u32(s.end);
    }

    pub fn ty(&mut self, t: &Type) {
        match t {
            Type::Scalar(s) => {
                self.u8(0);
                self.u8(scalar_code(*s));
            }
            Type::Ptr(inner) => {
                self.u8(1);
                self.ty(inner);
            }
            Type::Const(inner) => {
                self.u8(2);
                self.ty(inner);
            }
            Type::Named(name) => {
                self.u8(3);
                self.str(name);
            }
            Type::Dim3 => self.u8(4),
            Type::View { elem, rank } => {
                self.u8(5);
                self.u8(scalar_code(*elem));
                self.u8(*rank);
            }
        }
    }

    pub fn expr(&mut self, e: &Expr) {
        self.span(e.span);
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.u8(0);
                self.i64(*v);
            }
            ExprKind::FloatLit(v) => {
                self.u8(1);
                self.f64(*v);
            }
            ExprKind::StrLit(s) => {
                self.u8(2);
                self.str(s);
            }
            ExprKind::CharLit(c) => {
                self.u8(3);
                self.u32(*c as u32);
            }
            ExprKind::BoolLit(b) => {
                self.u8(4);
                self.boolean(*b);
            }
            ExprKind::Ident(name) => {
                self.u8(5);
                self.str(name);
            }
            ExprKind::Path(segs) => {
                self.u8(6);
                self.str_list(segs);
            }
            ExprKind::Unary { op, expr } => {
                self.u8(7);
                self.u8(unary_code(*op));
                self.expr(expr);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.u8(8);
                self.u8(binop_code(*op));
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.u8(9);
                match op {
                    Some(op) => {
                        self.u8(1);
                        self.u8(binop_code(*op));
                    }
                    None => self.u8(0),
                }
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Ternary { cond, then, els } => {
                self.u8(10);
                self.expr(cond);
                self.expr(then);
                self.expr(els);
            }
            ExprKind::Call { callee, args } => {
                self.u8(11);
                self.expr(callee);
                self.expr_list(args);
            }
            ExprKind::KernelLaunch {
                kernel,
                grid,
                block,
                args,
            } => {
                self.u8(12);
                self.str(kernel);
                self.expr(grid);
                self.expr(block);
                self.expr_list(args);
            }
            ExprKind::Index { base, index } => {
                self.u8(13);
                self.expr(base);
                self.expr(index);
            }
            ExprKind::Member {
                base,
                member,
                arrow,
            } => {
                self.u8(14);
                self.expr(base);
                self.str(member);
                self.boolean(*arrow);
            }
            ExprKind::Cast { ty, expr } => {
                self.u8(15);
                self.ty(ty);
                self.expr(expr);
            }
            ExprKind::SizeOfType(ty) => {
                self.u8(16);
                self.ty(ty);
            }
            ExprKind::SizeOfExpr(expr) => {
                self.u8(17);
                self.expr(expr);
            }
            ExprKind::Lambda {
                capture,
                params,
                body,
            } => {
                self.u8(18);
                self.u8(capture_code(*capture));
                self.u32(params.len() as u32);
                for p in params {
                    self.param(p);
                }
                self.block(body);
            }
            ExprKind::Paren(inner) => {
                self.u8(19);
                self.expr(inner);
            }
        }
    }

    pub fn expr_list(&mut self, exprs: &[Expr]) {
        self.u32(exprs.len() as u32);
        for e in exprs {
            self.expr(e);
        }
    }

    fn opt_expr(&mut self, e: &Option<Expr>) {
        match e {
            Some(e) => {
                self.u8(1);
                self.expr(e);
            }
            None => self.u8(0),
        }
    }

    pub fn param(&mut self, p: &Param) {
        self.ty(&p.ty);
        self.str(&p.name);
    }

    pub fn block(&mut self, b: &Block) {
        self.span(b.span);
        self.u32(b.stmts.len() as u32);
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    pub fn init(&mut self, init: &Init) {
        match init {
            Init::Expr(e) => {
                self.u8(0);
                self.expr(e);
            }
            Init::List(es) => {
                self.u8(1);
                self.expr_list(es);
            }
            Init::Ctor(es) => {
                self.u8(2);
                self.expr_list(es);
            }
        }
    }

    pub fn var_decl(&mut self, v: &VarDecl) {
        self.str(&v.name);
        self.ty(&v.ty);
        self.expr_list(&v.array_dims);
        match &v.init {
            Some(init) => {
                self.u8(1);
                self.init(init);
            }
            None => self.u8(0),
        }
        self.boolean(v.is_static);
    }

    pub fn stmt(&mut self, s: &Stmt) {
        self.span(s.span);
        match &s.kind {
            StmtKind::Decl(v) => {
                self.u8(0);
                self.var_decl(v);
            }
            StmtKind::Expr(e) => {
                self.u8(1);
                self.expr(e);
            }
            StmtKind::If { cond, then, els } => {
                self.u8(2);
                self.expr(cond);
                self.stmt(then);
                match els {
                    Some(els) => {
                        self.u8(1);
                        self.stmt(els);
                    }
                    None => self.u8(0),
                }
            }
            StmtKind::While { cond, body } => {
                self.u8(3);
                self.expr(cond);
                self.stmt(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.u8(4);
                match init {
                    Some(init) => {
                        self.u8(1);
                        self.stmt(init);
                    }
                    None => self.u8(0),
                }
                self.opt_expr(cond);
                self.opt_expr(step);
                self.stmt(body);
            }
            StmtKind::Return(e) => {
                self.u8(5);
                self.opt_expr(e);
            }
            StmtKind::Break => self.u8(6),
            StmtKind::Continue => self.u8(7),
            StmtKind::Block(b) => {
                self.u8(8);
                self.block(b);
            }
            StmtKind::Omp { directive, body } => {
                self.u8(9);
                self.omp_directive(directive);
                match body {
                    Some(body) => {
                        self.u8(1);
                        self.stmt(body);
                    }
                    None => self.u8(0),
                }
            }
            StmtKind::RawPragma(text) => {
                self.u8(10);
                self.str(text);
            }
            StmtKind::Empty => self.u8(11),
        }
    }

    pub fn omp_directive(&mut self, d: &OmpDirective) {
        self.span(d.span);
        self.u32(d.constructs.len() as u32);
        for c in &d.constructs {
            self.u8(construct_code(*c));
        }
        self.u32(d.clauses.len() as u32);
        for cl in &d.clauses {
            self.omp_clause(cl);
        }
    }

    fn omp_clause(&mut self, cl: &OmpClause) {
        match cl {
            OmpClause::NumThreads(e) => {
                self.u8(0);
                self.expr(e);
            }
            OmpClause::NumTeams(e) => {
                self.u8(1);
                self.expr(e);
            }
            OmpClause::ThreadLimit(e) => {
                self.u8(2);
                self.expr(e);
            }
            OmpClause::Collapse(n) => {
                self.u8(3);
                self.i64(*n);
            }
            OmpClause::Reduction { op, vars } => {
                self.u8(4);
                self.u8(reduction_code(*op));
                self.str_list(vars);
            }
            OmpClause::Map { kind, sections } => {
                self.u8(5);
                self.u8(map_code(*kind));
                self.u32(sections.len() as u32);
                for s in sections {
                    self.str(&s.var);
                    self.u32(s.ranges.len() as u32);
                    for (lo, len) in &s.ranges {
                        self.expr(lo);
                        self.expr(len);
                    }
                }
            }
            OmpClause::Private(vars) => {
                self.u8(6);
                self.str_list(vars);
            }
            OmpClause::FirstPrivate(vars) => {
                self.u8(7);
                self.str_list(vars);
            }
            OmpClause::Shared(vars) => {
                self.u8(8);
                self.str_list(vars);
            }
            OmpClause::Schedule { kind, chunk } => {
                self.u8(9);
                self.str(kind);
                self.opt_expr(chunk);
            }
            OmpClause::Default(kind) => {
                self.u8(10);
                self.str(kind);
            }
            OmpClause::If(e) => {
                self.u8(11);
                self.expr(e);
            }
            OmpClause::Device(e) => {
                self.u8(12);
                self.expr(e);
            }
            OmpClause::Unknown { name, text } => {
                self.u8(13);
                self.str(name);
                self.str(text);
            }
        }
    }

    pub fn fn_quals(&mut self, q: FnQuals) {
        let FnQuals {
            cuda_global,
            cuda_device,
            cuda_host,
            is_static,
            is_inline,
        } = q;
        let bits = (cuda_global as u8)
            | (cuda_device as u8) << 1
            | (cuda_host as u8) << 2
            | (is_static as u8) << 3
            | (is_inline as u8) << 4;
        self.u8(bits);
    }

    pub fn function(&mut self, f: &Function) {
        self.fn_quals(f.quals);
        self.ty(&f.ret);
        self.str(&f.name);
        self.u32(f.params.len() as u32);
        for p in &f.params {
            self.param(p);
        }
        match &f.body {
            Some(b) => {
                self.u8(1);
                self.block(b);
            }
            None => self.u8(0),
        }
        self.span(f.span);
    }

    pub fn struct_def(&mut self, s: &StructDef) {
        self.str(&s.name);
        self.u32(s.fields.len() as u32);
        for field in &s.fields {
            self.ty(&field.ty);
            self.str(&field.name);
            self.expr_list(&field.array_dims);
        }
        self.boolean(s.is_typedef);
        self.span(s.span);
    }

    pub fn item(&mut self, item: &Item) {
        self.span(item.span);
        match &item.kind {
            ItemKind::Include { path, system } => {
                self.u8(0);
                self.str(path);
                self.boolean(*system);
            }
            ItemKind::Define { name, body_text } => {
                self.u8(1);
                self.str(name);
                self.str(body_text);
            }
            ItemKind::OtherDirective(text) => {
                self.u8(2);
                self.str(text);
            }
            ItemKind::Struct(s) => {
                self.u8(3);
                self.struct_def(s);
            }
            ItemKind::Global(v) => {
                self.u8(4);
                self.var_decl(v);
            }
            ItemKind::Function(f) => {
                self.u8(5);
                self.function(f);
            }
        }
    }

    pub fn source_file(&mut self, sf: &SourceFile) {
        self.u32(sf.items.len() as u32);
        for item in &sf.items {
            self.item(item);
        }
    }

    pub fn model_usage(&mut self, u: &ModelUsage) {
        let ModelUsage {
            cuda_kernels,
            cuda_launches,
            cuda_api_calls,
            omp_parallel_directives,
            omp_target_directives,
            kokkos_views,
            kokkos_parallel_calls,
        } = u;
        self.u64(*cuda_kernels as u64);
        self.u64(*cuda_launches as u64);
        self.u64(*cuda_api_calls as u64);
        self.u64(*omp_parallel_directives as u64);
        self.u64(*omp_target_directives as u64);
        self.u64(*kokkos_views as u64);
        self.u64(*kokkos_parallel_calls as u64);
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// Bounds-checked decoder over untrusted bytes. Every method is total:
/// malformed input yields `None`, never a panic. The expression/statement
/// decoders cap recursion depth so a hostile payload cannot blow the
/// stack.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: u32,
}

/// Maximum nesting the decoders accept — far above anything the parser
/// produces, and small enough that the recursion fits a default 2 MiB
/// test-thread stack even with debug-build frame sizes. A legitimate AST
/// deeper than this fails to decode, which consumers treat as a cache
/// miss — safe, just slower.
const MAX_DEPTH: u32 = 200;

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Dec {
            buf,
            pos: 0,
            depth: 0,
        }
    }

    /// True when every byte has been consumed (decoders should check this
    /// after the last field so trailing garbage is rejected).
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn enter(&mut self) -> Option<()> {
        self.depth += 1;
        (self.depth <= MAX_DEPTH).then_some(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub fn boolean(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    pub fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    pub fn str_list(&mut self) -> Option<Vec<String>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            out.push(self.str()?);
        }
        Some(out)
    }

    pub fn span(&mut self) -> Option<Span> {
        let start = self.u32()?;
        let end = self.u32()?;
        (start <= end).then_some(Span { start, end })
    }

    pub fn ty(&mut self) -> Option<Type> {
        self.enter()?;
        let ty = match self.u8()? {
            0 => Type::Scalar(scalar_from(self.u8()?)?),
            1 => Type::Ptr(Box::new(self.ty()?)),
            2 => Type::Const(Box::new(self.ty()?)),
            3 => Type::Named(self.str()?),
            4 => Type::Dim3,
            5 => Type::View {
                elem: scalar_from(self.u8()?)?,
                rank: self.u8()?,
            },
            _ => return None,
        };
        self.leave();
        Some(ty)
    }

    pub fn expr(&mut self) -> Option<Expr> {
        self.enter()?;
        let span = self.span()?;
        let kind = match self.u8()? {
            0 => ExprKind::IntLit(self.i64()?),
            1 => ExprKind::FloatLit(self.f64()?),
            2 => ExprKind::StrLit(self.str()?),
            3 => ExprKind::CharLit(char::from_u32(self.u32()?)?),
            4 => ExprKind::BoolLit(self.boolean()?),
            5 => ExprKind::Ident(self.str()?),
            6 => ExprKind::Path(self.str_list()?),
            7 => ExprKind::Unary {
                op: unary_from(self.u8()?)?,
                expr: Box::new(self.expr()?),
            },
            8 => ExprKind::Binary {
                op: binop_from(self.u8()?)?,
                lhs: Box::new(self.expr()?),
                rhs: Box::new(self.expr()?),
            },
            9 => {
                let op = match self.u8()? {
                    0 => None,
                    1 => Some(binop_from(self.u8()?)?),
                    _ => return None,
                };
                ExprKind::Assign {
                    op,
                    lhs: Box::new(self.expr()?),
                    rhs: Box::new(self.expr()?),
                }
            }
            10 => ExprKind::Ternary {
                cond: Box::new(self.expr()?),
                then: Box::new(self.expr()?),
                els: Box::new(self.expr()?),
            },
            11 => ExprKind::Call {
                callee: Box::new(self.expr()?),
                args: self.expr_list()?,
            },
            12 => ExprKind::KernelLaunch {
                kernel: self.str()?,
                grid: Box::new(self.expr()?),
                block: Box::new(self.expr()?),
                args: self.expr_list()?,
            },
            13 => ExprKind::Index {
                base: Box::new(self.expr()?),
                index: Box::new(self.expr()?),
            },
            14 => ExprKind::Member {
                base: Box::new(self.expr()?),
                member: self.str()?,
                arrow: self.boolean()?,
            },
            15 => ExprKind::Cast {
                ty: self.ty()?,
                expr: Box::new(self.expr()?),
            },
            16 => ExprKind::SizeOfType(self.ty()?),
            17 => ExprKind::SizeOfExpr(Box::new(self.expr()?)),
            18 => {
                let capture = capture_from(self.u8()?)?;
                let n = self.u32()? as usize;
                let mut params = Vec::with_capacity(n.min(PREALLOC_CAP));
                for _ in 0..n {
                    params.push(self.param()?);
                }
                ExprKind::Lambda {
                    capture,
                    params,
                    body: self.block()?,
                }
            }
            19 => ExprKind::Paren(Box::new(self.expr()?)),
            _ => return None,
        };
        self.leave();
        Some(Expr { kind, span })
    }

    pub fn expr_list(&mut self) -> Option<Vec<Expr>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            out.push(self.expr()?);
        }
        Some(out)
    }

    fn opt_expr(&mut self) -> Option<Option<Expr>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.expr()?)),
            _ => None,
        }
    }

    pub fn param(&mut self) -> Option<Param> {
        Some(Param {
            ty: self.ty()?,
            name: self.str()?,
        })
    }

    pub fn block(&mut self) -> Option<Block> {
        self.enter()?;
        let span = self.span()?;
        let n = self.u32()? as usize;
        let mut stmts = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            stmts.push(self.stmt()?);
        }
        self.leave();
        Some(Block { stmts, span })
    }

    pub fn init(&mut self) -> Option<Init> {
        Some(match self.u8()? {
            0 => Init::Expr(self.expr()?),
            1 => Init::List(self.expr_list()?),
            2 => Init::Ctor(self.expr_list()?),
            _ => return None,
        })
    }

    pub fn var_decl(&mut self) -> Option<VarDecl> {
        let name = self.str()?;
        let ty = self.ty()?;
        let array_dims = self.expr_list()?;
        let init = match self.u8()? {
            0 => None,
            1 => Some(self.init()?),
            _ => return None,
        };
        Some(VarDecl {
            name,
            ty,
            array_dims,
            init,
            is_static: self.boolean()?,
        })
    }

    pub fn stmt(&mut self) -> Option<Stmt> {
        self.enter()?;
        let span = self.span()?;
        let kind = match self.u8()? {
            0 => StmtKind::Decl(self.var_decl()?),
            1 => StmtKind::Expr(self.expr()?),
            2 => {
                let cond = self.expr()?;
                let then = Box::new(self.stmt()?);
                let els = match self.u8()? {
                    0 => None,
                    1 => Some(Box::new(self.stmt()?)),
                    _ => return None,
                };
                StmtKind::If { cond, then, els }
            }
            3 => StmtKind::While {
                cond: self.expr()?,
                body: Box::new(self.stmt()?),
            },
            4 => {
                let init = match self.u8()? {
                    0 => None,
                    1 => Some(Box::new(self.stmt()?)),
                    _ => return None,
                };
                StmtKind::For {
                    init,
                    cond: self.opt_expr()?,
                    step: self.opt_expr()?,
                    body: Box::new(self.stmt()?),
                }
            }
            5 => StmtKind::Return(self.opt_expr()?),
            6 => StmtKind::Break,
            7 => StmtKind::Continue,
            8 => StmtKind::Block(self.block()?),
            9 => {
                let directive = self.omp_directive()?;
                let body = match self.u8()? {
                    0 => None,
                    1 => Some(Box::new(self.stmt()?)),
                    _ => return None,
                };
                StmtKind::Omp { directive, body }
            }
            10 => StmtKind::RawPragma(self.str()?),
            11 => StmtKind::Empty,
            _ => return None,
        };
        self.leave();
        Some(Stmt { kind, span })
    }

    pub fn omp_directive(&mut self) -> Option<OmpDirective> {
        let span = self.span()?;
        let nc = self.u32()? as usize;
        let mut constructs = Vec::with_capacity(nc.min(PREALLOC_CAP));
        for _ in 0..nc {
            constructs.push(construct_from(self.u8()?)?);
        }
        let ncl = self.u32()? as usize;
        let mut clauses = Vec::with_capacity(ncl.min(PREALLOC_CAP));
        for _ in 0..ncl {
            clauses.push(self.omp_clause()?);
        }
        Some(OmpDirective {
            constructs,
            clauses,
            span,
        })
    }

    fn omp_clause(&mut self) -> Option<OmpClause> {
        Some(match self.u8()? {
            0 => OmpClause::NumThreads(self.expr()?),
            1 => OmpClause::NumTeams(self.expr()?),
            2 => OmpClause::ThreadLimit(self.expr()?),
            3 => OmpClause::Collapse(self.i64()?),
            4 => OmpClause::Reduction {
                op: reduction_from(self.u8()?)?,
                vars: self.str_list()?,
            },
            5 => {
                let kind = map_from(self.u8()?)?;
                let n = self.u32()? as usize;
                let mut sections = Vec::with_capacity(n.min(PREALLOC_CAP));
                for _ in 0..n {
                    let var = self.str()?;
                    let nr = self.u32()? as usize;
                    let mut ranges = Vec::with_capacity(nr.min(PREALLOC_CAP));
                    for _ in 0..nr {
                        let lo = self.expr()?;
                        let len = self.expr()?;
                        ranges.push((lo, len));
                    }
                    sections.push(ArraySection { var, ranges });
                }
                OmpClause::Map { kind, sections }
            }
            6 => OmpClause::Private(self.str_list()?),
            7 => OmpClause::FirstPrivate(self.str_list()?),
            8 => OmpClause::Shared(self.str_list()?),
            9 => OmpClause::Schedule {
                kind: self.str()?,
                chunk: self.opt_expr()?,
            },
            10 => OmpClause::Default(self.str()?),
            11 => OmpClause::If(self.expr()?),
            12 => OmpClause::Device(self.expr()?),
            13 => OmpClause::Unknown {
                name: self.str()?,
                text: self.str()?,
            },
            _ => return None,
        })
    }

    pub fn fn_quals(&mut self) -> Option<FnQuals> {
        let bits = self.u8()?;
        if bits >= 1 << 5 {
            return None;
        }
        Some(FnQuals {
            cuda_global: bits & 1 != 0,
            cuda_device: bits & (1 << 1) != 0,
            cuda_host: bits & (1 << 2) != 0,
            is_static: bits & (1 << 3) != 0,
            is_inline: bits & (1 << 4) != 0,
        })
    }

    pub fn function(&mut self) -> Option<Function> {
        let quals = self.fn_quals()?;
        let ret = self.ty()?;
        let name = self.str()?;
        let n = self.u32()? as usize;
        let mut params = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            params.push(self.param()?);
        }
        let body = match self.u8()? {
            0 => None,
            1 => Some(self.block()?),
            _ => return None,
        };
        Some(Function {
            quals,
            ret,
            name,
            params,
            body,
            span: self.span()?,
        })
    }

    pub fn struct_def(&mut self) -> Option<StructDef> {
        let name = self.str()?;
        let n = self.u32()? as usize;
        let mut fields = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            fields.push(Field {
                ty: self.ty()?,
                name: self.str()?,
                array_dims: self.expr_list()?,
            });
        }
        Some(StructDef {
            name,
            fields,
            is_typedef: self.boolean()?,
            span: self.span()?,
        })
    }

    pub fn item(&mut self) -> Option<Item> {
        let span = self.span()?;
        let kind = match self.u8()? {
            0 => ItemKind::Include {
                path: self.str()?,
                system: self.boolean()?,
            },
            1 => ItemKind::Define {
                name: self.str()?,
                body_text: self.str()?,
            },
            2 => ItemKind::OtherDirective(self.str()?),
            3 => ItemKind::Struct(self.struct_def()?),
            4 => ItemKind::Global(self.var_decl()?),
            5 => ItemKind::Function(self.function()?),
            _ => return None,
        };
        Some(Item { kind, span })
    }

    pub fn source_file(&mut self) -> Option<SourceFile> {
        let n = self.u32()? as usize;
        let mut items = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            items.push(self.item()?);
        }
        Some(SourceFile { items })
    }

    pub fn model_usage(&mut self) -> Option<ModelUsage> {
        Some(ModelUsage {
            cuda_kernels: self.u64()? as usize,
            cuda_launches: self.u64()? as usize,
            cuda_api_calls: self.u64()? as usize,
            omp_parallel_directives: self.u64()? as usize,
            omp_target_directives: self.u64()? as usize,
            kokkos_views: self.u64()? as usize,
            kokkos_parallel_calls: self.u64()? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn round_trip(sf: &SourceFile) {
        let mut enc = Enc::new();
        enc.source_file(sf);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = dec.source_file().expect("decode failed");
        assert!(dec.at_end(), "trailing bytes after decode");
        assert_eq!(&back, sf);
        // Truncation at any point must fail cleanly, never panic or
        // produce a spurious AST of the full length.
        for cut in [0, 1, bytes.len() / 2, bytes.len().saturating_sub(1)] {
            let mut dec = Dec::new(&bytes[..cut]);
            if let Some(partial) = dec.source_file() {
                assert_ne!(&partial, sf, "truncated bytes decoded to the full AST");
            }
        }
    }

    #[test]
    fn cuda_kernel_round_trips() {
        let sf = parse_file(
            r#"
#include <cuda_runtime.h>
#include "util.h"
#define N 64
struct Pair { int a; double b[4]; };
static int counter = 0;
__global__ void k(int* a, size_t n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) a[i] = (int)(i * 2) % 7;
}
int main(void) {
    int* d;
    cudaMalloc(&d, N * sizeof(int));
    dim3 grid(2, 1);
    k<<<grid, 32>>>(d, N);
    cudaDeviceSynchronize();
    cudaFree(d);
    return 0;
}
"#,
        )
        .unwrap();
        round_trip(&sf);
    }

    #[test]
    fn omp_directives_round_trip() {
        let sf = parse_file(
            r#"
void run(double* a, double* b, int n) {
    double sum = 0.0;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(tofrom: a[0:n]) map(to: b[0:n]) reduction(+: sum) num_threads(8)
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            a[i] += b[j] > 0.5 ? b[j] : -b[j];
            sum += a[i];
        }
    }
    #pragma omp barrier
    while (n > 0) { n--; continue; }
}
"#,
        )
        .unwrap();
        round_trip(&sf);
    }

    #[test]
    fn kokkos_lambda_round_trips() {
        let sf = parse_file(
            r#"
#include <Kokkos_Core.hpp>
int main() {
    Kokkos::initialize();
    {
        Kokkos::View<double*> d("d", 100);
        Kokkos::parallel_for(100, KOKKOS_LAMBDA(int i) { d(i) = 2.0 * i; });
        Kokkos::fence();
    }
    Kokkos::finalize();
    return 0;
}
"#,
        )
        .unwrap();
        round_trip(&sf);
    }

    #[test]
    fn literals_and_operators_round_trip() {
        let sf = parse_file(
            r#"
int f(char c) { return c == 'x'; }
int main() {
    const char* s = "hi\n";
    double d = 1.5e-3;
    bool ok = true && !false;
    long v = (1 << 4) | 3;
    v += 2; v -= 1; v *= 3; v /= 2; v %= 5; v ^= 1; v &= 7;
    int arr[3] = { 1, 2, 3 };
    int x = sizeof(double) + sizeof arr;
    switch_free: ;
    return ok ? f(s[0]) + (int)d + (int)v + x : 0;
}
"#,
        );
        // Some constructs may not parse in this mini-language; only pin the
        // codec on what the parser accepts.
        if let Ok(sf) = sf {
            round_trip(&sf);
        }
    }

    #[test]
    fn model_usage_round_trips() {
        let usage = ModelUsage {
            cuda_kernels: 1,
            cuda_launches: 2,
            cuda_api_calls: 3,
            omp_parallel_directives: 4,
            omp_target_directives: 5,
            kokkos_views: 6,
            kokkos_parallel_calls: 7,
        };
        let mut enc = Enc::new();
        enc.model_usage(&usage);
        let bytes = enc.into_bytes();
        assert_eq!(Dec::new(&bytes).model_usage(), Some(usage));
    }

    #[test]
    fn malformed_tags_are_rejected() {
        // An invalid item tag.
        let mut enc = Enc::new();
        enc.u32(1); // one item
        enc.span(Span::DUMMY);
        enc.u8(250); // bogus tag
        assert_eq!(Dec::new(&enc.into_bytes()).source_file(), None);

        // A boolean that is neither 0 nor 1.
        let mut enc = Enc::new();
        enc.u8(7);
        assert_eq!(Dec::new(&enc.into_bytes()).boolean(), None);

        // A span with start > end.
        let mut enc = Enc::new();
        enc.u32(5);
        enc.u32(2);
        assert_eq!(Dec::new(&enc.into_bytes()).span(), None);
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        // 300 nested Paren exprs: deeper than MAX_DEPTH, so decoding must
        // return None instead of blowing the stack.
        let mut enc = Enc::new();
        for _ in 0..300 {
            enc.span(Span::DUMMY);
            enc.u8(19); // Paren
        }
        enc.span(Span::DUMMY);
        enc.u8(0); // IntLit
        enc.i64(1);
        assert_eq!(Dec::new(&enc.into_bytes()).expr(), None);
    }
}
