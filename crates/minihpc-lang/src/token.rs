//! Token definitions for the MiniHPC language.

use crate::span::Span;
use std::fmt;

/// A lexed token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl Token {
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// The kinds of token MiniHPC recognises.
///
/// Preprocessor lines are folded into single structured tokens
/// ([`TokenKind::Include`], [`TokenKind::Pragma`], [`TokenKind::Define`]) so
/// the parser can treat them as ordinary stream elements: pragmas attach to
/// the statement that follows them, includes appear at item level.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are resolved by the parser; this keeps
    /// the lexer dialect-agnostic — `__global__` is a keyword only in CUDA).
    Ident(String),
    /// Integer literal (decimal or hex), value and original text.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal, with escapes resolved.
    Str(String),
    /// Character literal.
    Char(char),

    /// `#include "path"` (local) or `#include <path>` (system).
    Include {
        path: String,
        system: bool,
    },
    /// `#pragma ...` — the raw text after `#pragma`, plus its sub-lexed tokens.
    Pragma {
        text: String,
        tokens: Vec<Token>,
    },
    /// `#define NAME tokens...` — a simple object-like macro.
    Define {
        name: String,
        body: Vec<Token>,
    },
    /// Any other `#...` preprocessor line we keep verbatim (`#ifdef` etc.).
    OtherDirective(String),

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    ColonColon,
    Question,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    Shl,
    Shr,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
    /// `<<<` opening a CUDA kernel-launch configuration.
    LaunchOpen,
    /// `>>>` closing a CUDA kernel-launch configuration.
    LaunchClose,

    Eof,
}

impl TokenKind {
    /// True for tokens the parser skips when looking for the next item
    /// (used in error recovery).
    pub fn is_preprocessor(&self) -> bool {
        matches!(
            self,
            TokenKind::Include { .. }
                | TokenKind::Pragma { .. }
                | TokenKind::Define { .. }
                | TokenKind::OtherDirective(_)
        )
    }

    /// A short human-readable description used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer literal `{v}`"),
            TokenKind::Float(v) => format!("float literal `{v}`"),
            TokenKind::Str(_) => "string literal".into(),
            TokenKind::Char(_) => "character literal".into(),
            TokenKind::Include { path, .. } => format!("#include \"{path}\""),
            TokenKind::Pragma { text, .. } => format!("#pragma {text}"),
            TokenKind::Define { name, .. } => format!("#define {name}"),
            TokenKind::OtherDirective(d) => format!("#{d}"),
            TokenKind::Eof => "end of file".into(),
            other => format!("`{}`", other.symbol()),
        }
    }

    /// The literal symbol for punctuation tokens (empty for others).
    pub fn symbol(&self) -> &'static str {
        match self {
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::ColonColon => "::",
            TokenKind::Question => "?",
            TokenKind::Dot => ".",
            TokenKind::Arrow => "->",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Amp => "&",
            TokenKind::AmpAmp => "&&",
            TokenKind::Pipe => "|",
            TokenKind::PipePipe => "||",
            TokenKind::Caret => "^",
            TokenKind::Tilde => "~",
            TokenKind::Bang => "!",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Eq => "=",
            TokenKind::PlusEq => "+=",
            TokenKind::MinusEq => "-=",
            TokenKind::StarEq => "*=",
            TokenKind::SlashEq => "/=",
            TokenKind::PercentEq => "%=",
            TokenKind::AmpEq => "&=",
            TokenKind::PipeEq => "|=",
            TokenKind::CaretEq => "^=",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::ShlEq => "<<=",
            TokenKind::ShrEq => ">>=",
            TokenKind::PlusPlus => "++",
            TokenKind::MinusMinus => "--",
            TokenKind::LaunchOpen => "<<<",
            TokenKind::LaunchClose => ">>>",
            _ => "",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_punct() {
        assert_eq!(TokenKind::LaunchOpen.describe(), "`<<<`");
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
    }

    #[test]
    fn describe_ident() {
        assert_eq!(
            TokenKind::Ident("foo".into()).describe(),
            "identifier `foo`"
        );
    }

    #[test]
    fn preprocessor_predicate() {
        assert!(TokenKind::Include {
            path: "a.h".into(),
            system: false
        }
        .is_preprocessor());
        assert!(!TokenKind::Semi.is_preprocessor());
    }
}
