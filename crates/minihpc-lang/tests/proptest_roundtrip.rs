//! Property tests: the printer/parser pair is a faithful round-trip on
//! generated ASTs, and the complexity analysis is stable under printing.

use minihpc_lang::ast::*;
use minihpc_lang::parser::{parse_expr_str, parse_file, parse_stmt_str};
use minihpc_lang::printer::{print_expr, print_file, print_stmt};
use proptest::prelude::*;

/// Strategy for expressions (bounded depth).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(Expr::int),
        (0u32..8).prop_map(|i| Expr::ident(format!("v{i}"))),
        (0.0f64..100.0).prop_map(|f| Expr::synth(ExprKind::FloatLit((f * 8.0).round() / 8.0))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(a, b, op)| { Expr::binary(op, a, b) }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::index(a, b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::synth(
                ExprKind::Ternary {
                    cond: Box::new(c),
                    then: Box::new(t),
                    els: Box::new(e),
                }
            )),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(_, args)| Expr::call(Expr::ident("f"), args)),
            inner
                .clone()
                .prop_map(|e| Expr::synth(ExprKind::Paren(Box::new(e)))),
            inner.prop_map(|e| Expr::synth(ExprKind::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
            })),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::BitXor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// print ∘ parse ∘ print is the identity on generated expressions
    /// (printer idempotence through a parse round-trip).
    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = print_expr(&e);
        let reparsed = parse_expr_str(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        prop_assert_eq!(print_expr(&reparsed), printed);
    }

    /// Generated stencil-style kernels survive a full file round-trip.
    #[test]
    fn stencil_file_roundtrip(n in 1usize..5, use_collapse in any::<bool>()) {
        let collapse = if use_collapse { " collapse(2)" } else { "" };
        let mut body = String::new();
        for k in 0..n {
            body.push_str(&format!("            out[i * N + j] = in[i * N + j] ^ {k};\n"));
        }
        let src = format!(
            "void f(const int* in, int* out, size_t N) {{\n    #pragma omp target teams \
             distribute parallel for{collapse} map(to: in[0:N*N]) map(from: out[0:N*N])\n    \
             for (int i = 0; i < N; i++) {{\n        for (int j = 0; j < N; j++) {{\n{body}        }}\n    }}\n}}\n"
        );
        let f1 = parse_file(&src).unwrap();
        let p1 = print_file(&f1);
        let f2 = parse_file(&p1).unwrap_or_else(|e| panic!("reparse failed:\n{p1}\n{e}"));
        prop_assert_eq!(print_file(&f2), p1);
    }

    /// Statement-level round-trip on assignments with compound operators.
    #[test]
    fn assign_stmt_roundtrip(e in arb_expr(), compound in any::<bool>()) {
        let op = if compound { "+=" } else { "=" };
        let src = format!("v0 {op} {};", print_expr(&e));
        let s1 = parse_stmt_str(&src).unwrap_or_else(|err| panic!("`{src}`: {err}"));
        let p1 = print_stmt(&s1);
        let s2 = parse_stmt_str(&p1).unwrap_or_else(|err| panic!("`{p1}`: {err}"));
        prop_assert_eq!(print_stmt(&s2), p1);
    }

    /// Cyclomatic complexity is invariant under print → parse.
    #[test]
    fn complexity_stable_under_printing(branches in 0usize..6) {
        let mut body = String::new();
        for b in 0..branches {
            body.push_str(&format!("    if (x > {b}) {{ x = x - 1; }}\n"));
        }
        let src = format!("int f(int x) {{\n{body}    return x;\n}}\n");
        let f1 = parse_file(&src).unwrap();
        let cc1 = minihpc_lang::complexity::file_stats(&src, &f1).cyclomatic;
        let printed = print_file(&f1);
        let f2 = parse_file(&printed).unwrap();
        let cc2 = minihpc_lang::complexity::file_stats(&printed, &f2).cyclomatic;
        prop_assert_eq!(cc1, cc2);
        prop_assert_eq!(cc1, branches + 1);
    }
}
