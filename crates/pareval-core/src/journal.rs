//! The durability layer: an append-only, checksummed on-disk journal of
//! completed [`SampleRecord`]s, written as a [`ProgressSink`] and replayed
//! by [`Runner::resume`](crate::runner::Runner::resume).
//!
//! A grid run is the paper's heavy-tailed, long-running workload: a panic
//! or OOM late in the run would throw away hours of completed samples.
//! With a [`JournalSink`] attached, every completed sample — including its
//! per-round repair trajectory and usage snapshots — is on disk the moment
//! it finishes, and a resumed run re-executes only the remainder.
//!
//! # File format
//!
//! ```text
//! header   := magic "PEJR0001" (8 bytes) | plan fingerprint (u128 LE)
//! record   := len (u32 LE) | checksum (u64 LE, FNV-1a over payload) | payload
//! journal  := header record*
//! ```
//!
//! The payload is a versioned self-contained encoding of one
//! [`SampleRecord`] (cell key as strings, full
//! [`SampleResult`](crate::task::SampleResult) including
//! repair rounds). The format is *torn-write-tolerant by construction*: a
//! crash mid-append leaves a trailing partial record whose length or
//! checksum cannot validate, and replay simply stops at the last intact
//! record — every fully-written sample before the tear is recovered.
//!
//! # Plan fingerprint
//!
//! The header pins [`ExperimentPlan::fingerprint`] — a content hash of the
//! seed, the result-affecting eval knobs, and every cell (key, feasibility,
//! sample count, backend name). [`JournalReader::open`] refuses a journal
//! whose fingerprint does not match the resuming plan with
//! [`JournalError::PlanMismatch`], so a journal can never silently resume
//! the wrong grid.

use crate::plan::{CellKey, ExperimentPlan};
use crate::runner::{ProgressSink, SampleRecord};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic + version tag opening every journal file.
const MAGIC: &[u8; 8] = b"PEJR0001";
/// Header length: magic + u128 plan fingerprint.
const HEADER_LEN: u64 = 8 + 16;
/// Upper bound on a single record payload; a frame length beyond this is
/// certainly garbage (a torn write inside the length field itself) and
/// stops replay rather than attempting a multi-gigabyte allocation.
const MAX_RECORD_LEN: u32 = 64 << 20;

/// Why a journal could not be opened or matched to a plan. I/O errors and
/// structural problems are fatal (the caller is pointing at the wrong
/// file); *record-level* corruption is not an error at all — replay
/// recovers the intact prefix and the rest is simply re-run.
#[derive(Debug)]
pub enum JournalError {
    Io(std::io::Error),
    /// The file exists but does not start with a journal header.
    NotAJournal {
        path: PathBuf,
    },
    /// The journal was written by a different plan: resuming would silently
    /// mix incompatible grids, so it is refused up front.
    PlanMismatch {
        journal: u128,
        plan: u128,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::NotAJournal { path } => {
                write!(f, "{} is not a sample journal", path.display())
            }
            JournalError::PlanMismatch { journal, plan } => write!(
                f,
                "journal fingerprint {journal:032x} does not match plan fingerprint {plan:032x} \
                 (refusing to resume a different grid)"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Byte codec shared by the journal and the disk build cache: explicit
/// little-endian, length-prefixed encoding of the record types, with a
/// 64-bit FNV-1a frame checksum. Decoders are total — any malformed input
/// yields `None`, never a panic — because their input is untrusted bytes
/// from a possibly torn or corrupted file.
pub(crate) mod codec {
    use crate::runner::SampleRecord;
    use crate::task::{EvalOutcome, RepairRound, SampleResult};
    use minihpc_analyze::{AnalysisFinding, Confidence, FixIt, FixItEdit, Rule};
    use minihpc_build::{Diagnostic, ErrorCategory, Severity};
    use pareval_llm::TokenUsage;

    /// 64-bit FNV-1a over `bytes` (the frame checksum).
    pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Stable on-disk code of an [`ErrorCategory`] — the canonical numbering
    /// lives on the type itself ([`ErrorCategory::code`]) so the journal and
    /// the disk build cache can never drift apart.
    fn category_code(c: ErrorCategory) -> u8 {
        c.code()
    }

    fn category_from_code(code: u8) -> Option<ErrorCategory> {
        ErrorCategory::from_code(code)
    }

    /// Append-only byte encoder.
    #[derive(Default)]
    pub(crate) struct Enc {
        buf: Vec<u8>,
    }

    impl Enc {
        pub(crate) fn into_bytes(self) -> Vec<u8> {
            self.buf
        }

        fn u8(&mut self, v: u8) {
            self.buf.push(v);
        }

        fn boolean(&mut self, v: bool) {
            self.u8(v as u8);
        }

        fn u32(&mut self, v: u32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        fn u64(&mut self, v: u64) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        fn str(&mut self, s: &str) {
            self.u32(s.len() as u32);
            self.buf.extend_from_slice(s.as_bytes());
        }

        fn outcome(&mut self, o: &EvalOutcome) {
            self.boolean(o.built);
            self.boolean(o.passed);
            match o.error_category {
                Some(c) => {
                    self.u8(1);
                    self.u8(category_code(c));
                }
                None => self.u8(0),
            }
            self.str(&o.build_log);
            self.u32(o.error_diagnostics.len() as u32);
            for d in &o.error_diagnostics {
                self.boolean(d.severity == Severity::Error);
                self.u8(category_code(d.category));
                self.str(&d.message);
                self.str(&d.file);
                match d.line {
                    Some(line) => {
                        self.u8(1);
                        self.u32(line);
                    }
                    None => self.u8(0),
                }
            }
        }

        fn opt_outcome(&mut self, o: &Option<EvalOutcome>) {
            match o {
                Some(o) => {
                    self.u8(1);
                    self.outcome(o);
                }
                None => self.u8(0),
            }
        }

        fn tokens(&mut self, t: TokenUsage) {
            self.u64(t.input);
            self.u64(t.output);
        }

        fn finding(&mut self, f: &AnalysisFinding) {
            self.u8(f.rule.code());
            self.boolean(f.severity == Severity::Error);
            self.str(&f.variable);
            self.str(&f.file);
            match f.line {
                Some(line) => {
                    self.u8(1);
                    self.u32(line);
                }
                None => self.u8(0),
            }
            self.str(&f.message);
            self.u8(f.confidence.code());
            match &f.fixit {
                Some(fx) => {
                    self.u8(1);
                    self.str(&fx.file);
                    self.u32(fx.line);
                    self.str(&fx.title);
                    self.u8(fx.edit.code());
                    self.str(fx.edit.payload());
                }
                None => self.u8(0),
            }
        }
    }

    /// Bounds-checked byte decoder over untrusted input.
    pub(crate) struct Dec<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Dec<'a> {
        fn new(buf: &'a [u8]) -> Self {
            Dec { buf, pos: 0 }
        }

        fn take(&mut self, n: usize) -> Option<&'a [u8]> {
            let end = self.pos.checked_add(n)?;
            let slice = self.buf.get(self.pos..end)?;
            self.pos = end;
            Some(slice)
        }

        fn u8(&mut self) -> Option<u8> {
            self.take(1).map(|b| b[0])
        }

        fn boolean(&mut self) -> Option<bool> {
            match self.u8()? {
                0 => Some(false),
                1 => Some(true),
                _ => None,
            }
        }

        fn u32(&mut self) -> Option<u32> {
            self.take(4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        }

        fn u64(&mut self) -> Option<u64> {
            self.take(8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        }

        fn str(&mut self) -> Option<String> {
            let len = self.u32()? as usize;
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec()).ok()
        }

        fn outcome(&mut self) -> Option<EvalOutcome> {
            let built = self.boolean()?;
            let passed = self.boolean()?;
            let error_category = match self.u8()? {
                0 => None,
                1 => Some(category_from_code(self.u8()?)?),
                _ => return None,
            };
            let build_log = self.str()?;
            let ndiags = self.u32()? as usize;
            let mut error_diagnostics = Vec::with_capacity(ndiags.min(1024));
            for _ in 0..ndiags {
                let severity = if self.boolean()? {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                let category = category_from_code(self.u8()?)?;
                let message = self.str()?;
                let file = self.str()?;
                let line = match self.u8()? {
                    0 => None,
                    1 => Some(self.u32()?),
                    _ => return None,
                };
                error_diagnostics.push(Diagnostic {
                    severity,
                    category,
                    message,
                    file,
                    line,
                });
            }
            Some(EvalOutcome {
                built,
                passed,
                error_category,
                build_log,
                error_diagnostics,
            })
        }

        fn opt_outcome(&mut self) -> Option<Option<EvalOutcome>> {
            match self.u8()? {
                0 => Some(None),
                1 => Some(Some(self.outcome()?)),
                _ => None,
            }
        }

        fn tokens(&mut self) -> Option<TokenUsage> {
            Some(TokenUsage {
                input: self.u64()?,
                output: self.u64()?,
            })
        }

        fn finding(&mut self) -> Option<AnalysisFinding> {
            let rule = Rule::from_code(self.u8()?)?;
            let severity = if self.boolean()? {
                Severity::Error
            } else {
                Severity::Warning
            };
            let variable = self.str()?;
            let file = self.str()?;
            let line = match self.u8()? {
                0 => None,
                1 => Some(self.u32()?),
                _ => return None,
            };
            let message = self.str()?;
            let confidence = Confidence::from_code(self.u8()?)?;
            let fixit = match self.u8()? {
                0 => None,
                1 => {
                    let file = self.str()?;
                    let line = self.u32()?;
                    let title = self.str()?;
                    let code = self.u8()?;
                    let payload = self.str()?;
                    Some(FixIt {
                        file,
                        line,
                        title,
                        edit: FixItEdit::from_parts(code, payload)?,
                    })
                }
                _ => return None,
            };
            Some(AnalysisFinding {
                rule,
                severity,
                variable,
                file,
                line,
                message,
                confidence,
                fixit,
            })
        }

        /// Everything consumed, nothing left over?
        fn finished(&self) -> bool {
            self.pos == self.buf.len()
        }
    }

    /// A decoded record before its cell key strings are resolved against a
    /// plan's interned [`CellKey`](crate::plan::CellKey)s.
    pub(crate) struct RawRecord {
        pub(crate) pair_id: String,
        pub(crate) technique: String,
        pub(crate) model: String,
        pub(crate) app: String,
        pub(crate) sample_index: u32,
        pub(crate) result: SampleResult,
    }

    pub(crate) fn encode_record(record: &SampleRecord) -> Vec<u8> {
        let mut e = Enc::default();
        e.str(&record.key.pair.id());
        e.str(record.key.technique.name());
        e.str(record.key.model);
        e.str(record.key.app);
        e.u32(record.sample_index);
        let r = &record.result;
        e.boolean(r.feasible);
        match &r.failure_reason {
            Some(reason) => {
                e.u8(1);
                e.str(reason);
            }
            None => e.u8(0),
        }
        e.opt_outcome(&r.code_only);
        e.opt_outcome(&r.overall);
        e.tokens(r.tokens);
        e.u32(r.rounds.len() as u32);
        for round in &r.rounds {
            e.u32(round.round);
            e.boolean(round.gave_up);
            e.outcome(&round.code_only);
            e.outcome(&round.overall);
            e.tokens(round.tokens);
        }
        // Analyzer findings are a *trailing optional* section: emitted only
        // when non-empty, so analyzer-off journals are byte-identical to the
        // pre-analyzer format (and readable by pre-analyzer decoders).
        if !r.analysis.is_empty() {
            e.u32(r.analysis.len() as u32);
            for f in &r.analysis {
                e.finding(f);
            }
        }
        e.into_bytes()
    }

    pub(crate) fn decode_record(payload: &[u8]) -> Option<RawRecord> {
        let mut d = Dec::new(payload);
        let pair_id = d.str()?;
        let technique = d.str()?;
        let model = d.str()?;
        let app = d.str()?;
        let sample_index = d.u32()?;
        let feasible = d.boolean()?;
        let failure_reason = match d.u8()? {
            0 => None,
            1 => Some(d.str()?),
            _ => return None,
        };
        let code_only = d.opt_outcome()?;
        let overall = d.opt_outcome()?;
        let tokens = d.tokens()?;
        let nrounds = d.u32()? as usize;
        let mut rounds = Vec::with_capacity(nrounds.min(1024));
        for _ in 0..nrounds {
            rounds.push(RepairRound {
                round: d.u32()?,
                gave_up: d.boolean()?,
                code_only: d.outcome()?,
                overall: d.outcome()?,
                tokens: d.tokens()?,
            });
        }
        // Trailing optional analyzer section: absent in analyzer-off (and
        // pre-analyzer) records. When present it must decode fully and be
        // non-empty (an empty list is encoded by omission).
        let analysis = if d.finished() {
            Vec::new()
        } else {
            let nfindings = d.u32()? as usize;
            if nfindings == 0 {
                return None;
            }
            let mut findings = Vec::with_capacity(nfindings.min(1024));
            for _ in 0..nfindings {
                findings.push(d.finding()?);
            }
            findings
        };
        if !d.finished() {
            return None;
        }
        Some(RawRecord {
            pair_id,
            technique,
            model,
            app,
            sample_index,
            result: SampleResult {
                feasible,
                failure_reason,
                code_only,
                overall,
                tokens,
                rounds,
                analysis,
            },
        })
    }

    /// Encode one [`EvalOutcome`] (the disk build-cache entry payload).
    pub(crate) fn encode_outcome(outcome: &EvalOutcome) -> Vec<u8> {
        let mut e = Enc::default();
        e.outcome(outcome);
        e.into_bytes()
    }

    /// Decode a disk build-cache entry payload; `None` on any malformation.
    pub(crate) fn decode_outcome(payload: &[u8]) -> Option<EvalOutcome> {
        let mut d = Dec::new(payload);
        let outcome = d.outcome()?;
        if !d.finished() {
            return None;
        }
        Some(outcome)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn category_codes_round_trip_every_variant() {
            let all = [
                ErrorCategory::BuildFileSyntax,
                ErrorCategory::MakefileMissingTarget,
                ErrorCategory::CMakeConfig,
                ErrorCategory::InvalidCompilerFlag,
                ErrorCategory::MissingHeader,
                ErrorCategory::CodeSyntax,
                ErrorCategory::UndeclaredIdentifier,
                ErrorCategory::ArgTypeMismatch,
                ErrorCategory::OmpInvalidDirective,
                ErrorCategory::LinkerError,
                ErrorCategory::MissingFile,
                ErrorCategory::Other,
            ];
            for c in all {
                assert_eq!(category_from_code(category_code(c)), Some(c));
            }
            assert_eq!(category_from_code(200), None);
        }

        #[test]
        fn outcome_round_trips() {
            let outcome = EvalOutcome {
                built: false,
                passed: false,
                error_category: Some(ErrorCategory::MissingHeader),
                build_log: "clang++ -c main.cpp\nmain.cpp:3: error: missing header".into(),
                error_diagnostics: vec![
                    Diagnostic::error(ErrorCategory::MissingHeader, "main.cpp", "missing header")
                        .at_line(3),
                    Diagnostic::warning(ErrorCategory::Other, "util.cpp", "unused"),
                ],
            };
            let bytes = encode_outcome(&outcome);
            assert_eq!(decode_outcome(&bytes), Some(outcome));
            // Trailing garbage and truncation both fail cleanly.
            let mut extended = bytes.clone();
            extended.push(0);
            assert_eq!(decode_outcome(&extended), None);
            assert_eq!(decode_outcome(&bytes[..bytes.len() - 1]), None);
        }
    }
}

/// Interior state of a [`JournalSink`]: the buffered file plus the count of
/// records written since the last fsync.
struct SinkState {
    file: BufWriter<File>,
    unsynced: u64,
    written: u64,
}

/// A [`ProgressSink`] that appends every completed sample to an on-disk
/// journal, making a crashed grid run resumable from its last completed
/// sample (see [`Runner::resume`](crate::runner::Runner::resume)).
///
/// Thread-safe: workers of a parallel runner serialize through an internal
/// lock, so records are framed atomically even under stealing. Durability
/// is tunable via [`JournalSink::with_sync_every`]: with batching `n`, the
/// file is fsynced every `n` records (default 1, maximum durability — a
/// crash loses at most the in-flight sample). The sink flushes and syncs on
/// drop regardless.
pub struct JournalSink {
    state: Mutex<SinkState>,
    sync_every: u64,
}

impl fmt::Debug for JournalSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalSink")
            .field("records_written", &self.records_written())
            .field("sync_every", &self.sync_every)
            .finish()
    }
}

impl JournalSink {
    /// Create (truncating) a fresh journal for `plan` at `path` and write
    /// its header.
    pub fn create(path: &Path, plan: &ExperimentPlan) -> Result<JournalSink, JournalError> {
        let mut file = File::create(path)?;
        file.write_all(MAGIC)?;
        file.write_all(&plan.fingerprint().to_le_bytes())?;
        file.sync_data()?;
        Ok(JournalSink {
            state: Mutex::new(SinkState {
                file: BufWriter::new(file),
                unsynced: 0,
                written: 0,
            }),
            sync_every: 1,
        })
    }

    /// Reopen an existing journal for appending — the sink a *resumed* run
    /// streams to, so the journal stays authoritative across any number of
    /// crash/resume cycles. Verifies the header against `plan` (same typed
    /// errors as [`JournalReader::open`]) and truncates any torn trailing
    /// record so the next append starts on a clean frame boundary.
    pub fn append(path: &Path, plan: &ExperimentPlan) -> Result<JournalSink, JournalError> {
        // Walk the intact prefix with a reader, tracking the byte offset of
        // the last frame that validated.
        let mut reader = JournalReader::open(path, plan)?;
        while reader.next().is_some() {}
        let end = reader.intact_bytes;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(end)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(JournalSink {
            state: Mutex::new(SinkState {
                file: BufWriter::new(file),
                unsynced: 0,
                written: 0,
            }),
            sync_every: 1,
        })
    }

    /// Set the fsync batching interval: the file is flushed and fsynced
    /// after every `n` records. `0` disables periodic fsync entirely (the
    /// OS decides; flush + sync still happen on drop) — the fastest and
    /// least durable setting.
    pub fn with_sync_every(mut self, n: u64) -> Self {
        self.sync_every = n;
        self
    }

    /// Records appended through this sink (not counting any the journal
    /// already held when opened with [`JournalSink::append`]).
    pub fn records_written(&self) -> u64 {
        self.state.lock().written
    }

    /// Flush buffered records and fsync to disk now.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut state = self.state.lock();
        state.file.flush()?;
        state.file.get_ref().sync_data()?;
        state.unsynced = 0;
        Ok(())
    }
}

impl ProgressSink for JournalSink {
    /// Append one framed record. I/O errors panic: a journaling run that
    /// can no longer journal has lost its durability guarantee, and
    /// continuing silently would let the caller believe every completed
    /// sample is recoverable when it is not.
    fn on_sample(&self, record: &SampleRecord) {
        let payload = codec::encode_record(record);
        let mut state = self.state.lock();
        let frame_err = "journal append failed (durability lost)";
        state
            .file
            .write_all(&(payload.len() as u32).to_le_bytes())
            .expect(frame_err);
        state
            .file
            .write_all(&codec::fnv64(&payload).to_le_bytes())
            .expect(frame_err);
        state.file.write_all(&payload).expect(frame_err);
        state.written += 1;
        state.unsynced += 1;
        if self.sync_every > 0 && state.unsynced >= self.sync_every {
            state.file.flush().expect(frame_err);
            state.file.get_ref().sync_data().expect(frame_err);
            state.unsynced = 0;
        }
    }
}

impl Drop for JournalSink {
    fn drop(&mut self) {
        let state = self.state.lock();
        // Best-effort final flush; errors here cannot be reported and the
        // periodic fsync already bounded the loss window.
        let mut state = state;
        let _ = state.file.flush();
        let _ = state.file.get_ref().sync_data();
    }
}

/// Streaming reader over a journal's intact record prefix.
///
/// Iteration yields each recovered [`SampleRecord`] *lazily* — one record
/// is materialized at a time, so replaying a journal never buffers the
/// whole run twice (the collector's iterator-based
/// [`ExperimentResults::from_records`](crate::collect::ExperimentResults::from_records)
/// moves each record straight into its cell). Iteration stops at the first
/// frame that fails to validate: a truncated length, a short payload, a
/// checksum mismatch, an undecodable payload, or a cell key the plan does
/// not contain. Everything before that point is recovered; corruption is
/// recoverable state, not an error.
pub struct JournalReader {
    file: BufReader<File>,
    /// Cell keys of the plan, addressed by their journal string form.
    cells: HashMap<(String, String, String, String), CellKey>,
    /// Byte offset of the end of the last intact frame (starts past the
    /// header) — what [`JournalSink::append`] truncates to.
    intact_bytes: u64,
    /// Intact records yielded so far.
    records: u64,
    done: bool,
}

impl JournalReader {
    /// Open `path` and validate its header against `plan`.
    ///
    /// # Errors
    ///
    /// [`JournalError::NotAJournal`] when the file is shorter than a header
    /// or carries the wrong magic; [`JournalError::PlanMismatch`] when the
    /// header fingerprint is not `plan.fingerprint()`; I/O errors verbatim.
    pub fn open(path: &Path, plan: &ExperimentPlan) -> Result<JournalReader, JournalError> {
        let mut file = BufReader::new(File::open(path)?);
        let mut header = [0u8; HEADER_LEN as usize];
        if file.read_exact(&mut header).is_err() || &header[..8] != MAGIC {
            return Err(JournalError::NotAJournal {
                path: path.to_path_buf(),
            });
        }
        let journal = u128::from_le_bytes(header[8..24].try_into().unwrap());
        let fingerprint = plan.fingerprint();
        if journal != fingerprint {
            return Err(JournalError::PlanMismatch {
                journal,
                plan: fingerprint,
            });
        }
        let cells = plan
            .cells()
            .iter()
            .map(|cell| {
                let key = cell.key;
                (
                    (
                        key.pair.id(),
                        key.technique.name().to_string(),
                        key.model.to_string(),
                        key.app.to_string(),
                    ),
                    key,
                )
            })
            .collect();
        Ok(JournalReader {
            file,
            cells,
            intact_bytes: HEADER_LEN,
            records: 0,
            done: false,
        })
    }

    /// Intact records yielded so far (the full prefix count once the
    /// iterator is exhausted).
    pub fn records_read(&self) -> u64 {
        self.records
    }

    /// Try to read and validate the next frame; `None` ends iteration for
    /// good (EOF or first corruption).
    fn next_frame(&mut self) -> Option<SampleRecord> {
        let mut len_buf = [0u8; 4];
        self.file.read_exact(&mut len_buf).ok()?;
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_RECORD_LEN {
            return None;
        }
        let mut sum_buf = [0u8; 8];
        self.file.read_exact(&mut sum_buf).ok()?;
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact(&mut payload).ok()?;
        if codec::fnv64(&payload) != u64::from_le_bytes(sum_buf) {
            return None;
        }
        let raw = codec::decode_record(&payload)?;
        let key = *self
            .cells
            .get(&(raw.pair_id, raw.technique, raw.model, raw.app))?;
        self.intact_bytes += 4 + 8 + u64::from(len);
        self.records += 1;
        Some(SampleRecord {
            key,
            sample_index: raw.sample_index,
            result: raw.result,
        })
    }
}

impl Iterator for JournalReader {
    type Item = SampleRecord;

    fn next(&mut self) -> Option<SampleRecord> {
        if self.done {
            return None;
        }
        match self.next_frame() {
            Some(record) => Some(record),
            None => {
                self.done = true;
                None
            }
        }
    }
}

/// What a first streaming pass over a journal recovered: the completed
/// `(cell, sample)` set a resume skips, and the intact record count a
/// second pass replays (via `JournalReader::take`, so records appended
/// *during* the resumed run are never read back).
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Completed `(CellKey, sample_index)` pairs recovered from the intact
    /// prefix.
    pub completed: BTreeSet<(CellKey, u32)>,
    /// Intact prefix records, *including* any duplicates (a resume that
    /// crashed mid-append can journal a sample twice; replay dedups).
    pub records: u64,
}

/// First pass of a resume: stream the journal once, retaining only the
/// completed-set and record count — no record buffering at all.
pub fn scan(path: &Path, plan: &ExperimentPlan) -> Result<Replay, JournalError> {
    let mut reader = JournalReader::open(path, plan)?;
    let mut completed = BTreeSet::new();
    for record in reader.by_ref() {
        completed.insert((record.key, record.sample_index));
    }
    Ok(Replay {
        completed,
        records: reader.records_read(),
    })
}
