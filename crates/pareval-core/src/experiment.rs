//! Deprecated compatibility shim over the Plan → Runner → Collector API.
//!
//! The monolithic `run_experiment(&ExperimentConfig)` entry point is kept
//! for one release so downstream code migrates at its own pace. New code
//! should build an [`ExperimentPlan`] and pick a [`Runner`]:
//!
//! ```no_run
//! use pareval_core::{ExperimentPlan, ParallelRunner, Runner};
//!
//! let plan = ExperimentPlan::quick();
//! let results = ParallelRunner::new(4).run(&plan);
//! ```

use crate::plan::ExperimentPlan;
use crate::runner::{Runner, SerialRunner};
use crate::task::EvalConfig;
use crate::ExperimentResults;
use minihpc_lang::model::TranslationPair;
use pareval_llm::{all_models, ModelProfile};
use pareval_translate::Technique;

/// Bag-of-vecs experiment configuration, superseded by
/// [`ExperimentPlan::builder`].
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Samples (generations) per cell; the paper uses 25–50, the default
    /// here keeps the full grid tractable for an interpreter substrate.
    pub samples: u32,
    pub seed: u64,
    pub pairs: Vec<TranslationPair>,
    pub techniques: Vec<Technique>,
    pub models: Vec<ModelProfile>,
    /// Restrict to these apps (names); empty = all.
    pub apps: Vec<String>,
    pub eval: EvalConfig,
}

impl ExperimentConfig {
    /// The paper's full grid (same defaults as
    /// [`ExperimentPlan::builder`], stated once in the plan module).
    pub fn full(samples: u32) -> Self {
        ExperimentConfig {
            samples,
            seed: crate::plan::DEFAULT_SEED,
            pairs: TranslationPair::ALL.to_vec(),
            techniques: Technique::ALL.to_vec(),
            models: all_models(),
            apps: vec![],
            eval: crate::plan::default_eval(),
        }
    }

    /// A small smoke-test slice.
    pub fn quick() -> Self {
        let mut cfg = Self::full(3);
        cfg.pairs = vec![TranslationPair::CUDA_TO_OMP_OFFLOAD];
        cfg.apps = vec!["nanoXOR".into(), "microXORh".into(), "microXOR".into()];
        cfg
    }

    /// Enumerate this configuration as an [`ExperimentPlan`].
    pub fn to_plan(&self) -> ExperimentPlan {
        ExperimentPlan::builder()
            .samples(self.samples)
            .seed(self.seed)
            .pairs(self.pairs.iter().copied())
            .techniques(self.techniques.iter().copied())
            .models(self.models.iter().cloned())
            .apps(self.apps.iter().cloned())
            .eval(self.eval.clone())
            .build()
    }
}

/// Run the experiment grid serially.
#[deprecated(
    since = "0.1.0",
    note = "build an ExperimentPlan and run it with SerialRunner or ParallelRunner"
)]
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResults {
    SerialRunner.run(&cfg.to_plan())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Scoring;
    use crate::Metric;

    #[test]
    fn quick_experiment_reproduces_cell_shapes() {
        let mut cfg = ExperimentConfig::quick();
        cfg.samples = 4;
        cfg.techniques = vec![Technique::NonAgentic];
        cfg.models = all_models()
            .into_iter()
            .filter(|m| m.name == "o4-mini" || m.name == "gemini-1.5-flash")
            .collect();
        #[allow(deprecated)]
        let results = run_experiment(&cfg);
        let o4 = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "o4-mini",
                "nanoXOR",
            )
            .unwrap();
        assert!(o4.feasible());
        assert_eq!(o4.samples(), 4);
        // Code-only pass implies code-only build, per-sample and aggregate.
        assert!(
            o4.successes(Metric::Pass, Scoring::CodeOnly)
                <= o4.successes(Metric::Build, Scoring::CodeOnly)
        );
        assert!(
            o4.successes(Metric::Pass, Scoring::Overall)
                <= o4.successes(Metric::Build, Scoring::Overall)
        );
        // Overall never exceeds code-only builds (gt build file only helps).
        assert!(
            o4.successes(Metric::Build, Scoring::Overall)
                <= o4.successes(Metric::Build, Scoring::CodeOnly) + 1
        );

        let gem = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "gemini-1.5-flash",
                "nanoXOR",
            )
            .unwrap();
        // Gemini's pass@1 is 0 in the paper for this cell.
        assert_eq!(gem.successes(Metric::Pass, Scoring::CodeOnly), 0);
        assert_eq!(gem.successes(Metric::Pass, Scoring::Overall), 0);
    }

    #[test]
    fn shim_matches_layered_api() {
        let cfg = ExperimentConfig::quick();
        #[allow(deprecated)]
        let via_shim = run_experiment(&cfg);
        let via_plan = SerialRunner.run(&cfg.to_plan());
        assert_eq!(via_shim, via_plan);
    }
}
