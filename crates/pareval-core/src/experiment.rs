//! The experiment runner: N samples per (pair, technique, model, app) cell,
//! aggregated into the measurements behind every table and figure.

use crate::task::{all_tasks, run_sample, EvalConfig, Task};
use minihpc_build::ErrorCategory;
use minihpc_lang::model::TranslationPair;
use pareval_errclust::LogEntry;
use pareval_llm::{all_models, ModelProfile};
use pareval_metrics::{build_at_k, pass_at_k, MeanAccumulator};
use pareval_translate::Technique;
use std::collections::BTreeMap;

/// Aggregated counts for one cell.
#[derive(Debug, Clone, Default)]
pub struct CellResult {
    pub samples: u64,
    pub builds_code: u64,
    pub passes_code: u64,
    pub builds_overall: u64,
    pub passes_overall: u64,
    pub feasible: bool,
    pub tokens: MeanAccumulator,
    /// Failed-build logs with ground-truth categories (Fig. 3 input).
    pub error_logs: Vec<LogEntry>,
}

impl CellResult {
    pub fn build_at_1_code(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        build_at_k(self.samples, self.builds_code, 1)
    }

    pub fn pass_at_1_code(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        pass_at_k(self.samples, self.passes_code, 1)
    }

    pub fn build_at_1_overall(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        build_at_k(self.samples, self.builds_overall, 1)
    }

    pub fn pass_at_1_overall(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        pass_at_k(self.samples, self.passes_overall, 1)
    }
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Samples (generations) per cell; the paper uses 25–50, the default
    /// here keeps the full grid tractable for an interpreter substrate.
    pub samples: u32,
    pub seed: u64,
    pub pairs: Vec<TranslationPair>,
    pub techniques: Vec<Technique>,
    pub models: Vec<ModelProfile>,
    /// Restrict to these apps (names); empty = all.
    pub apps: Vec<String>,
    pub eval: EvalConfig,
}

impl ExperimentConfig {
    /// The paper's full grid.
    pub fn full(samples: u32) -> Self {
        ExperimentConfig {
            samples,
            seed: 20250908, // ICPP'25 presentation date
            pairs: TranslationPair::ALL.to_vec(),
            techniques: vec![
                Technique::NonAgentic,
                Technique::TopDownAgentic,
                Technique::SweAgent,
            ],
            models: all_models(),
            apps: vec![],
            eval: EvalConfig {
                max_cases: 1,
                ..EvalConfig::default()
            },
        }
    }

    /// A small smoke-test slice.
    pub fn quick() -> Self {
        let mut cfg = Self::full(3);
        cfg.pairs = vec![TranslationPair::CUDA_TO_OMP_OFFLOAD];
        cfg.apps = vec!["nanoXOR".into(), "microXORh".into(), "microXOR".into()];
        cfg
    }
}

/// All cell results of one experiment run.
#[derive(Debug, Clone, Default)]
pub struct ExperimentResults {
    pub cells: BTreeMap<(String, String, String, String), CellResult>,
}

impl ExperimentResults {
    pub fn cell(
        &self,
        pair: TranslationPair,
        technique: Technique,
        model: &str,
        app: &str,
    ) -> Option<&CellResult> {
        self.cells.get(&(
            pair.id(),
            technique.name().to_string(),
            model.to_string(),
            app.to_string(),
        ))
    }

    /// Fig. 3 input: all failed-build logs across cells for one pair (or
    /// all pairs), tagged with model names.
    pub fn error_logs_with_models(&self) -> Vec<(String, LogEntry)> {
        let mut out = Vec::new();
        for ((_, _, model, _), cell) in &self.cells {
            for log in &cell.error_logs {
                out.push((model.clone(), log.clone()));
            }
        }
        out
    }

    /// Per-(model, category) counts of build failures (the ground-truth
    /// counterpart of Fig. 3).
    pub fn error_counts(&self) -> BTreeMap<(String, ErrorCategory), usize> {
        let mut out: BTreeMap<(String, ErrorCategory), usize> = BTreeMap::new();
        for ((_, _, model, _), cell) in &self.cells {
            for log in &cell.error_logs {
                *out.entry((model.clone(), log.truth)).or_default() += 1;
            }
        }
        out
    }
}

/// Run the experiment grid.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResults {
    let mut results = ExperimentResults::default();
    let tasks: Vec<Task> = all_tasks()
        .into_iter()
        .filter(|t| cfg.pairs.contains(&t.pair))
        .filter(|t| cfg.apps.is_empty() || cfg.apps.iter().any(|a| a == t.app.name))
        .collect();
    for task in &tasks {
        for technique in &cfg.techniques {
            for model in &cfg.models {
                let mut cell = CellResult::default();
                for sample in 0..cfg.samples {
                    let r = run_sample(task, *technique, model, cfg.seed, sample, &cfg.eval);
                    if !r.feasible {
                        // Not-run configuration: skip the whole cell (all
                        // samples share the plan's feasibility).
                        cell.feasible = false;
                        cell.samples = 0;
                        break;
                    }
                    cell.feasible = true;
                    cell.samples += 1;
                    cell.tokens.add(r.tokens.total() as f64);
                    if let Some(code) = &r.code_only {
                        cell.builds_code += u64::from(code.built);
                        cell.passes_code += u64::from(code.passed);
                    }
                    if let Some(overall) = &r.overall {
                        cell.builds_overall += u64::from(overall.built);
                        cell.passes_overall += u64::from(overall.passed);
                        if !overall.built {
                            if let Some(category) = overall.error_category {
                                cell.error_logs.push(LogEntry {
                                    text: overall.build_log.clone(),
                                    truth: category,
                                });
                            }
                        }
                    }
                }
                // SWE-agent only applies where the paper ran it; cells the
                // backend marks infeasible simply record zero samples.
                results.cells.insert(
                    (
                        task.pair.id(),
                        technique.name().to_string(),
                        model.name.to_string(),
                        task.app.name.to_string(),
                    ),
                    cell,
                );
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_reproduces_cell_shapes() {
        let mut cfg = ExperimentConfig::quick();
        cfg.samples = 4;
        cfg.techniques = vec![Technique::NonAgentic];
        cfg.models = all_models()
            .into_iter()
            .filter(|m| m.name == "o4-mini" || m.name == "gemini-1.5-flash")
            .collect();
        let results = run_experiment(&cfg);
        let o4 = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "o4-mini",
                "nanoXOR",
            )
            .unwrap();
        assert!(o4.feasible);
        assert_eq!(o4.samples, 4);
        // Code-only pass implies code-only build, per-sample and aggregate.
        assert!(o4.passes_code <= o4.builds_code);
        assert!(o4.passes_overall <= o4.builds_overall);
        // Overall never exceeds code-only builds (gt build file only helps).
        assert!(o4.builds_overall <= o4.builds_code + 1);

        let gem = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "gemini-1.5-flash",
                "nanoXOR",
            )
            .unwrap();
        // Gemini's pass@1 is 0 in the paper for this cell.
        assert_eq!(gem.passes_code, 0);
        assert_eq!(gem.passes_overall, 0);
    }
}
