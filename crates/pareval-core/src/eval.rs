//! The evaluation pipeline: backend attempt → technique → build → run →
//! score — plus bounded repair rounds on failed builds — with a
//! content-addressed build cache shared across runner workers.
//!
//! When [`EvalConfig::repair_budget`] > 0 and the Overall build fails, the
//! pipeline summarizes the categorized diagnostics into a
//! [`pareval_llm::RepairContext`], calls [`pareval_llm::Attempt::repair`],
//! overlays the revised files, and re-evaluates (both scorings) — looping
//! until the build succeeds, the attempt gives up, or the budget is spent.
//! Every round's evaluation goes through the same build cache, and every
//! round's outcome and cumulative token cost is retained in
//! [`SampleResult::rounds`](crate::task::SampleResult::rounds) so reports
//! can plot quality as a function of repair round.
//!
//! [`EvalPipeline`] replaces the free `run_sample`/`evaluate` functions of
//! the pre-backend harness. It owns the [`EvalConfig`] knobs plus a
//! [`BuildCache`] keyed by the content hash of the evaluated repository
//! (and everything else that determines the outcome: binary, app, target
//! model, eval knobs), so:
//!
//! - the Code-only scoring reuses the Overall build whenever the translated
//!   build file already matches ground truth (the two repos are then
//!   identical, hence the same key), and
//! - [`ScheduledRunner`](crate::sched::ScheduledRunner) workers share hits
//!   across threads — the cache sits behind a `parking_lot` lock and one
//!   pipeline serves the whole run.
//!
//! A cache hit returns a clone of the stored [`EvalOutcome`]; since the
//! build + run substrate is deterministic, a hit is byte-identical to the
//! cold evaluation it replaced (`tests/backends.rs` proves this by
//! property test, `tests/determinism.rs` end to end).

use crate::journal::codec;
use crate::plan::{ExperimentPlan, SampleSpec};
use crate::runner::SampleRecord;
use crate::task::{EvalConfig, EvalOutcome, RepairRound, SampleResult, Task};
use minihpc_analyze::{AnalysisFinding, Confidence};
use minihpc_build::preprocess::ParsedFile;
use minihpc_build::unit::{decode_unit, encode_unit};
use minihpc_build::{build_repo_with, BuildRequest, CompiledUnit, ErrorCategory, UnitCache};
use minihpc_lang::repo::{FileKind, SourceRepo};
use minihpc_runtime::{run, RunConfig};
use pareval_llm::{AttemptSpec, ModelProfile, RepairContext, RepairOutcome, TranslationBackend};
use pareval_translate::techniques::{translate_with, TranslationJob};
use pareval_translate::Technique;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// 128-bit FNV-1a, the content-address of the cache (also the plan
/// fingerprint hash, see [`crate::plan::ExperimentPlan::fingerprint`]).
/// Stable across runs and platforms (unlike `std`'s randomized hasher) and
/// wide enough that collisions are not a practical concern.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ContentHash(u128);

impl ContentHash {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    pub(crate) fn new() -> Self {
        ContentHash(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        // Field separator so ("ab", "c") and ("a", "bc") differ.
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    pub(crate) fn finish(self) -> u128 {
        self.0
    }
}

/// Hit/miss/evict counters of a [`BuildCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Outcome lookups served from the in-memory tier.
    pub hits: u64,
    /// Outcome lookups served from neither tier (a cold evaluation ran).
    pub misses: u64,
    /// Outcome lookups that missed in memory but were served by the disk
    /// tier (the entry is promoted to memory on the way out).
    pub disk_hits: u64,
    /// Disk entries (outcomes and units) evicted to keep the tier under
    /// its byte budget.
    pub evictions: u64,
    /// Per-file compile units replayed from the cache (memory or disk)
    /// instead of re-running sema. Counted only on outcome misses — an
    /// outcome hit never reaches the unit tier.
    pub file_hits: u64,
    /// Per-file compile units that had to be compiled cold.
    pub file_misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from either cache tier (0 when none
    /// happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.disk_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / total as f64
        }
    }
}

/// What a disk-tier file stores: a whole-repo [`EvalOutcome`] or a
/// per-file [`CompiledUnit`]. The kinds live in one directory under one
/// byte budget, distinguished by file suffix and magic, and are keyed from
/// disjoint hash constructions (the outcome key hashes repo + knobs, the
/// unit key hashes a version salt + closure), so the kind is part of the
/// index key purely as a belt-and-braces measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum EntryKind {
    Outcome,
    Unit,
}

impl EntryKind {
    const ALL: [EntryKind; 2] = [EntryKind::Outcome, EntryKind::Unit];

    fn suffix(self) -> &'static str {
        match self {
            EntryKind::Outcome => "entry",
            EntryKind::Unit => "unit",
        }
    }

    fn magic(self) -> &'static [u8; 8] {
        match self {
            EntryKind::Outcome => b"PEBC0001",
            EntryKind::Unit => b"PEBU0001",
        }
    }
}

/// The persistent tier of a [`BuildCache`]: one file per entry in a shared
/// directory, named by the hex content key (`.entry` outcomes, `.unit`
/// compile units), each payload checksummed. Because the file *name* is
/// the full 128-bit key — which hashes every input that can change the
/// stored value — a harness whose key computation changes (a new knob, a
/// new hash input, a codec bump) simply stops matching old entries; it can
/// never be served a stale value computed under different semantics.
///
/// Durability is best-effort by design: a read that fails its checksum (a
/// torn write, bit rot) deletes the entry and reports a miss — a corrupted
/// entry can cost a rebuild, never a wrong result. Store errors (disk
/// full, permissions) are swallowed; the run continues on the memory tier.
///
/// Eviction is least-recently-used by byte budget shared across both entry
/// kinds: the in-process index orders entries by last touch (seeded from
/// file mtimes at open, so LRU order survives across processes), and
/// inserts evict from the cold end until the tier fits the budget again.
#[derive(Debug)]
struct DiskCache {
    dir: PathBuf,
    budget: u64,
    index: Mutex<DiskIndex>,
}

/// One indexed disk entry: its position in the LRU order and its on-disk
/// size.
#[derive(Debug, Clone, Copy)]
struct IndexSlot {
    touch: u64,
    size: u64,
}

/// LRU bookkeeping of a [`DiskCache`].
///
/// Invariant (held under the [`DiskCache::index`] lock, which every file
/// delete also holds): `total_bytes` equals the sum of the on-disk sizes
/// of exactly the indexed entries. `slots` maps each key to its slot;
/// `order` mirrors the slots keyed by touch counter, so the coldest entry
/// is `order`'s first value and both touch and eviction are O(log n) —
/// the previous `Vec` + `position()` index was O(n) per operation,
/// quadratic over the thousands of entries the unit tier creates.
///
/// `visited` is the work counter the regression test pins: **contract —
/// every index operation (`touch`/`remove`/`coldest`) increments it by
/// exactly 1**, i.e. examines one slot, never a scan. A reintroduced
/// linear scan has nowhere to hide: it would have to bump `visited` per
/// element examined (as the dbscan fix's counter does) and the test's
/// equality assertion fails.
#[derive(Debug, Default)]
struct DiskIndex {
    slots: HashMap<(u128, EntryKind), IndexSlot>,
    order: BTreeMap<u64, (u128, EntryKind)>,
    next_touch: u64,
    total_bytes: u64,
    visited: u64,
}

impl DiskIndex {
    /// Move `key` to the hot end (or insert it), updating the byte total.
    fn touch(&mut self, key: u128, kind: EntryKind, size: u64) {
        self.visited += 1;
        let t = self.next_touch;
        self.next_touch += 1;
        match self.slots.get_mut(&(key, kind)) {
            Some(slot) => {
                self.order.remove(&slot.touch);
                self.total_bytes -= slot.size;
                slot.touch = t;
                slot.size = size;
            }
            None => {
                self.slots.insert((key, kind), IndexSlot { touch: t, size });
            }
        }
        self.order.insert(t, (key, kind));
        self.total_bytes += size;
    }

    fn remove(&mut self, key: u128, kind: EntryKind) {
        self.visited += 1;
        if let Some(slot) = self.slots.remove(&(key, kind)) {
            self.order.remove(&slot.touch);
            self.total_bytes -= slot.size;
        }
    }

    fn contains(&self, key: u128, kind: EntryKind) -> bool {
        self.slots.contains_key(&(key, kind))
    }

    /// The least-recently-used entry, if any.
    fn coldest(&mut self) -> Option<(u128, EntryKind)> {
        self.visited += 1;
        self.order.values().next().copied()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

impl DiskCache {
    /// Open (creating if needed) the cache directory and rebuild the LRU
    /// index from the entries already on disk, coldest mtime first.
    fn open(dir: &Path, budget: u64) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        let mut found: Vec<(u128, EntryKind, u64, std::time::SystemTime)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some((key, kind)) = name.to_str().and_then(|n| {
                EntryKind::ALL.iter().find_map(|&kind| {
                    let hex = n.strip_suffix(kind.suffix())?.strip_suffix('.')?;
                    Some((u128::from_str_radix(hex, 16).ok()?, kind))
                })
            }) else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            found.push((key, kind, meta.len(), mtime));
        }
        found.sort_by_key(|&(key, kind, _, mtime)| (mtime, key, kind));
        let mut index = DiskIndex::default();
        for (key, kind, size, _) in found {
            index.touch(key, kind, size);
        }
        Ok(DiskCache {
            dir: dir.to_path_buf(),
            budget,
            index: Mutex::new(index),
        })
    }

    fn path_of(&self, key: u128, kind: EntryKind) -> PathBuf {
        self.dir.join(format!("{key:032x}.{}", kind.suffix()))
    }

    /// Read-through lookup of a verified payload. Any failure — missing
    /// file, bad magic, bad checksum, undecodable payload — deletes the
    /// entry and reports a miss; a corrupted entry can never surface as a
    /// wrong value.
    fn load_entry<T>(
        &self,
        key: u128,
        kind: EntryKind,
        decode: impl FnOnce(&[u8]) -> Option<T>,
    ) -> Option<T> {
        let path = self.path_of(key, kind);
        let bytes = std::fs::read(&path).ok();
        // Account the entry at the length actually read: re-statting the
        // file here would race a concurrent eviction's delete and record
        // the entry at size 0, permanently desyncing `total_bytes` from
        // real disk usage.
        let file_len = bytes.as_ref().map(|b| b.len() as u64).unwrap_or(0);
        let value = bytes.and_then(|bytes| {
            let payload = bytes.strip_prefix(kind.magic())?;
            let (sum, payload) = payload.split_first_chunk::<8>()?;
            if u64::from_le_bytes(*sum) != codec::fnv64(payload) {
                return None;
            }
            decode(payload)
        });
        match value {
            Some(value) => {
                // Touch under the same lock eviction deletes files under,
                // and only while the entry still exists — an entry evicted
                // between our read and this lock must not be resurrected
                // into the index as a ghost.
                let mut index = self.index.lock();
                if index.contains(key, kind) || path.exists() {
                    index.touch(key, kind, file_len);
                }
                Some(value)
            }
            None => {
                let mut index = self.index.lock();
                let _ = std::fs::remove_file(&path);
                index.remove(key, kind);
                None
            }
        }
    }

    fn load(&self, key: u128) -> Option<EvalOutcome> {
        self.load_entry(key, EntryKind::Outcome, codec::decode_outcome)
    }

    fn load_unit(&self, key: u128) -> Option<CompiledUnit> {
        self.load_entry(key, EntryKind::Unit, decode_unit)
    }

    /// Write-through insert: frame the payload (magic + checksum), write to
    /// a temp file, rename into place (atomic on POSIX), then evict cold
    /// entries until the tier is back under budget. Returns how many
    /// entries were evicted.
    fn store(&self, key: u128, kind: EntryKind, payload: &[u8]) -> u64 {
        let magic = kind.magic();
        let mut bytes = Vec::with_capacity(magic.len() + 8 + payload.len());
        bytes.extend_from_slice(magic);
        bytes.extend_from_slice(&codec::fnv64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        let path = self.path_of(key, kind);
        let tmp = self.dir.join(format!("{key:032x}.{}.tmp", kind.suffix()));
        if std::fs::write(&tmp, &bytes).is_err() || std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return 0;
        }
        let mut index = self.index.lock();
        index.touch(key, kind, bytes.len() as u64);
        // Evict coldest-first until under budget. The entry just written is
        // at the hot end and is never evicted on its own insert (a single
        // over-budget entry is still worth keeping until something newer
        // displaces it).
        let mut evicted = 0;
        while index.total_bytes > self.budget && index.len() > 1 {
            let Some((cold, cold_kind)) = index.coldest() else {
                break;
            };
            let _ = std::fs::remove_file(self.path_of(cold, cold_kind));
            index.remove(cold, cold_kind);
            evicted += 1;
        }
        evicted
    }
}

/// A content-addressed memo of build + run outcomes: an in-memory map,
/// optionally backed by a persistent disk tier shared across
/// processes (see [`EvalConfig::disk_cache_dir`]). Lookups read through —
/// memory first, then disk (promoting the entry to memory) — and inserts
/// write through to both tiers.
///
/// Thread-safe: lookups take a read lock, inserts a write lock, so workers
/// of a parallel runner serve each other's hits. Two threads racing on the
/// same cold key may both evaluate; the substrate is deterministic, so
/// whichever insert lands last stores the same outcome.
#[derive(Debug, Default)]
pub struct BuildCache {
    map: RwLock<HashMap<u128, EvalOutcome>>,
    /// The file-granular tier: per-file compile units (parse + sema +
    /// object) keyed by include-closure content (see
    /// [`minihpc_build::unit::unit_key`]). Outcome hits never reach this
    /// tier; it pays off on outcome *misses* whose repos share files with
    /// earlier builds — a repair round that touched one file re-compiles
    /// one unit and re-runs only link + test.
    units: RwLock<HashMap<u128, CompiledUnit>>,
    /// Parse memo backing the unit tier: `SourceFile` ASTs keyed by file
    /// content. Unit lookup needs the include closure, which needs every
    /// file parsed — this memo makes that discovery pass reparse only
    /// changed files.
    parses: RwLock<HashMap<u128, ParsedFile>>,
    /// Analyzer findings memoized by the same content key as build
    /// outcomes: the analysis is pure over repo content, so a repeated
    /// evaluation (Code-only reuse, repair rounds that re-emit unchanged
    /// files) reuses its findings alongside the cached objects.
    analysis: RwLock<HashMap<u128, Vec<AnalysisFinding>>>,
    disk: Option<DiskCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    file_hits: AtomicU64,
    file_misses: AtomicU64,
    evictions: AtomicU64,
}

impl BuildCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache with a persistent disk tier rooted at `dir` (created if
    /// missing), evicting least-recently-used entries beyond `budget`
    /// bytes. Fails only if the directory cannot be created or scanned.
    pub fn with_disk(dir: &Path, budget: u64) -> std::io::Result<Self> {
        Ok(BuildCache {
            disk: Some(DiskCache::open(dir, budget)?),
            ..BuildCache::default()
        })
    }

    /// The full outcome key: repo content plus every input that changes
    /// what `evaluate` returns for it.
    fn key(task: &Task, repo: &SourceRepo, eval: &EvalConfig) -> u128 {
        // Destructure exhaustively: adding an `EvalConfig` field refuses to
        // compile until it is hashed below or explicitly exempted, so a new
        // knob can never silently alias cache entries.
        let EvalConfig {
            max_cases,
            max_steps,
            // Gates whether a cache exists at all; it cannot alias entries.
            build_cache: _,
            // Pure wall-clock knob: the build substrate is deterministic,
            // so outcomes are byte-identical with the file tier on or off
            // (tests/determinism.rs proves it) — hashing it would only
            // split otherwise-shareable entries.
            file_cache: _,
            repair_budget,
            repair_diag_lines,
            // Where the persistent tier lives and how big it may grow
            // cannot change what `evaluate` returns, only how fast.
            disk_cache_dir: _,
            disk_cache_budget: _,
            analyze,
            analyze_max_findings,
            repair_guided,
        } = eval;
        let mut h = ContentHash::new();
        h.write(task.app.binary.as_bytes());
        h.write(task.app.name.as_bytes());
        h.write(task.pair.id().as_bytes());
        h.write(&max_cases.to_le_bytes());
        h.write(&max_steps.to_le_bytes());
        h.write(&repair_budget.to_le_bytes());
        h.write(&repair_diag_lines.to_le_bytes());
        // Hashed only when the analyzer is on, so analyzer-off keys (and
        // the disk entries named by them) stay identical to the
        // pre-analyzer format.
        if *analyze {
            h.write(b"analyze");
            h.write(&analyze_max_findings.to_le_bytes());
        }
        // Same append-only discipline: guided repair changes what repair
        // rounds produce, but default-config (blind) keys keep the old
        // byte format.
        if *repair_guided {
            h.write(b"repair-guided");
        }
        for (path, contents) in repo.iter() {
            h.write(path.as_bytes());
            h.write(contents.as_bytes());
        }
        h.0
    }

    fn lookup(&self, key: u128) -> Option<EvalOutcome> {
        if let Some(hit) = self.map.read().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        // Read through to the disk tier, promoting the entry to memory so
        // repeat lookups in this process are pure memory hits.
        if let Some(hit) = self.disk.as_ref().and_then(|d| d.load(key)) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.map.write().insert(key, hit.clone());
            return Some(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn insert(&self, key: u128, outcome: EvalOutcome) {
        if let Some(disk) = &self.disk {
            let evicted = disk.store(key, EntryKind::Outcome, &codec::encode_outcome(&outcome));
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        self.map.write().insert(key, outcome);
    }

    /// Entries in the in-memory tiers: whole-repo outcomes plus per-file
    /// compile units. (`len()` used to report only the outcome map, which
    /// under-reported occupancy once the disk tier existed — size
    /// accounting now reports each tier explicitly; see [`len_disk`].)
    ///
    /// [`len_disk`]: BuildCache::len_disk
    pub fn len_memory(&self) -> usize {
        self.map.read().len() + self.units.read().len()
    }

    /// Entries currently indexed in the persistent disk tier (0 when no
    /// disk tier is configured). Counts both outcome and unit entries.
    pub fn len_disk(&self) -> usize {
        self.disk
            .as_ref()
            .map(|d| d.index.lock().len())
            .unwrap_or(0)
    }

    /// No entries in any tier, memory or disk.
    pub fn is_empty(&self) -> bool {
        self.len_memory() == 0 && self.len_disk() == 0
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            file_hits: self.file_hits.load(Ordering::Relaxed),
            file_misses: self.file_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The file-granular cache seam the build driver compiles through (see
/// [`minihpc_build::driver::build_repo_with`]): parses memoized by file
/// content, compile units by include-closure key, both read through to the
/// disk tier when one is configured.
impl UnitCache for BuildCache {
    fn parse_file(&self, text: &str) -> ParsedFile {
        let mut h = ContentHash::new();
        h.write(b"parse-v1");
        h.write(text.as_bytes());
        let key = h.0;
        if let Some(hit) = self.parses.read().get(&key) {
            return hit.clone();
        }
        let parsed = minihpc_lang::parser::parse_file(text);
        self.parses.write().insert(key, parsed.clone());
        parsed
    }

    fn lookup_unit(&self, key: u128) -> Option<CompiledUnit> {
        if let Some(hit) = self.units.read().get(&key).cloned() {
            self.file_hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        if let Some(hit) = self.disk.as_ref().and_then(|d| d.load_unit(key)) {
            self.file_hits.fetch_add(1, Ordering::Relaxed);
            self.units.write().insert(key, hit.clone());
            return Some(hit);
        }
        self.file_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn store_unit(&self, key: u128, unit: &CompiledUnit) {
        if let Some(disk) = &self.disk {
            let evicted = disk.store(key, EntryKind::Unit, &encode_unit(unit));
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        self.units.write().insert(key, unit.clone());
    }
}

/// The sample-evaluation pipeline: owns the eval knobs and the build cache.
///
/// One pipeline serves a whole experiment run — runners construct one per
/// [`Runner::run`](crate::runner::Runner::run) call and share it across
/// workers (or accept a caller-provided one via
/// [`Runner::run_with`](crate::runner::Runner::run_with), e.g. to read
/// [`EvalPipeline::cache_stats`] afterwards).
#[derive(Debug)]
pub struct EvalPipeline {
    eval: EvalConfig,
    cache: Option<BuildCache>,
}

impl Default for EvalPipeline {
    fn default() -> Self {
        Self::new(EvalConfig::default())
    }
}

impl EvalPipeline {
    /// A pipeline with the given knobs; the cache is enabled per
    /// [`EvalConfig::build_cache`], and gains a persistent disk tier when
    /// [`EvalConfig::disk_cache_dir`] is set. An unusable cache directory
    /// (cannot be created or scanned) degrades to the in-memory tier only —
    /// the persistent cache is a wall-clock optimization and must never
    /// stop a run; [`EvalPipeline::disk_cache_active`] reports whether the
    /// tier actually engaged.
    pub fn new(eval: EvalConfig) -> Self {
        let cache = eval.build_cache.then(|| match &eval.disk_cache_dir {
            Some(dir) => BuildCache::with_disk(dir, eval.disk_cache_budget)
                .unwrap_or_else(|_| BuildCache::new()),
            None => BuildCache::new(),
        });
        EvalPipeline { eval, cache }
    }

    /// Did the persistent disk tier requested by
    /// [`EvalConfig::disk_cache_dir`] actually open? (False when no dir was
    /// configured, the cache is disabled, or the directory was unusable.)
    pub fn disk_cache_active(&self) -> bool {
        self.cache.as_ref().is_some_and(|c| c.disk.is_some())
    }

    pub fn eval(&self) -> &EvalConfig {
        &self.eval
    }

    /// Cache counters (all-zero when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(BuildCache::stats)
            .unwrap_or_default()
    }

    /// Run one sample: start an attempt on `backend`, translate with the
    /// technique, then evaluate both scorings through the (cached) build +
    /// run pipeline.
    pub fn run_sample(
        &self,
        task: &Task,
        technique: Technique,
        model: &ModelProfile,
        backend: &dyn TranslationBackend,
        seed: u64,
        sample: u32,
    ) -> SampleResult {
        // The registry serves the repo as a shared handle — no per-sample
        // deep clone — and a task whose source model the app does not
        // implement becomes a typed infeasible result, not a panic.
        let source_repo = match task.app.repo_arc(task.pair.from) {
            Ok(repo) => repo,
            Err(err) => {
                return SampleResult {
                    feasible: false,
                    failure_reason: Some(err.to_string()),
                    code_only: None,
                    overall: None,
                    tokens: pareval_llm::TokenUsage::default(),
                    rounds: Vec::new(),
                    analysis: Vec::new(),
                }
            }
        };
        let spec = AttemptSpec {
            model,
            technique,
            pair: task.pair,
            app_name: &task.app.name,
            source_repo: Arc::clone(&source_repo),
            seed,
            sample,
        };
        let mut attempt = backend.start_attempt(&spec);
        let job = TranslationJob {
            app_name: &task.app.name,
            binary: &task.app.binary,
            source_repo: &source_repo,
            pair: task.pair,
            cli_spec: &task.app.cli_spec,
            build_spec: &task.app.build_spec,
        };
        let run_result = translate_with(technique, &job, &mut attempt);
        let Some(mut repo) = run_result.repo else {
            return SampleResult {
                feasible: false,
                failure_reason: run_result.failure,
                code_only: None,
                overall: None,
                tokens: attempt.usage(),
                rounds: Vec::new(),
                analysis: Vec::new(),
            };
        };

        let mut overall = self.evaluate(task, &repo);
        let mut code_only = self.code_only_outcome(task, &repo, &overall);
        // The post-build verdict stage: static race/directive analysis of
        // the translated repository (always empty with the analyzer off).
        let mut analysis = self.analyze(task, &repo);

        // A sample needs repair while the Overall build is broken, or —
        // with the analyzer on — while it builds but carries race errors.
        // With the analyzer off the second arm is vacuous and the loop
        // behaves exactly as before.
        fn needs_repair(overall: &EvalOutcome, analysis: &[AnalysisFinding]) -> bool {
            !overall.built || analysis.iter().any(|f| f.is_error())
        }

        // The repair loop: while budget remains and the sample needs
        // repair, summarize the failure into a RepairContext, re-invoke the
        // attempt, overlay its revised files, and re-evaluate — every round
        // through the same build cache (a round that re-emits unchanged
        // files is a pure cache hit). Rounds snapshot both scorings and the
        // cumulative token usage, so collectors can report build@1/pass@1
        // and token cost as a function of repair round.
        let mut rounds = Vec::new();
        if self.eval.repair_budget > 0 && needs_repair(&overall, &analysis) {
            rounds.push(RepairRound {
                round: 0,
                gave_up: false,
                code_only: code_only.clone(),
                overall: overall.clone(),
                tokens: attempt.usage(),
            });
            for round in 1..=self.eval.repair_budget {
                let mut ctx = repair_context(&overall, round, self.eval.repair_diag_lines);
                let race: Vec<String> = analysis
                    .iter()
                    .filter(|f| f.is_error())
                    .map(AnalysisFinding::render)
                    .collect();
                if !race.is_empty() && !ctx.categories.contains(&ErrorCategory::OmpInvalidDirective)
                {
                    ctx.categories.push(ErrorCategory::OmpInvalidDirective);
                }
                ctx.race_findings = race;
                // Guided repair: hand the backend the analyzer's
                // high-confidence error fix-its plus the current text of
                // every file they target, so it can apply them
                // deterministically instead of regenerating.
                if self.eval.repair_guided {
                    ctx.fixits = analysis
                        .iter()
                        .filter(|f| f.is_error() && f.confidence == Confidence::High)
                        .filter_map(|f| f.fixit.clone())
                        .collect();
                    let mut targets: Vec<&str> =
                        ctx.fixits.iter().map(|fx| fx.file.as_str()).collect();
                    targets.sort_unstable();
                    targets.dedup();
                    ctx.fixit_sources = targets
                        .into_iter()
                        .filter_map(|p| repo.get(p).map(|t| (p.to_string(), t.to_string())))
                        .collect();
                }
                match attempt.repair(&ctx) {
                    RepairOutcome::GaveUp => {
                        rounds.push(RepairRound {
                            round,
                            gave_up: true,
                            code_only: code_only.clone(),
                            overall: overall.clone(),
                            tokens: attempt.usage(),
                        });
                        break;
                    }
                    RepairOutcome::Revised(files) => {
                        // An empty revision (every fix attempt discarded)
                        // leaves the repo byte-identical, so re-evaluating
                        // would rebuild the same outcome; reuse it.
                        if !files.is_empty() {
                            for (p, c) in files {
                                repo.add(p, c);
                            }
                            overall = self.evaluate(task, &repo);
                            code_only = self.code_only_outcome(task, &repo, &overall);
                            analysis = self.analyze(task, &repo);
                        }
                        rounds.push(RepairRound {
                            round,
                            gave_up: false,
                            code_only: code_only.clone(),
                            overall: overall.clone(),
                            tokens: attempt.usage(),
                        });
                    }
                }
                if !needs_repair(&overall, &analysis) {
                    break;
                }
            }
        }

        SampleResult {
            feasible: true,
            failure_reason: None,
            code_only: Some(code_only),
            overall: Some(overall),
            tokens: attempt.usage(),
            rounds,
            analysis,
        }
    }

    /// The analyzer verdict for `repo`, memoized by the same content key as
    /// build outcomes when a cache is enabled. Always empty with
    /// [`EvalConfig::analyze`] off; otherwise sorted findings, truncated to
    /// [`EvalConfig::analyze_max_findings`].
    fn analyze(&self, task: &Task, repo: &SourceRepo) -> Vec<AnalysisFinding> {
        if !self.eval.analyze {
            return Vec::new();
        }
        let cached_key = self
            .cache
            .is_some()
            .then(|| BuildCache::key(task, repo, &self.eval));
        if let (Some(cache), Some(key)) = (&self.cache, cached_key) {
            if let Some(hit) = cache.analysis.read().get(&key).cloned() {
                return hit;
            }
        }
        let mut findings = minihpc_analyze::analyze_repo(repo);
        findings.truncate(self.eval.analyze_max_findings);
        if let (Some(cache), Some(key)) = (&self.cache, cached_key) {
            cache.analysis.write().insert(key, findings.clone());
        }
        findings
    }

    /// Code-only scoring of `translated`: swap in the ground-truth build
    /// file. When the translated build file already matches it, the rebuilt
    /// repo hashes to the same key and the Overall evaluation is reused
    /// wholesale.
    ///
    /// The overlay repo is a clone of `translated` — which shares file
    /// bodies by handle ([`SourceRepo`] stores `Arc<str>`), so swapping the
    /// build file costs two map edits, not a deep copy of every source.
    /// The unchanged sources also keep their content, so the file tier
    /// serves their compile units straight from the Overall build.
    fn code_only_outcome(
        &self,
        task: &Task,
        translated: &SourceRepo,
        overall: &EvalOutcome,
    ) -> EvalOutcome {
        match task.app.ground_truth_build.get(&task.pair.to) {
            Some((gt_path, gt_text)) => {
                let mut repo = translated.clone();
                let build_files: Vec<String> = repo
                    .iter()
                    .filter(|(p, _)| FileKind::of(p).is_build_file())
                    .map(|(p, _)| p.to_string())
                    .collect();
                for p in build_files {
                    repo.remove(&p);
                }
                repo.add(gt_path.clone(), gt_text.clone());
                self.evaluate(task, &repo)
            }
            None => overall.clone(),
        }
    }

    /// Build + run the app's tests + enforce the paper's correctness
    /// criteria, through the cache when one is enabled. On an outcome miss
    /// the cold build compiles through the cache's file-granular unit tier
    /// (unless [`EvalConfig::file_cache`] is off), so repos sharing files
    /// with earlier builds recompile only what changed.
    pub fn evaluate(&self, task: &Task, repo: &SourceRepo) -> EvalOutcome {
        let Some(cache) = &self.cache else {
            return evaluate_uncached(task, repo, &self.eval, None);
        };
        let key = BuildCache::key(task, repo, &self.eval);
        if let Some(hit) = cache.lookup(key) {
            return hit;
        }
        let units = self.eval.file_cache.then_some(cache as &dyn UnitCache);
        let outcome = evaluate_uncached(task, repo, &self.eval, units);
        cache.insert(key, outcome.clone());
        outcome
    }

    /// Execute one sample spec of `plan` through this pipeline, with the
    /// backend the plan resolved for the spec's cell.
    ///
    /// A panic inside the sample (a buggy backend, a substrate assertion)
    /// is re-raised with the offending [`CellKey`](crate::plan::CellKey)
    /// and sample index attached, so a crashed grid run names the one
    /// configuration to replay instead of "a worker panicked somewhere".
    /// The run still aborts — every runner propagates the panic out of its
    /// thread scope.
    pub fn execute(&self, plan: &ExperimentPlan, spec: &SampleSpec) -> SampleRecord {
        let cell = &plan.cells()[spec.cell];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_sample(
                plan.task_of(cell),
                cell.key.technique,
                plan.model_of(cell),
                plan.backend_of(cell),
                plan.seed(),
                spec.sample_index,
            )
        }));
        let result = match result {
            Ok(result) => result,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                // panic_any (not resume_unwind) so the panic hook runs and
                // the enriched message reaches stderr in real runs, not
                // just #[should_panic] payload matching.
                std::panic::panic_any(format!(
                    "sample {} of cell {:?} panicked: {msg}",
                    spec.sample_index, cell.key
                ));
            }
        };
        SampleRecord {
            key: cell.key,
            sample_index: spec.sample_index,
            result,
        }
    }
}

/// Best-effort rendering of a caught panic payload (`panic!` produces a
/// `&str` or a `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Summarize a failed build's categorized diagnostics into the structured
/// feedback one repair round receives: distinct categories and files in
/// first-occurrence order, plus the first `max_lines` rendered lines.
fn repair_context(outcome: &EvalOutcome, round: u32, max_lines: usize) -> RepairContext {
    let mut categories = Vec::new();
    let mut files = Vec::new();
    for d in &outcome.error_diagnostics {
        if !categories.contains(&d.category) {
            categories.push(d.category);
        }
        if !files.contains(&d.file) {
            files.push(d.file.clone());
        }
    }
    let diagnostics = outcome
        .error_diagnostics
        .iter()
        .take(max_lines)
        .map(|d| d.to_string())
        .collect();
    RepairContext {
        round,
        categories,
        files,
        diagnostics,
        race_findings: Vec::new(),
        fixits: Vec::new(),
        fixit_sources: Vec::new(),
    }
}

/// The cold path: build, enforce the target-model rule, run the developer
/// tests (right answers, on the specified hardware). `units` is the
/// optional file-granular compile cache the build reads and writes
/// per-file results through.
fn evaluate_uncached(
    task: &Task,
    repo: &SourceRepo,
    eval: &EvalConfig,
    units: Option<&dyn UnitCache>,
) -> EvalOutcome {
    let outcome = build_repo_with(repo, &BuildRequest::new(&*task.app.binary), units);
    let build_log = outcome.log.text();
    let Some(exe) = outcome.executable else {
        return EvalOutcome {
            built: false,
            passed: false,
            error_category: outcome.log.first_error_category(),
            build_log,
            error_diagnostics: outcome.log.errors().cloned().collect(),
        };
    };
    // Target-model check: the translation must actually use the requested
    // programming model.
    if !exe.usage.conforms_to(task.pair.to) {
        return EvalOutcome {
            built: true,
            passed: false,
            error_category: None,
            build_log,
            error_diagnostics: Vec::new(),
        };
    }
    let mut passed = true;
    for case in task.app.tests.iter().take(eval.max_cases) {
        let expected = task.app.expected_output(case);
        let mut cfg = RunConfig::with_args(case.args.iter().cloned());
        cfg.max_steps = eval.max_steps;
        let r = run(&exe, cfg);
        let ok = r.error.is_none()
            && r.exit_code == 0
            && r.stdout == expected
            && (!task.pair.to.is_gpu() || r.telemetry.ran_on_device());
        if !ok {
            passed = false;
            break;
        }
    }
    EvalOutcome {
        built: true,
        passed,
        error_category: None,
        build_log,
        error_diagnostics: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::all_tasks;
    use minihpc_lang::model::TranslationPair;
    use pareval_llm::{model_by_name, OracleBackend, SimulatedBackend};

    fn eval_config() -> EvalConfig {
        EvalConfig {
            max_cases: 1,
            ..EvalConfig::default()
        }
    }

    fn task_named(app: &str, pair: TranslationPair) -> Task {
        all_tasks()
            .into_iter()
            .find(|t| t.app.name == app && t.pair == pair)
            .unwrap()
    }

    #[test]
    fn o4_mini_sample_round_trips() {
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let pipeline = EvalPipeline::new(eval_config());
        let model = model_by_name("o4-mini").unwrap();
        let mut any_pass = false;
        for s in 0..6 {
            let r = pipeline.run_sample(
                &task,
                Technique::NonAgentic,
                &model,
                &SimulatedBackend,
                7,
                s,
            );
            assert!(r.feasible);
            let code = r.code_only.unwrap();
            // Code-only pass implies code-only build.
            assert!(!code.passed || code.built);
            any_pass |= code.passed;
        }
        assert!(any_pass, "o4-mini should pass nanoXOR sometimes (0.84)");
    }

    #[test]
    fn infeasible_cell_reports_reason() {
        let task = task_named("XSBench", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let model = model_by_name("gemini-1.5-flash").unwrap();
        let pipeline = EvalPipeline::new(EvalConfig::default());
        let r = pipeline.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        assert!(!r.feasible);
        assert!(r.failure_reason.unwrap().contains("context"));
    }

    #[test]
    fn cache_hit_is_identical_to_cold_evaluation() {
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let model = model_by_name("o4-mini").unwrap();
        let cached = EvalPipeline::new(eval_config());
        let uncached = EvalPipeline::new(EvalConfig {
            build_cache: false,
            ..eval_config()
        });
        let cold = uncached.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        let warm = cached.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        let hot = cached.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        assert_eq!(cold, warm);
        assert_eq!(cold, hot);
        let stats = cached.cache_stats();
        assert!(stats.hits >= 2, "second run must hit: {stats:?}");
        assert_eq!(uncached.cache_stats(), CacheStats::default());
    }

    #[test]
    fn oracle_samples_are_served_from_cache_after_the_first() {
        // Oracle output is sample-independent, so the second sample's two
        // scorings both hash to repos the first already evaluated: every
        // lookup after the first sample is a hit.
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let model = model_by_name("o4-mini").unwrap();
        let pipeline = EvalPipeline::new(eval_config());
        let a = pipeline.run_sample(&task, Technique::NonAgentic, &model, &OracleBackend, 7, 0);
        let b = pipeline.run_sample(&task, Technique::NonAgentic, &model, &OracleBackend, 7, 1);
        assert!(a.code_only.as_ref().unwrap().passed);
        assert!(a.overall.as_ref().unwrap().passed);
        assert_eq!(a.code_only, b.code_only);
        assert_eq!(a.overall, b.overall);
        let stats = pipeline.cache_stats();
        // Sample 0's two scorings are the only outcome misses; sample 1 is
        // pure hits. Within sample 0's misses, the file tier engages: the
        // Overall build compiles its unit cold, and the Code-only build —
        // same sources, different build file — replays it.
        assert_eq!(
            stats,
            CacheStats {
                hits: 2,
                misses: 2,
                file_hits: 1,
                file_misses: 1,
                ..CacheStats::default()
            },
            "sample 1 must be pure hits; code-only must replay the unit"
        );
    }

    /// A unique scratch dir under the system temp dir (no `tempfile`
    /// crate in the workspace), removed by the test that made it.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pareval-eval-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        path
    }

    #[test]
    fn concurrent_load_and_evict_keep_byte_accounting_in_sync() {
        // Regression pin for the load-path accounting bug: `load` used to
        // re-stat the entry file *after* reading it, so an eviction racing
        // between the read and the stat recorded the entry at size 0 and
        // resurrected evicted keys as ghost index entries. The fix accounts
        // the bytes actually read and re-touches under the eviction lock
        // only while the entry still exists.
        let dir = scratch_dir("load-evict");
        let outcome = EvalOutcome {
            built: true,
            passed: true,
            error_category: None,
            build_log: "x".repeat(64),
            error_diagnostics: Vec::new(),
        };
        let payload = codec::encode_outcome(&outcome);
        // Budget fits only a handful of entries, so the storer thread
        // evicts on nearly every insert while loaders hammer a hot key.
        let entry_len = (payload.len() + 16) as u64;
        let cache = DiskCache::open(&dir, entry_len * 4).unwrap();
        cache.store(0, EntryKind::Outcome, &payload);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..300 {
                        let _ = cache.load(0);
                    }
                });
            }
            s.spawn(|| {
                for k in 1..300u128 {
                    cache.store(k, EntryKind::Outcome, &payload);
                }
            });
        });
        // Quiesced invariant: the index tracks exactly the on-disk entry
        // files, and `total_bytes` is the sum of their real sizes.
        let index = cache.index.lock();
        let mut on_disk = std::collections::BTreeMap::new();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            let name = entry.file_name().into_string().unwrap();
            let hex = name.strip_suffix(".entry").expect("only .entry files");
            let key = u128::from_str_radix(hex, 16).unwrap();
            on_disk.insert(key, entry.metadata().unwrap().len());
        }
        let indexed: std::collections::BTreeMap<u128, u64> = index
            .slots
            .iter()
            .map(|(&(key, _), slot)| (key, slot.size))
            .collect();
        assert_eq!(indexed, on_disk, "index and directory disagree");
        assert_eq!(
            index.total_bytes,
            on_disk.values().sum::<u64>(),
            "total_bytes desynced from real disk usage"
        );
        drop(index);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_index_operations_examine_one_slot_each() {
        // Work-counter pin for the O(n)-scan fix: every index operation
        // examines exactly one slot, so a workload of K operations over N
        // entries costs K visits — the old `Vec::position` index cost
        // O(N) per touch/remove (~N·K/2 visits on this workload).
        const N: u128 = 512;
        let mut index = DiskIndex::default();
        let mut ops = 0u64;
        for k in 0..N {
            index.touch(k, EntryKind::Unit, 10);
            ops += 1;
        }
        assert_eq!(index.total_bytes, 10 * N as u64);
        // Re-touch every entry in insertion order (the worst case for the
        // old index: each re-touch scanned to the cold end).
        for k in 0..N {
            index.touch(k, EntryKind::Unit, 12);
            ops += 1;
        }
        assert_eq!(index.total_bytes, 12 * N as u64);
        // The same key under the other entry kind is a distinct slot.
        index.touch(7, EntryKind::Outcome, 100);
        ops += 1;
        assert_eq!(index.len(), N as usize + 1);
        for k in 0..N / 2 {
            index.remove(k, EntryKind::Unit);
            ops += 1;
        }
        // Drain the rest the way eviction does: coldest probe + remove.
        while let Some((k, kind)) = index.coldest() {
            ops += 1;
            index.remove(k, kind);
            ops += 1;
        }
        ops += 1; // the final coldest() that found the index empty
        assert_eq!(index.total_bytes, 0);
        assert_eq!(index.len(), 0);
        assert_eq!(
            index.visited, ops,
            "an index operation examined more than one slot"
        );
    }

    #[test]
    fn per_tier_lengths_count_every_tier() {
        // `len()` used to report only the in-memory outcome map; the
        // per-tier counts must see unit entries and disk entries too.
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let model = model_by_name("o4-mini").unwrap();
        let dir = scratch_dir("tier-len");
        let cache = BuildCache::with_disk(&dir, 64 << 20).unwrap();
        assert!(cache.is_empty());
        let pipeline = EvalPipeline {
            eval: eval_config(),
            cache: Some(cache),
        };
        pipeline.run_sample(&task, Technique::NonAgentic, &model, &OracleBackend, 7, 0);
        let cache = pipeline.cache.as_ref().unwrap();
        assert!(
            cache.len_memory() > cache.map.read().len(),
            "unit entries must count toward the memory tier"
        );
        assert_eq!(
            cache.len_disk(),
            cache.len_memory(),
            "every memory entry was written through to disk"
        );
        assert!(!cache.is_empty());
        // A fresh cache over the same dir is not empty: the disk tier
        // counts even though the memory tier starts cold.
        let reopened = BuildCache::with_disk(&dir, 64 << 20).unwrap();
        assert_eq!(reopened.len_memory(), 0);
        assert!(!reopened.is_empty());
        assert_eq!(reopened.len_disk(), cache.len_disk());
        drop(pipeline);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_repos_do_not_collide() {
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let a = task.app.repo(task.pair.from).unwrap().clone();
        let mut b = a.clone();
        let main = b.iter().map(|(p, _)| p.to_string()).next().unwrap();
        let text = format!("{}\n", b.get(&main).unwrap());
        b.add(main, text);
        let eval = eval_config();
        assert_ne!(
            BuildCache::key(&task, &a, &eval),
            BuildCache::key(&task, &b, &eval)
        );
    }
}
