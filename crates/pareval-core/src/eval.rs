//! The evaluation pipeline: backend attempt → technique → build → run →
//! score — plus bounded repair rounds on failed builds — with a
//! content-addressed build cache shared across runner workers.
//!
//! When [`EvalConfig::repair_budget`] > 0 and the Overall build fails, the
//! pipeline summarizes the categorized diagnostics into a
//! [`pareval_llm::RepairContext`], calls [`pareval_llm::Attempt::repair`],
//! overlays the revised files, and re-evaluates (both scorings) — looping
//! until the build succeeds, the attempt gives up, or the budget is spent.
//! Every round's evaluation goes through the same build cache, and every
//! round's outcome and cumulative token cost is retained in
//! [`SampleResult::rounds`](crate::task::SampleResult::rounds) so reports
//! can plot quality as a function of repair round.
//!
//! [`EvalPipeline`] replaces the free `run_sample`/`evaluate` functions of
//! the pre-backend harness. It owns the [`EvalConfig`] knobs plus a
//! [`BuildCache`] keyed by the content hash of the evaluated repository
//! (and everything else that determines the outcome: binary, app, target
//! model, eval knobs), so:
//!
//! - the Code-only scoring reuses the Overall build whenever the translated
//!   build file already matches ground truth (the two repos are then
//!   identical, hence the same key), and
//! - [`ScheduledRunner`](crate::sched::ScheduledRunner) workers share hits
//!   across threads — the cache sits behind a `parking_lot` lock and one
//!   pipeline serves the whole run.
//!
//! A cache hit returns a clone of the stored [`EvalOutcome`]; since the
//! build + run substrate is deterministic, a hit is byte-identical to the
//! cold evaluation it replaced (`tests/backends.rs` proves this by
//! property test, `tests/determinism.rs` end to end).

use crate::journal::codec;
use crate::plan::{ExperimentPlan, SampleSpec};
use crate::runner::SampleRecord;
use crate::task::{EvalConfig, EvalOutcome, RepairRound, SampleResult, Task};
use minihpc_analyze::{AnalysisFinding, Confidence};
use minihpc_build::{build_repo, BuildRequest, ErrorCategory};
use minihpc_lang::repo::{FileKind, SourceRepo};
use minihpc_runtime::{run, RunConfig};
use pareval_llm::{AttemptSpec, ModelProfile, RepairContext, RepairOutcome, TranslationBackend};
use pareval_translate::techniques::{translate_with, TranslationJob};
use pareval_translate::Technique;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// 128-bit FNV-1a, the content-address of the cache (also the plan
/// fingerprint hash, see [`crate::plan::ExperimentPlan::fingerprint`]).
/// Stable across runs and platforms (unlike `std`'s randomized hasher) and
/// wide enough that collisions are not a practical concern.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ContentHash(u128);

impl ContentHash {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    pub(crate) fn new() -> Self {
        ContentHash(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        // Field separator so ("ab", "c") and ("a", "bc") differ.
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    pub(crate) fn finish(self) -> u128 {
        self.0
    }
}

/// Hit/miss/evict counters of a [`BuildCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory tier.
    pub hits: u64,
    /// Lookups served from neither tier (a cold evaluation ran).
    pub misses: u64,
    /// Lookups that missed in memory but were served by the disk tier
    /// (the entry is promoted to memory on the way out).
    pub disk_hits: u64,
    /// Disk entries evicted to keep the tier under its byte budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from either cache tier (0 when none
    /// happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.disk_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / total as f64
        }
    }
}

/// The persistent tier of a [`BuildCache`]: one file per outcome in a
/// shared directory, named by the hex content key, each payload
/// checksummed. Because the file *name* is the full 128-bit key — which
/// hashes every [`EvalConfig`] knob that can change an outcome — a harness
/// whose key computation changes (a new knob, a new hash input) simply
/// stops matching old entries; it can never be served a stale outcome
/// computed under different semantics.
///
/// Durability is best-effort by design: a read that fails its checksum (a
/// torn write, bit rot) deletes the entry and reports a miss — a corrupted
/// entry can cost a rebuild, never a wrong result. Store errors (disk
/// full, permissions) are swallowed; the run continues on the memory tier.
///
/// Eviction is least-recently-used by byte budget: the in-process index
/// orders entries by last touch (seeded from file mtimes at open, so LRU
/// order survives across processes), and inserts evict from the cold end
/// until the tier fits the budget again.
#[derive(Debug)]
struct DiskCache {
    dir: PathBuf,
    budget: u64,
    index: Mutex<DiskIndex>,
}

/// LRU bookkeeping of a [`DiskCache`]: entries in touch order (front =
/// coldest), plus the running byte total.
#[derive(Debug, Default)]
struct DiskIndex {
    entries: Vec<(u128, u64)>,
    total_bytes: u64,
}

impl DiskIndex {
    /// Move `key` to the hot end (or append it), updating the byte total.
    fn touch(&mut self, key: u128, size: u64) {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            let (_, old) = self.entries.remove(i);
            self.total_bytes -= old;
        }
        self.entries.push((key, size));
        self.total_bytes += size;
    }

    fn remove(&mut self, key: u128) {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            let (_, size) = self.entries.remove(i);
            self.total_bytes -= size;
        }
    }
}

const DISK_ENTRY_MAGIC: &[u8; 8] = b"PEBC0001";

impl DiskCache {
    /// Open (creating if needed) the cache directory and rebuild the LRU
    /// index from the entries already on disk, coldest mtime first.
    fn open(dir: &Path, budget: u64) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        let mut found: Vec<(u128, u64, std::time::SystemTime)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(key) = name
                .to_str()
                .and_then(|n| n.strip_suffix(".entry"))
                .and_then(|hex| u128::from_str_radix(hex, 16).ok())
            else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            found.push((key, meta.len(), mtime));
        }
        found.sort_by_key(|&(key, _, mtime)| (mtime, key));
        let mut index = DiskIndex::default();
        for (key, size, _) in found {
            index.touch(key, size);
        }
        Ok(DiskCache {
            dir: dir.to_path_buf(),
            budget,
            index: Mutex::new(index),
        })
    }

    fn path_of(&self, key: u128) -> PathBuf {
        self.dir.join(format!("{key:032x}.entry"))
    }

    /// Read-through lookup. Any failure — missing file, bad magic, bad
    /// checksum, undecodable payload — deletes the entry and reports a
    /// miss; a corrupted entry can never surface as a wrong outcome.
    fn load(&self, key: u128) -> Option<EvalOutcome> {
        let path = self.path_of(key);
        let outcome = std::fs::read(&path).ok().and_then(|bytes| {
            let payload = bytes.strip_prefix(DISK_ENTRY_MAGIC)?;
            let (sum, payload) = payload.split_first_chunk::<8>()?;
            if u64::from_le_bytes(*sum) != codec::fnv64(payload) {
                return None;
            }
            codec::decode_outcome(payload)
        });
        match outcome {
            Some(outcome) => {
                let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                self.index.lock().touch(key, len);
                Some(outcome)
            }
            None => {
                let _ = std::fs::remove_file(&path);
                self.index.lock().remove(key);
                None
            }
        }
    }

    /// Write-through insert: serialize, write to a temp file, rename into
    /// place (atomic on POSIX), then evict cold entries until the tier is
    /// back under budget. Returns how many entries were evicted.
    fn store(&self, key: u128, outcome: &EvalOutcome) -> u64 {
        let payload = codec::encode_outcome(outcome);
        let mut bytes = Vec::with_capacity(DISK_ENTRY_MAGIC.len() + 8 + payload.len());
        bytes.extend_from_slice(DISK_ENTRY_MAGIC);
        bytes.extend_from_slice(&codec::fnv64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let path = self.path_of(key);
        let tmp = self.dir.join(format!("{key:032x}.tmp"));
        if std::fs::write(&tmp, &bytes).is_err() || std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return 0;
        }
        let mut index = self.index.lock();
        index.touch(key, bytes.len() as u64);
        // Evict coldest-first until under budget. The entry just written is
        // at the hot end and is never evicted on its own insert (a single
        // over-budget entry is still worth keeping until something newer
        // displaces it).
        let mut evicted = 0;
        while index.total_bytes > self.budget && index.entries.len() > 1 {
            let (cold, _) = index.entries[0];
            let _ = std::fs::remove_file(self.path_of(cold));
            index.remove(cold);
            evicted += 1;
        }
        evicted
    }
}

/// A content-addressed memo of build + run outcomes: an in-memory map,
/// optionally backed by a persistent disk tier shared across
/// processes (see [`EvalConfig::disk_cache_dir`]). Lookups read through —
/// memory first, then disk (promoting the entry to memory) — and inserts
/// write through to both tiers.
///
/// Thread-safe: lookups take a read lock, inserts a write lock, so workers
/// of a parallel runner serve each other's hits. Two threads racing on the
/// same cold key may both evaluate; the substrate is deterministic, so
/// whichever insert lands last stores the same outcome.
#[derive(Debug, Default)]
pub struct BuildCache {
    map: RwLock<HashMap<u128, EvalOutcome>>,
    /// Analyzer findings memoized by the same content key as build
    /// outcomes: the analysis is pure over repo content, so a repeated
    /// evaluation (Code-only reuse, repair rounds that re-emit unchanged
    /// files) reuses its findings alongside the cached objects.
    analysis: RwLock<HashMap<u128, Vec<AnalysisFinding>>>,
    disk: Option<DiskCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    evictions: AtomicU64,
}

impl BuildCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache with a persistent disk tier rooted at `dir` (created if
    /// missing), evicting least-recently-used entries beyond `budget`
    /// bytes. Fails only if the directory cannot be created or scanned.
    pub fn with_disk(dir: &Path, budget: u64) -> std::io::Result<Self> {
        Ok(BuildCache {
            disk: Some(DiskCache::open(dir, budget)?),
            ..BuildCache::default()
        })
    }

    /// The full outcome key: repo content plus every input that changes
    /// what `evaluate` returns for it.
    fn key(task: &Task, repo: &SourceRepo, eval: &EvalConfig) -> u128 {
        // Destructure exhaustively: adding an `EvalConfig` field refuses to
        // compile until it is hashed below or explicitly exempted, so a new
        // knob can never silently alias cache entries.
        let EvalConfig {
            max_cases,
            max_steps,
            // Gates whether a cache exists at all; it cannot alias entries.
            build_cache: _,
            repair_budget,
            repair_diag_lines,
            // Where the persistent tier lives and how big it may grow
            // cannot change what `evaluate` returns, only how fast.
            disk_cache_dir: _,
            disk_cache_budget: _,
            analyze,
            analyze_max_findings,
            repair_guided,
        } = eval;
        let mut h = ContentHash::new();
        h.write(task.app.binary.as_bytes());
        h.write(task.app.name.as_bytes());
        h.write(task.pair.id().as_bytes());
        h.write(&max_cases.to_le_bytes());
        h.write(&max_steps.to_le_bytes());
        h.write(&repair_budget.to_le_bytes());
        h.write(&repair_diag_lines.to_le_bytes());
        // Hashed only when the analyzer is on, so analyzer-off keys (and
        // the disk entries named by them) stay identical to the
        // pre-analyzer format.
        if *analyze {
            h.write(b"analyze");
            h.write(&analyze_max_findings.to_le_bytes());
        }
        // Same append-only discipline: guided repair changes what repair
        // rounds produce, but default-config (blind) keys keep the old
        // byte format.
        if *repair_guided {
            h.write(b"repair-guided");
        }
        for (path, contents) in repo.iter() {
            h.write(path.as_bytes());
            h.write(contents.as_bytes());
        }
        h.0
    }

    fn lookup(&self, key: u128) -> Option<EvalOutcome> {
        if let Some(hit) = self.map.read().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        // Read through to the disk tier, promoting the entry to memory so
        // repeat lookups in this process are pure memory hits.
        if let Some(hit) = self.disk.as_ref().and_then(|d| d.load(key)) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.map.write().insert(key, hit.clone());
            return Some(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn insert(&self, key: u128, outcome: EvalOutcome) {
        if let Some(disk) = &self.disk {
            let evicted = disk.store(key, &outcome);
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        self.map.write().insert(key, outcome);
    }

    /// Distinct outcomes currently stored.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The sample-evaluation pipeline: owns the eval knobs and the build cache.
///
/// One pipeline serves a whole experiment run — runners construct one per
/// [`Runner::run`](crate::runner::Runner::run) call and share it across
/// workers (or accept a caller-provided one via
/// [`Runner::run_with`](crate::runner::Runner::run_with), e.g. to read
/// [`EvalPipeline::cache_stats`] afterwards).
#[derive(Debug)]
pub struct EvalPipeline {
    eval: EvalConfig,
    cache: Option<BuildCache>,
}

impl Default for EvalPipeline {
    fn default() -> Self {
        Self::new(EvalConfig::default())
    }
}

impl EvalPipeline {
    /// A pipeline with the given knobs; the cache is enabled per
    /// [`EvalConfig::build_cache`], and gains a persistent disk tier when
    /// [`EvalConfig::disk_cache_dir`] is set. An unusable cache directory
    /// (cannot be created or scanned) degrades to the in-memory tier only —
    /// the persistent cache is a wall-clock optimization and must never
    /// stop a run; [`EvalPipeline::disk_cache_active`] reports whether the
    /// tier actually engaged.
    pub fn new(eval: EvalConfig) -> Self {
        let cache = eval.build_cache.then(|| match &eval.disk_cache_dir {
            Some(dir) => BuildCache::with_disk(dir, eval.disk_cache_budget)
                .unwrap_or_else(|_| BuildCache::new()),
            None => BuildCache::new(),
        });
        EvalPipeline { eval, cache }
    }

    /// Did the persistent disk tier requested by
    /// [`EvalConfig::disk_cache_dir`] actually open? (False when no dir was
    /// configured, the cache is disabled, or the directory was unusable.)
    pub fn disk_cache_active(&self) -> bool {
        self.cache.as_ref().is_some_and(|c| c.disk.is_some())
    }

    pub fn eval(&self) -> &EvalConfig {
        &self.eval
    }

    /// Cache counters (all-zero when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(BuildCache::stats)
            .unwrap_or_default()
    }

    /// Run one sample: start an attempt on `backend`, translate with the
    /// technique, then evaluate both scorings through the (cached) build +
    /// run pipeline.
    pub fn run_sample(
        &self,
        task: &Task,
        technique: Technique,
        model: &ModelProfile,
        backend: &dyn TranslationBackend,
        seed: u64,
        sample: u32,
    ) -> SampleResult {
        // The registry serves the repo as a shared handle — no per-sample
        // deep clone — and a task whose source model the app does not
        // implement becomes a typed infeasible result, not a panic.
        let source_repo = match task.app.repo_arc(task.pair.from) {
            Ok(repo) => repo,
            Err(err) => {
                return SampleResult {
                    feasible: false,
                    failure_reason: Some(err.to_string()),
                    code_only: None,
                    overall: None,
                    tokens: pareval_llm::TokenUsage::default(),
                    rounds: Vec::new(),
                    analysis: Vec::new(),
                }
            }
        };
        let spec = AttemptSpec {
            model,
            technique,
            pair: task.pair,
            app_name: &task.app.name,
            source_repo: Arc::clone(&source_repo),
            seed,
            sample,
        };
        let mut attempt = backend.start_attempt(&spec);
        let job = TranslationJob {
            app_name: &task.app.name,
            binary: &task.app.binary,
            source_repo: &source_repo,
            pair: task.pair,
            cli_spec: &task.app.cli_spec,
            build_spec: &task.app.build_spec,
        };
        let run_result = translate_with(technique, &job, &mut attempt);
        let Some(mut repo) = run_result.repo else {
            return SampleResult {
                feasible: false,
                failure_reason: run_result.failure,
                code_only: None,
                overall: None,
                tokens: attempt.usage(),
                rounds: Vec::new(),
                analysis: Vec::new(),
            };
        };

        let mut overall = self.evaluate(task, &repo);
        let mut code_only = self.code_only_outcome(task, &repo, &overall);
        // The post-build verdict stage: static race/directive analysis of
        // the translated repository (always empty with the analyzer off).
        let mut analysis = self.analyze(task, &repo);

        // A sample needs repair while the Overall build is broken, or —
        // with the analyzer on — while it builds but carries race errors.
        // With the analyzer off the second arm is vacuous and the loop
        // behaves exactly as before.
        fn needs_repair(overall: &EvalOutcome, analysis: &[AnalysisFinding]) -> bool {
            !overall.built || analysis.iter().any(|f| f.is_error())
        }

        // The repair loop: while budget remains and the sample needs
        // repair, summarize the failure into a RepairContext, re-invoke the
        // attempt, overlay its revised files, and re-evaluate — every round
        // through the same build cache (a round that re-emits unchanged
        // files is a pure cache hit). Rounds snapshot both scorings and the
        // cumulative token usage, so collectors can report build@1/pass@1
        // and token cost as a function of repair round.
        let mut rounds = Vec::new();
        if self.eval.repair_budget > 0 && needs_repair(&overall, &analysis) {
            rounds.push(RepairRound {
                round: 0,
                gave_up: false,
                code_only: code_only.clone(),
                overall: overall.clone(),
                tokens: attempt.usage(),
            });
            for round in 1..=self.eval.repair_budget {
                let mut ctx = repair_context(&overall, round, self.eval.repair_diag_lines);
                let race: Vec<String> = analysis
                    .iter()
                    .filter(|f| f.is_error())
                    .map(AnalysisFinding::render)
                    .collect();
                if !race.is_empty() && !ctx.categories.contains(&ErrorCategory::OmpInvalidDirective)
                {
                    ctx.categories.push(ErrorCategory::OmpInvalidDirective);
                }
                ctx.race_findings = race;
                // Guided repair: hand the backend the analyzer's
                // high-confidence error fix-its plus the current text of
                // every file they target, so it can apply them
                // deterministically instead of regenerating.
                if self.eval.repair_guided {
                    ctx.fixits = analysis
                        .iter()
                        .filter(|f| f.is_error() && f.confidence == Confidence::High)
                        .filter_map(|f| f.fixit.clone())
                        .collect();
                    let mut targets: Vec<&str> =
                        ctx.fixits.iter().map(|fx| fx.file.as_str()).collect();
                    targets.sort_unstable();
                    targets.dedup();
                    ctx.fixit_sources = targets
                        .into_iter()
                        .filter_map(|p| repo.get(p).map(|t| (p.to_string(), t.to_string())))
                        .collect();
                }
                match attempt.repair(&ctx) {
                    RepairOutcome::GaveUp => {
                        rounds.push(RepairRound {
                            round,
                            gave_up: true,
                            code_only: code_only.clone(),
                            overall: overall.clone(),
                            tokens: attempt.usage(),
                        });
                        break;
                    }
                    RepairOutcome::Revised(files) => {
                        // An empty revision (every fix attempt discarded)
                        // leaves the repo byte-identical, so re-evaluating
                        // would rebuild the same outcome; reuse it.
                        if !files.is_empty() {
                            for (p, c) in files {
                                repo.add(p, c);
                            }
                            overall = self.evaluate(task, &repo);
                            code_only = self.code_only_outcome(task, &repo, &overall);
                            analysis = self.analyze(task, &repo);
                        }
                        rounds.push(RepairRound {
                            round,
                            gave_up: false,
                            code_only: code_only.clone(),
                            overall: overall.clone(),
                            tokens: attempt.usage(),
                        });
                    }
                }
                if !needs_repair(&overall, &analysis) {
                    break;
                }
            }
        }

        SampleResult {
            feasible: true,
            failure_reason: None,
            code_only: Some(code_only),
            overall: Some(overall),
            tokens: attempt.usage(),
            rounds,
            analysis,
        }
    }

    /// The analyzer verdict for `repo`, memoized by the same content key as
    /// build outcomes when a cache is enabled. Always empty with
    /// [`EvalConfig::analyze`] off; otherwise sorted findings, truncated to
    /// [`EvalConfig::analyze_max_findings`].
    fn analyze(&self, task: &Task, repo: &SourceRepo) -> Vec<AnalysisFinding> {
        if !self.eval.analyze {
            return Vec::new();
        }
        let cached_key = self
            .cache
            .is_some()
            .then(|| BuildCache::key(task, repo, &self.eval));
        if let (Some(cache), Some(key)) = (&self.cache, cached_key) {
            if let Some(hit) = cache.analysis.read().get(&key).cloned() {
                return hit;
            }
        }
        let mut findings = minihpc_analyze::analyze_repo(repo);
        findings.truncate(self.eval.analyze_max_findings);
        if let (Some(cache), Some(key)) = (&self.cache, cached_key) {
            cache.analysis.write().insert(key, findings.clone());
        }
        findings
    }

    /// Code-only scoring of `translated`: swap in the ground-truth build
    /// file. When the translated build file already matches it, the rebuilt
    /// repo hashes to the same key and the Overall evaluation is reused
    /// wholesale.
    fn code_only_outcome(
        &self,
        task: &Task,
        translated: &SourceRepo,
        overall: &EvalOutcome,
    ) -> EvalOutcome {
        match task.app.ground_truth_build.get(&task.pair.to) {
            Some((gt_path, gt_text)) => {
                let mut repo = SourceRepo::new();
                for (p, c) in translated.iter() {
                    if !FileKind::of(p).is_build_file() {
                        repo.add(p, c);
                    }
                }
                repo.add(gt_path.clone(), gt_text.clone());
                self.evaluate(task, &repo)
            }
            None => overall.clone(),
        }
    }

    /// Build + run the app's tests + enforce the paper's correctness
    /// criteria, through the cache when one is enabled.
    pub fn evaluate(&self, task: &Task, repo: &SourceRepo) -> EvalOutcome {
        let Some(cache) = &self.cache else {
            return evaluate_uncached(task, repo, &self.eval);
        };
        let key = BuildCache::key(task, repo, &self.eval);
        if let Some(hit) = cache.lookup(key) {
            return hit;
        }
        let outcome = evaluate_uncached(task, repo, &self.eval);
        cache.insert(key, outcome.clone());
        outcome
    }

    /// Execute one sample spec of `plan` through this pipeline, with the
    /// backend the plan resolved for the spec's cell.
    ///
    /// A panic inside the sample (a buggy backend, a substrate assertion)
    /// is re-raised with the offending [`CellKey`](crate::plan::CellKey)
    /// and sample index attached, so a crashed grid run names the one
    /// configuration to replay instead of "a worker panicked somewhere".
    /// The run still aborts — every runner propagates the panic out of its
    /// thread scope.
    pub fn execute(&self, plan: &ExperimentPlan, spec: &SampleSpec) -> SampleRecord {
        let cell = &plan.cells()[spec.cell];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_sample(
                plan.task_of(cell),
                cell.key.technique,
                plan.model_of(cell),
                plan.backend_of(cell),
                plan.seed(),
                spec.sample_index,
            )
        }));
        let result = match result {
            Ok(result) => result,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                // panic_any (not resume_unwind) so the panic hook runs and
                // the enriched message reaches stderr in real runs, not
                // just #[should_panic] payload matching.
                std::panic::panic_any(format!(
                    "sample {} of cell {:?} panicked: {msg}",
                    spec.sample_index, cell.key
                ));
            }
        };
        SampleRecord {
            key: cell.key,
            sample_index: spec.sample_index,
            result,
        }
    }
}

/// Best-effort rendering of a caught panic payload (`panic!` produces a
/// `&str` or a `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Summarize a failed build's categorized diagnostics into the structured
/// feedback one repair round receives: distinct categories and files in
/// first-occurrence order, plus the first `max_lines` rendered lines.
fn repair_context(outcome: &EvalOutcome, round: u32, max_lines: usize) -> RepairContext {
    let mut categories = Vec::new();
    let mut files = Vec::new();
    for d in &outcome.error_diagnostics {
        if !categories.contains(&d.category) {
            categories.push(d.category);
        }
        if !files.contains(&d.file) {
            files.push(d.file.clone());
        }
    }
    let diagnostics = outcome
        .error_diagnostics
        .iter()
        .take(max_lines)
        .map(|d| d.to_string())
        .collect();
    RepairContext {
        round,
        categories,
        files,
        diagnostics,
        race_findings: Vec::new(),
        fixits: Vec::new(),
        fixit_sources: Vec::new(),
    }
}

/// The cold path: build, enforce the target-model rule, run the developer
/// tests (right answers, on the specified hardware).
fn evaluate_uncached(task: &Task, repo: &SourceRepo, eval: &EvalConfig) -> EvalOutcome {
    let outcome = build_repo(repo, &BuildRequest::new(&*task.app.binary));
    let build_log = outcome.log.text();
    let Some(exe) = outcome.executable else {
        return EvalOutcome {
            built: false,
            passed: false,
            error_category: outcome.log.first_error_category(),
            build_log,
            error_diagnostics: outcome.log.errors().cloned().collect(),
        };
    };
    // Target-model check: the translation must actually use the requested
    // programming model.
    if !exe.usage.conforms_to(task.pair.to) {
        return EvalOutcome {
            built: true,
            passed: false,
            error_category: None,
            build_log,
            error_diagnostics: Vec::new(),
        };
    }
    let mut passed = true;
    for case in task.app.tests.iter().take(eval.max_cases) {
        let expected = task.app.expected_output(case);
        let mut cfg = RunConfig::with_args(case.args.iter().cloned());
        cfg.max_steps = eval.max_steps;
        let r = run(&exe, cfg);
        let ok = r.error.is_none()
            && r.exit_code == 0
            && r.stdout == expected
            && (!task.pair.to.is_gpu() || r.telemetry.ran_on_device());
        if !ok {
            passed = false;
            break;
        }
    }
    EvalOutcome {
        built: true,
        passed,
        error_category: None,
        build_log,
        error_diagnostics: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::all_tasks;
    use minihpc_lang::model::TranslationPair;
    use pareval_llm::{model_by_name, OracleBackend, SimulatedBackend};

    fn eval_config() -> EvalConfig {
        EvalConfig {
            max_cases: 1,
            ..EvalConfig::default()
        }
    }

    fn task_named(app: &str, pair: TranslationPair) -> Task {
        all_tasks()
            .into_iter()
            .find(|t| t.app.name == app && t.pair == pair)
            .unwrap()
    }

    #[test]
    fn o4_mini_sample_round_trips() {
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let pipeline = EvalPipeline::new(eval_config());
        let model = model_by_name("o4-mini").unwrap();
        let mut any_pass = false;
        for s in 0..6 {
            let r = pipeline.run_sample(
                &task,
                Technique::NonAgentic,
                &model,
                &SimulatedBackend,
                7,
                s,
            );
            assert!(r.feasible);
            let code = r.code_only.unwrap();
            // Code-only pass implies code-only build.
            assert!(!code.passed || code.built);
            any_pass |= code.passed;
        }
        assert!(any_pass, "o4-mini should pass nanoXOR sometimes (0.84)");
    }

    #[test]
    fn infeasible_cell_reports_reason() {
        let task = task_named("XSBench", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let model = model_by_name("gemini-1.5-flash").unwrap();
        let pipeline = EvalPipeline::new(EvalConfig::default());
        let r = pipeline.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        assert!(!r.feasible);
        assert!(r.failure_reason.unwrap().contains("context"));
    }

    #[test]
    fn cache_hit_is_identical_to_cold_evaluation() {
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let model = model_by_name("o4-mini").unwrap();
        let cached = EvalPipeline::new(eval_config());
        let uncached = EvalPipeline::new(EvalConfig {
            build_cache: false,
            ..eval_config()
        });
        let cold = uncached.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        let warm = cached.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        let hot = cached.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        assert_eq!(cold, warm);
        assert_eq!(cold, hot);
        let stats = cached.cache_stats();
        assert!(stats.hits >= 2, "second run must hit: {stats:?}");
        assert_eq!(uncached.cache_stats(), CacheStats::default());
    }

    #[test]
    fn oracle_samples_are_served_from_cache_after_the_first() {
        // Oracle output is sample-independent, so the second sample's two
        // scorings both hash to repos the first already evaluated: every
        // lookup after the first sample is a hit.
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let model = model_by_name("o4-mini").unwrap();
        let pipeline = EvalPipeline::new(eval_config());
        let a = pipeline.run_sample(&task, Technique::NonAgentic, &model, &OracleBackend, 7, 0);
        let b = pipeline.run_sample(&task, Technique::NonAgentic, &model, &OracleBackend, 7, 1);
        assert!(a.code_only.as_ref().unwrap().passed);
        assert!(a.overall.as_ref().unwrap().passed);
        assert_eq!(a.code_only, b.code_only);
        assert_eq!(a.overall, b.overall);
        let stats = pipeline.cache_stats();
        assert_eq!(
            stats,
            CacheStats {
                hits: 2,
                misses: 2,
                ..CacheStats::default()
            },
            "sample 1 must be pure hits"
        );
    }

    #[test]
    fn distinct_repos_do_not_collide() {
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let a = task.app.repo(task.pair.from).unwrap().clone();
        let mut b = a.clone();
        let main = b.iter().map(|(p, _)| p.to_string()).next().unwrap();
        let text = format!("{}\n", b.get(&main).unwrap());
        b.add(main, text);
        let eval = eval_config();
        assert_ne!(
            BuildCache::key(&task, &a, &eval),
            BuildCache::key(&task, &b, &eval)
        );
    }
}
