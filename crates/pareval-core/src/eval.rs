//! The evaluation pipeline: backend attempt → technique → build → run →
//! score — plus bounded repair rounds on failed builds — with a
//! content-addressed build cache shared across runner workers.
//!
//! When [`EvalConfig::repair_budget`] > 0 and the Overall build fails, the
//! pipeline summarizes the categorized diagnostics into a
//! [`pareval_llm::RepairContext`], calls [`pareval_llm::Attempt::repair`],
//! overlays the revised files, and re-evaluates (both scorings) — looping
//! until the build succeeds, the attempt gives up, or the budget is spent.
//! Every round's evaluation goes through the same build cache, and every
//! round's outcome and cumulative token cost is retained in
//! [`SampleResult::rounds`](crate::task::SampleResult::rounds) so reports
//! can plot quality as a function of repair round.
//!
//! [`EvalPipeline`] replaces the free `run_sample`/`evaluate` functions of
//! the pre-backend harness. It owns the [`EvalConfig`] knobs plus a
//! [`BuildCache`] keyed by the content hash of the evaluated repository
//! (and everything else that determines the outcome: binary, app, target
//! model, eval knobs), so:
//!
//! - the Code-only scoring reuses the Overall build whenever the translated
//!   build file already matches ground truth (the two repos are then
//!   identical, hence the same key), and
//! - [`ScheduledRunner`](crate::sched::ScheduledRunner) workers share hits
//!   across threads — the cache sits behind a `parking_lot` lock and one
//!   pipeline serves the whole run.
//!
//! A cache hit returns a clone of the stored [`EvalOutcome`]; since the
//! build + run substrate is deterministic, a hit is byte-identical to the
//! cold evaluation it replaced (`tests/backends.rs` proves this by
//! property test, `tests/determinism.rs` end to end).

use crate::plan::{ExperimentPlan, SampleSpec};
use crate::runner::SampleRecord;
use crate::task::{EvalConfig, EvalOutcome, RepairRound, SampleResult, Task};
use minihpc_build::{build_repo, BuildRequest};
use minihpc_lang::repo::{FileKind, SourceRepo};
use minihpc_runtime::{run, RunConfig};
use pareval_llm::{AttemptSpec, ModelProfile, RepairContext, RepairOutcome, TranslationBackend};
use pareval_translate::techniques::{translate_with, TranslationJob};
use pareval_translate::Technique;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// 128-bit FNV-1a, the content-address of the cache. Stable across runs
/// and platforms (unlike `std`'s randomized hasher) and wide enough that
/// collisions are not a practical concern.
#[derive(Debug, Clone, Copy)]
struct ContentHash(u128);

impl ContentHash {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Self {
        ContentHash(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        // Field separator so ("ab", "c") and ("a", "bc") differ.
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }
}

/// Hit/miss counters of a [`BuildCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A content-addressed memo of build + run outcomes.
///
/// Thread-safe: lookups take a read lock, inserts a write lock, so workers
/// of a parallel runner serve each other's hits. Two threads racing on the
/// same cold key may both evaluate; the substrate is deterministic, so
/// whichever insert lands last stores the same outcome.
#[derive(Debug, Default)]
pub struct BuildCache {
    map: RwLock<HashMap<u128, EvalOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BuildCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// The full outcome key: repo content plus every input that changes
    /// what `evaluate` returns for it.
    fn key(task: &Task, repo: &SourceRepo, eval: &EvalConfig) -> u128 {
        // Destructure exhaustively: adding an `EvalConfig` field refuses to
        // compile until it is hashed below or explicitly exempted, so a new
        // knob can never silently alias cache entries.
        let EvalConfig {
            max_cases,
            max_steps,
            // Gates whether a cache exists at all; it cannot alias entries.
            build_cache: _,
            repair_budget,
            repair_diag_lines,
        } = eval;
        let mut h = ContentHash::new();
        h.write(task.app.binary.as_bytes());
        h.write(task.app.name.as_bytes());
        h.write(task.pair.id().as_bytes());
        h.write(&max_cases.to_le_bytes());
        h.write(&max_steps.to_le_bytes());
        h.write(&repair_budget.to_le_bytes());
        h.write(&repair_diag_lines.to_le_bytes());
        for (path, contents) in repo.iter() {
            h.write(path.as_bytes());
            h.write(contents.as_bytes());
        }
        h.0
    }

    fn lookup(&self, key: u128) -> Option<EvalOutcome> {
        let hit = self.map.read().get(&key).cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, key: u128, outcome: EvalOutcome) {
        self.map.write().insert(key, outcome);
    }

    /// Distinct outcomes currently stored.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The sample-evaluation pipeline: owns the eval knobs and the build cache.
///
/// One pipeline serves a whole experiment run — runners construct one per
/// [`Runner::run`](crate::runner::Runner::run) call and share it across
/// workers (or accept a caller-provided one via
/// [`Runner::run_with`](crate::runner::Runner::run_with), e.g. to read
/// [`EvalPipeline::cache_stats`] afterwards).
#[derive(Debug)]
pub struct EvalPipeline {
    eval: EvalConfig,
    cache: Option<BuildCache>,
}

impl Default for EvalPipeline {
    fn default() -> Self {
        Self::new(EvalConfig::default())
    }
}

impl EvalPipeline {
    /// A pipeline with the given knobs; the cache is enabled per
    /// [`EvalConfig::build_cache`].
    pub fn new(eval: EvalConfig) -> Self {
        let cache = eval.build_cache.then(BuildCache::new);
        EvalPipeline { eval, cache }
    }

    pub fn eval(&self) -> &EvalConfig {
        &self.eval
    }

    /// Cache counters (all-zero when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(BuildCache::stats)
            .unwrap_or_default()
    }

    /// Run one sample: start an attempt on `backend`, translate with the
    /// technique, then evaluate both scorings through the (cached) build +
    /// run pipeline.
    pub fn run_sample(
        &self,
        task: &Task,
        technique: Technique,
        model: &ModelProfile,
        backend: &dyn TranslationBackend,
        seed: u64,
        sample: u32,
    ) -> SampleResult {
        // The one clone of the app's source repo for this sample; the
        // spec, the job, and the attempt all share it from here.
        let source_repo = Arc::new(
            task.app
                .repo(task.pair.from)
                .expect("task implies source repo")
                .clone(),
        );
        let spec = AttemptSpec {
            model,
            technique,
            pair: task.pair,
            app_name: task.app.name,
            source_repo: Arc::clone(&source_repo),
            seed,
            sample,
        };
        let mut attempt = backend.start_attempt(&spec);
        let job = TranslationJob {
            app_name: task.app.name,
            binary: task.app.binary,
            source_repo: &source_repo,
            pair: task.pair,
            cli_spec: &task.app.cli_spec,
            build_spec: &task.app.build_spec,
        };
        let run_result = translate_with(technique, &job, &mut attempt);
        let Some(mut repo) = run_result.repo else {
            return SampleResult {
                feasible: false,
                failure_reason: run_result.failure,
                code_only: None,
                overall: None,
                tokens: attempt.usage(),
                rounds: Vec::new(),
            };
        };

        let mut overall = self.evaluate(task, &repo);
        let mut code_only = self.code_only_outcome(task, &repo, &overall);

        // The repair loop: while budget remains and the Overall build is
        // broken, summarize the failure into a RepairContext, re-invoke the
        // attempt, overlay its revised files, and re-evaluate — every round
        // through the same build cache (a round that re-emits unchanged
        // files is a pure cache hit). Rounds snapshot both scorings and the
        // cumulative token usage, so collectors can report build@1/pass@1
        // and token cost as a function of repair round.
        let mut rounds = Vec::new();
        if self.eval.repair_budget > 0 && !overall.built {
            rounds.push(RepairRound {
                round: 0,
                gave_up: false,
                code_only: code_only.clone(),
                overall: overall.clone(),
                tokens: attempt.usage(),
            });
            for round in 1..=self.eval.repair_budget {
                let ctx = repair_context(&overall, round, self.eval.repair_diag_lines);
                match attempt.repair(&ctx) {
                    RepairOutcome::GaveUp => {
                        rounds.push(RepairRound {
                            round,
                            gave_up: true,
                            code_only: code_only.clone(),
                            overall: overall.clone(),
                            tokens: attempt.usage(),
                        });
                        break;
                    }
                    RepairOutcome::Revised(files) => {
                        // An empty revision (every fix attempt discarded)
                        // leaves the repo byte-identical, so re-evaluating
                        // would rebuild the same outcome; reuse it.
                        if !files.is_empty() {
                            for (p, c) in files {
                                repo.add(p, c);
                            }
                            overall = self.evaluate(task, &repo);
                            code_only = self.code_only_outcome(task, &repo, &overall);
                        }
                        rounds.push(RepairRound {
                            round,
                            gave_up: false,
                            code_only: code_only.clone(),
                            overall: overall.clone(),
                            tokens: attempt.usage(),
                        });
                    }
                }
                if overall.built {
                    break;
                }
            }
        }

        SampleResult {
            feasible: true,
            failure_reason: None,
            code_only: Some(code_only),
            overall: Some(overall),
            tokens: attempt.usage(),
            rounds,
        }
    }

    /// Code-only scoring of `translated`: swap in the ground-truth build
    /// file. When the translated build file already matches it, the rebuilt
    /// repo hashes to the same key and the Overall evaluation is reused
    /// wholesale.
    fn code_only_outcome(
        &self,
        task: &Task,
        translated: &SourceRepo,
        overall: &EvalOutcome,
    ) -> EvalOutcome {
        match task.app.ground_truth_build.get(&task.pair.to) {
            Some((gt_path, gt_text)) => {
                let mut repo = SourceRepo::new();
                for (p, c) in translated.iter() {
                    if !FileKind::of(p).is_build_file() {
                        repo.add(p, c);
                    }
                }
                repo.add(gt_path.clone(), gt_text.clone());
                self.evaluate(task, &repo)
            }
            None => overall.clone(),
        }
    }

    /// Build + run the app's tests + enforce the paper's correctness
    /// criteria, through the cache when one is enabled.
    pub fn evaluate(&self, task: &Task, repo: &SourceRepo) -> EvalOutcome {
        let Some(cache) = &self.cache else {
            return evaluate_uncached(task, repo, &self.eval);
        };
        let key = BuildCache::key(task, repo, &self.eval);
        if let Some(hit) = cache.lookup(key) {
            return hit;
        }
        let outcome = evaluate_uncached(task, repo, &self.eval);
        cache.insert(key, outcome.clone());
        outcome
    }

    /// Execute one sample spec of `plan` through this pipeline, with the
    /// backend the plan resolved for the spec's cell.
    ///
    /// A panic inside the sample (a buggy backend, a substrate assertion)
    /// is re-raised with the offending [`CellKey`](crate::plan::CellKey)
    /// and sample index attached, so a crashed grid run names the one
    /// configuration to replay instead of "a worker panicked somewhere".
    /// The run still aborts — every runner propagates the panic out of its
    /// thread scope.
    pub fn execute(&self, plan: &ExperimentPlan, spec: &SampleSpec) -> SampleRecord {
        let cell = &plan.cells()[spec.cell];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_sample(
                plan.task_of(cell),
                cell.key.technique,
                plan.model_of(cell),
                plan.backend_of(cell),
                plan.seed(),
                spec.sample_index,
            )
        }));
        let result = match result {
            Ok(result) => result,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                // panic_any (not resume_unwind) so the panic hook runs and
                // the enriched message reaches stderr in real runs, not
                // just #[should_panic] payload matching.
                std::panic::panic_any(format!(
                    "sample {} of cell {:?} panicked: {msg}",
                    spec.sample_index, cell.key
                ));
            }
        };
        SampleRecord {
            key: cell.key,
            sample_index: spec.sample_index,
            result,
        }
    }
}

/// Best-effort rendering of a caught panic payload (`panic!` produces a
/// `&str` or a `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Summarize a failed build's categorized diagnostics into the structured
/// feedback one repair round receives: distinct categories and files in
/// first-occurrence order, plus the first `max_lines` rendered lines.
fn repair_context(outcome: &EvalOutcome, round: u32, max_lines: usize) -> RepairContext {
    let mut categories = Vec::new();
    let mut files = Vec::new();
    for d in &outcome.error_diagnostics {
        if !categories.contains(&d.category) {
            categories.push(d.category);
        }
        if !files.contains(&d.file) {
            files.push(d.file.clone());
        }
    }
    let diagnostics = outcome
        .error_diagnostics
        .iter()
        .take(max_lines)
        .map(|d| d.to_string())
        .collect();
    RepairContext {
        round,
        categories,
        files,
        diagnostics,
    }
}

/// The cold path: build, enforce the target-model rule, run the developer
/// tests (right answers, on the specified hardware).
fn evaluate_uncached(task: &Task, repo: &SourceRepo, eval: &EvalConfig) -> EvalOutcome {
    let outcome = build_repo(repo, &BuildRequest::new(task.app.binary));
    let build_log = outcome.log.text();
    let Some(exe) = outcome.executable else {
        return EvalOutcome {
            built: false,
            passed: false,
            error_category: outcome.log.first_error_category(),
            build_log,
            error_diagnostics: outcome.log.errors().cloned().collect(),
        };
    };
    // Target-model check: the translation must actually use the requested
    // programming model.
    if !exe.usage.conforms_to(task.pair.to) {
        return EvalOutcome {
            built: true,
            passed: false,
            error_category: None,
            build_log,
            error_diagnostics: Vec::new(),
        };
    }
    let mut passed = true;
    for case in task.app.tests.iter().take(eval.max_cases) {
        let expected = task.app.expected_output(case);
        let mut cfg = RunConfig::with_args(case.args.iter().cloned());
        cfg.max_steps = eval.max_steps;
        let r = run(&exe, cfg);
        let ok = r.error.is_none()
            && r.exit_code == 0
            && r.stdout == expected
            && (!task.pair.to.is_gpu() || r.telemetry.ran_on_device());
        if !ok {
            passed = false;
            break;
        }
    }
    EvalOutcome {
        built: true,
        passed,
        error_category: None,
        build_log,
        error_diagnostics: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::all_tasks;
    use minihpc_lang::model::TranslationPair;
    use pareval_llm::{model_by_name, OracleBackend, SimulatedBackend};

    fn eval_config() -> EvalConfig {
        EvalConfig {
            max_cases: 1,
            ..EvalConfig::default()
        }
    }

    fn task_named(app: &str, pair: TranslationPair) -> Task {
        all_tasks()
            .into_iter()
            .find(|t| t.app.name == app && t.pair == pair)
            .unwrap()
    }

    #[test]
    fn o4_mini_sample_round_trips() {
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let pipeline = EvalPipeline::new(eval_config());
        let model = model_by_name("o4-mini").unwrap();
        let mut any_pass = false;
        for s in 0..6 {
            let r = pipeline.run_sample(
                &task,
                Technique::NonAgentic,
                &model,
                &SimulatedBackend,
                7,
                s,
            );
            assert!(r.feasible);
            let code = r.code_only.unwrap();
            // Code-only pass implies code-only build.
            assert!(!code.passed || code.built);
            any_pass |= code.passed;
        }
        assert!(any_pass, "o4-mini should pass nanoXOR sometimes (0.84)");
    }

    #[test]
    fn infeasible_cell_reports_reason() {
        let task = task_named("XSBench", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let model = model_by_name("gemini-1.5-flash").unwrap();
        let pipeline = EvalPipeline::new(EvalConfig::default());
        let r = pipeline.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        assert!(!r.feasible);
        assert!(r.failure_reason.unwrap().contains("context"));
    }

    #[test]
    fn cache_hit_is_identical_to_cold_evaluation() {
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let model = model_by_name("o4-mini").unwrap();
        let cached = EvalPipeline::new(eval_config());
        let uncached = EvalPipeline::new(EvalConfig {
            build_cache: false,
            ..eval_config()
        });
        let cold = uncached.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        let warm = cached.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        let hot = cached.run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            &SimulatedBackend,
            7,
            0,
        );
        assert_eq!(cold, warm);
        assert_eq!(cold, hot);
        let stats = cached.cache_stats();
        assert!(stats.hits >= 2, "second run must hit: {stats:?}");
        assert_eq!(uncached.cache_stats(), CacheStats::default());
    }

    #[test]
    fn oracle_samples_are_served_from_cache_after_the_first() {
        // Oracle output is sample-independent, so the second sample's two
        // scorings both hash to repos the first already evaluated: every
        // lookup after the first sample is a hit.
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let model = model_by_name("o4-mini").unwrap();
        let pipeline = EvalPipeline::new(eval_config());
        let a = pipeline.run_sample(&task, Technique::NonAgentic, &model, &OracleBackend, 7, 0);
        let b = pipeline.run_sample(&task, Technique::NonAgentic, &model, &OracleBackend, 7, 1);
        assert!(a.code_only.as_ref().unwrap().passed);
        assert!(a.overall.as_ref().unwrap().passed);
        assert_eq!(a.code_only, b.code_only);
        assert_eq!(a.overall, b.overall);
        let stats = pipeline.cache_stats();
        assert_eq!(
            stats,
            CacheStats { hits: 2, misses: 2 },
            "sample 1 must be pure hits"
        );
    }

    #[test]
    fn distinct_repos_do_not_collide() {
        let task = task_named("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
        let a = task.app.repo(task.pair.from).unwrap().clone();
        let mut b = a.clone();
        let main = b.iter().map(|(p, _)| p.to_string()).next().unwrap();
        let text = format!("{}\n", b.get(&main).unwrap());
        b.add(main, text);
        let eval = eval_config();
        assert_ne!(
            BuildCache::key(&task, &a, &eval),
            BuildCache::key(&task, &b, &eval)
        );
    }
}
