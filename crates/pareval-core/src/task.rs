//! Translation tasks and the per-sample result/config types.
//!
//! Sample *execution* lives in [`crate::eval::EvalPipeline`]; this module
//! defines what a task is and what evaluating one sample produces.

use minihpc_build::ErrorCategory;
use minihpc_lang::model::TranslationPair;
use pareval_apps::Application;
use pareval_llm::TokenUsage;

/// One of the sixteen translation tasks (paper Sec. 5.2).
#[derive(Debug, Clone)]
pub struct Task {
    pub app: Application,
    pub pair: TranslationPair,
}

impl Task {
    pub fn id(&self) -> String {
        format!("{}:{}", self.app.name, self.pair.id())
    }
}

/// Enumerate all sixteen tasks in (pair, app) order.
pub fn all_tasks() -> Vec<Task> {
    let mut out = Vec::new();
    for pair in TranslationPair::ALL {
        for app in pareval_apps::suite() {
            if app.repo(pair.from).is_some() {
                out.push(Task { app, pair });
            }
        }
    }
    out
}

/// Scoring configuration (paper Sec. 8.2): "Overall" uses the LLM-translated
/// build system; "Code-only" swaps in the authors' ground-truth build file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scoring {
    CodeOnly,
    Overall,
}

impl Scoring {
    pub const ALL: [Scoring; 2] = [Scoring::CodeOnly, Scoring::Overall];

    /// The paper's label for this scoring, as printed in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Scoring::CodeOnly => "Code-only",
            Scoring::Overall => "Overall",
        }
    }
}

/// Outcome of evaluating one translated repository under one scoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    pub built: bool,
    pub passed: bool,
    pub error_category: Option<ErrorCategory>,
    pub build_log: String,
}

/// Outcome of one full sample (one generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleResult {
    /// `None` when the configuration could not run (context/budget).
    pub feasible: bool,
    pub failure_reason: Option<String>,
    pub code_only: Option<EvalOutcome>,
    pub overall: Option<EvalOutcome>,
    pub tokens: TokenUsage,
}

/// Evaluation knobs.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// How many of the app's developer test cases to run (the full suite is
    /// the default; benches shrink this for wall-clock).
    pub max_cases: usize,
    pub max_steps: u64,
    /// Memoize build + run outcomes by repository content hash (see
    /// [`crate::eval::BuildCache`]). On by default; results are
    /// byte-identical either way, this is purely a wall-clock knob.
    pub build_cache: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_cases: usize::MAX,
            max_steps: 200_000_000,
            build_cache: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_tasks() {
        assert_eq!(all_tasks().len(), 16);
    }
}
