//! Translation tasks and single-sample evaluation.

use minihpc_build::{build_repo, BuildRequest, ErrorCategory};
use minihpc_lang::model::TranslationPair;
use minihpc_lang::repo::{FileKind, SourceRepo};
use minihpc_runtime::{run, RunConfig};
use pareval_apps::Application;
use pareval_llm::{ModelProfile, SimulatedModel, TokenUsage};
use pareval_translate::techniques::{translate_with, TranslationJob};
use pareval_translate::Technique;

/// One of the sixteen translation tasks (paper Sec. 5.2).
#[derive(Debug, Clone)]
pub struct Task {
    pub app: Application,
    pub pair: TranslationPair,
}

impl Task {
    pub fn id(&self) -> String {
        format!("{}:{}", self.app.name, self.pair.id())
    }
}

/// Enumerate all sixteen tasks in (pair, app) order.
pub fn all_tasks() -> Vec<Task> {
    let mut out = Vec::new();
    for pair in TranslationPair::ALL {
        for app in pareval_apps::suite() {
            if app.repo(pair.from).is_some() {
                out.push(Task { app, pair });
            }
        }
    }
    out
}

/// Scoring configuration (paper Sec. 8.2): "Overall" uses the LLM-translated
/// build system; "Code-only" swaps in the authors' ground-truth build file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scoring {
    CodeOnly,
    Overall,
}

impl Scoring {
    pub const ALL: [Scoring; 2] = [Scoring::CodeOnly, Scoring::Overall];

    /// The paper's label for this scoring, as printed in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Scoring::CodeOnly => "Code-only",
            Scoring::Overall => "Overall",
        }
    }
}

/// Outcome of evaluating one translated repository under one scoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    pub built: bool,
    pub passed: bool,
    pub error_category: Option<ErrorCategory>,
    pub build_log: String,
}

/// Outcome of one full sample (one generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleResult {
    /// `None` when the configuration could not run (context/budget).
    pub feasible: bool,
    pub failure_reason: Option<String>,
    pub code_only: Option<EvalOutcome>,
    pub overall: Option<EvalOutcome>,
    pub tokens: TokenUsage,
}

/// Evaluation knobs.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// How many of the app's developer test cases to run (the full suite is
    /// the default; benches shrink this for wall-clock).
    pub max_cases: usize,
    pub max_steps: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_cases: usize::MAX,
            max_steps: 200_000_000,
        }
    }
}

/// Run one sample: translate with the simulated model, then evaluate both
/// scorings through the real build + run pipeline.
pub fn run_sample(
    task: &Task,
    technique: Technique,
    model: &ModelProfile,
    seed: u64,
    sample: u32,
    eval: &EvalConfig,
) -> SampleResult {
    let source_repo = task
        .app
        .repo(task.pair.from)
        .expect("task implies source repo")
        .clone();
    let mut backend = SimulatedModel::new(
        model.clone(),
        technique,
        task.pair,
        task.app.name,
        source_repo.clone(),
        seed,
        sample,
    );
    let job = TranslationJob {
        app_name: task.app.name,
        binary: task.app.binary,
        source_repo: &source_repo,
        pair: task.pair,
        cli_spec: &task.app.cli_spec,
        build_spec: &task.app.build_spec,
    };
    let run_result = translate_with(technique, &job, &mut backend);
    let tokens = backend.usage();
    let Some(translated) = run_result.repo else {
        return SampleResult {
            feasible: false,
            failure_reason: run_result.failure,
            code_only: None,
            overall: None,
            tokens,
        };
    };

    let overall = evaluate(task, &translated, eval);
    // Code-only: swap in the ground-truth build file.
    let code_only = match task.app.ground_truth_build.get(&task.pair.to) {
        Some((gt_path, gt_text)) => {
            let mut repo = SourceRepo::new();
            for (p, c) in translated.iter() {
                if !FileKind::of(p).is_build_file() {
                    repo.add(p, c);
                }
            }
            repo.add(gt_path.clone(), gt_text.clone());
            evaluate(task, &repo, eval)
        }
        None => overall.clone(),
    };

    SampleResult {
        feasible: true,
        failure_reason: None,
        code_only: Some(code_only),
        overall: Some(overall),
        tokens,
    }
}

/// Build + run the app's tests + enforce the paper's correctness criteria
/// (right answers, requested model, executes on the specified hardware).
pub fn evaluate(task: &Task, repo: &SourceRepo, eval: &EvalConfig) -> EvalOutcome {
    let outcome = build_repo(repo, &BuildRequest::new(task.app.binary));
    let build_log = outcome.log.text();
    let Some(exe) = outcome.executable else {
        return EvalOutcome {
            built: false,
            passed: false,
            error_category: outcome.log.first_error_category(),
            build_log,
        };
    };
    // Target-model check: the translation must actually use the requested
    // programming model.
    if !exe.usage.conforms_to(task.pair.to) {
        return EvalOutcome {
            built: true,
            passed: false,
            error_category: None,
            build_log,
        };
    }
    let mut passed = true;
    for case in task.app.tests.iter().take(eval.max_cases) {
        let expected = task.app.expected_output(case);
        let mut cfg = RunConfig::with_args(case.args.iter().cloned());
        cfg.max_steps = eval.max_steps;
        let r = run(&exe, cfg);
        let ok = r.error.is_none()
            && r.exit_code == 0
            && r.stdout == expected
            && (!task.pair.to.is_gpu() || r.telemetry.ran_on_device());
        if !ok {
            passed = false;
            break;
        }
    }
    EvalOutcome {
        built: true,
        passed,
        error_category: None,
        build_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareval_llm::model_by_name;

    #[test]
    fn sixteen_tasks() {
        assert_eq!(all_tasks().len(), 16);
    }

    #[test]
    fn o4_mini_sample_round_trips() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.app.name == "nanoXOR" && t.pair == TranslationPair::CUDA_TO_OMP_OFFLOAD)
            .unwrap();
        let eval = EvalConfig {
            max_cases: 1,
            ..EvalConfig::default()
        };
        let model = model_by_name("o4-mini").unwrap();
        let mut any_pass = false;
        for s in 0..6 {
            let r = run_sample(&task, Technique::NonAgentic, &model, 7, s, &eval);
            assert!(r.feasible);
            let code = r.code_only.unwrap();
            // Code-only pass implies code-only build.
            assert!(!code.passed || code.built);
            any_pass |= code.passed;
        }
        assert!(any_pass, "o4-mini should pass nanoXOR sometimes (0.84)");
    }

    #[test]
    fn infeasible_cell_reports_reason() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.app.name == "XSBench" && t.pair == TranslationPair::CUDA_TO_OMP_OFFLOAD)
            .unwrap();
        let model = model_by_name("gemini-1.5-flash").unwrap();
        let r = run_sample(
            &task,
            Technique::NonAgentic,
            &model,
            7,
            0,
            &EvalConfig::default(),
        );
        assert!(!r.feasible);
        assert!(r.failure_reason.unwrap().contains("context"));
    }
}
