//! Translation tasks and the per-sample result/config types.
//!
//! Sample *execution* lives in [`crate::eval::EvalPipeline`]; this module
//! defines what a task is and what evaluating one sample produces.

use minihpc_analyze::AnalysisFinding;
use minihpc_build::{Diagnostic, ErrorCategory};
use minihpc_lang::model::TranslationPair;
use pareval_apps::Application;
use pareval_llm::TokenUsage;

/// One of the sixteen translation tasks (paper Sec. 5.2).
#[derive(Debug, Clone)]
pub struct Task {
    pub app: Application,
    pub pair: TranslationPair,
}

impl Task {
    pub fn id(&self) -> String {
        format!("{}:{}", self.app.name, self.pair.id())
    }
}

/// Enumerate all sixteen tasks in (pair, app) order.
pub fn all_tasks() -> Vec<Task> {
    let mut out = Vec::new();
    for pair in TranslationPair::ALL {
        for app in pareval_apps::suite() {
            if app.repo(pair.from).is_some() {
                out.push(Task { app, pair });
            }
        }
    }
    out
}

/// Scoring configuration (paper Sec. 8.2): "Overall" uses the LLM-translated
/// build system; "Code-only" swaps in the authors' ground-truth build file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scoring {
    CodeOnly,
    Overall,
}

impl Scoring {
    pub const ALL: [Scoring; 2] = [Scoring::CodeOnly, Scoring::Overall];

    /// The paper's label for this scoring, as printed in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Scoring::CodeOnly => "Code-only",
            Scoring::Overall => "Overall",
        }
    }
}

/// Outcome of evaluating one translated repository under one scoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    pub built: bool,
    pub passed: bool,
    pub error_category: Option<ErrorCategory>,
    pub build_log: String,
    /// The structured error diagnostics of a failed build (empty when the
    /// build succeeded) — what the repair loop summarizes into a
    /// [`pareval_llm::RepairContext`] instead of re-parsing the log text.
    pub error_diagnostics: Vec<Diagnostic>,
}

/// Outcome of one repair round of one sample (see
/// [`EvalConfig::repair_budget`]). Round entries exist only when the repair
/// loop engaged: entry 0 snapshots the pre-repair state, entry `i` the
/// state after repair round `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairRound {
    /// 0 for the pre-repair snapshot, then the 1-based repair round.
    pub round: u32,
    /// The attempt declined this round: no files were emitted and no
    /// re-evaluation ran (the outcomes repeat the previous round's).
    pub gave_up: bool,
    pub code_only: EvalOutcome,
    pub overall: EvalOutcome,
    /// Cumulative attempt token usage as of the end of this round — repair
    /// tokens count toward E_kappa (paper Eq. 2).
    pub tokens: TokenUsage,
}

/// Outcome of one full sample (one generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleResult {
    /// `None` when the configuration could not run (context/budget).
    pub feasible: bool,
    pub failure_reason: Option<String>,
    /// Final outcome under each scoring (post-repair when rounds ran).
    pub code_only: Option<EvalOutcome>,
    pub overall: Option<EvalOutcome>,
    /// Total attempt usage including every repair round.
    pub tokens: TokenUsage,
    /// Per-round trajectory; empty unless a failed build met a non-zero
    /// [`EvalConfig::repair_budget`].
    pub rounds: Vec<RepairRound>,
    /// Static analyzer findings over the final translated repository; always
    /// empty unless [`EvalConfig::analyze`] is on. A sample counts as
    /// race-free for `race_free@k` when it built and no finding is an error.
    pub analysis: Vec<AnalysisFinding>,
}

impl SampleResult {
    /// Did this sample build with no analyzer *error* findings? (Warnings
    /// are advisory and do not disqualify.) Meaningful only under
    /// [`EvalConfig::analyze`]; with the analyzer off this equals "built".
    pub fn race_free(&self) -> bool {
        self.overall.as_ref().is_some_and(|o| o.built)
            && !self.analysis.iter().any(|f| f.is_error())
    }
}

/// Evaluation knobs.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// How many of the app's developer test cases to run (the full suite is
    /// the default; benches shrink this for wall-clock).
    pub max_cases: usize,
    pub max_steps: u64,
    /// Memoize build + run outcomes by repository content hash (see
    /// [`crate::eval::BuildCache`]). On by default; results are
    /// byte-identical either way, this is purely a wall-clock knob.
    pub build_cache: bool,
    /// File-granular caching inside the build: memoize per-file compile
    /// units (parse + sema + object) by include-closure content, so a
    /// re-evaluation after a repair round recompiles only changed files
    /// and re-runs only the link + test stage. Requires
    /// [`EvalConfig::build_cache`]; on by default. Like `build_cache`
    /// this is purely a wall-clock knob — the build substrate is
    /// deterministic, so results are byte-identical either way.
    pub file_cache: bool,
    /// Maximum repair rounds after a failed build: the pipeline summarizes
    /// the build log into a [`pareval_llm::RepairContext`], re-invokes the
    /// attempt, and re-evaluates, until the build succeeds, the attempt
    /// gives up, or the budget is spent. 0 (the default) reproduces the
    /// paper's one-shot harness exactly.
    pub repair_budget: u32,
    /// How many diagnostic lines of the failed build each repair round's
    /// context carries (the model's feedback prompt budget).
    pub repair_diag_lines: usize,
    /// Directory of the persistent disk tier of the
    /// [`crate::eval::BuildCache`]. `None` (the default) keeps the cache
    /// purely in-memory, dying with the process; `Some(dir)` makes build +
    /// run outcomes survive crashes and lets concurrent grid runs share
    /// builds across processes. Like [`EvalConfig::build_cache`] this is
    /// purely a wall-clock knob — results are byte-identical either way.
    pub disk_cache_dir: Option<std::path::PathBuf>,
    /// Byte budget of the disk tier: least-recently-used entries are
    /// evicted once the stored entries exceed it.
    pub disk_cache_budget: u64,
    /// Run the static race/directive analyzer (`minihpc-analyze`) over the
    /// final translated repository as a post-build verdict stage. Off by
    /// default: default-config journals, golden reports, and cache keys are
    /// byte-identical to an analyzer-free build.
    pub analyze: bool,
    /// Cap on retained analyzer findings per sample (journal/report size
    /// guard; the analyzer itself is not truncated mid-file, the finding
    /// list is).
    pub analyze_max_findings: usize,
    /// Analyzer-guided repair: repair rounds carry the analyzer's
    /// high-confidence fix-its (with current file text) so backends can
    /// apply the suggested edits deterministically instead of regenerating.
    /// Requires [`EvalConfig::analyze`]; off by default so default-config
    /// runs stay byte-identical to blind repair.
    pub repair_guided: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_cases: usize::MAX,
            max_steps: 200_000_000,
            build_cache: true,
            file_cache: true,
            repair_budget: 0,
            repair_diag_lines: 8,
            disk_cache_dir: None,
            disk_cache_budget: 64 << 20,
            analyze: false,
            analyze_max_findings: 64,
            repair_guided: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_tasks() {
        assert_eq!(all_tasks().len(), 16);
    }
}
