//! The Plan layer: deterministic enumeration of an experiment grid.
//!
//! An [`ExperimentPlan`] is built once (via [`ExperimentPlan::builder`]) and
//! then handed to a [`crate::runner::Runner`]. Building the plan resolves
//! everything that can be known without executing a single sample:
//!
//! - the typed [`CellKey`] of every (pair, technique, model, app) cell,
//! - each cell's plan-time *feasibility* (configurations the paper could not
//!   run — context windows, compute budget — are marked up front instead of
//!   being discovered one failed sample at a time),
//! - the flat list of [`SampleSpec`]s a runner executes, each independently
//!   seeded so they can be sharded across workers in any order.

use crate::task::{all_tasks, EvalConfig, Task};
use minihpc_lang::model::TranslationPair;
use pareval_apps::Application;
use pareval_llm::{all_models, ModelProfile, SimulatedBackend, TranslationBackend};
use pareval_translate::Technique;
use std::borrow::{Borrow, Cow};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// [`CellKey`] carries `&'static str` names so keys stay `Copy` and
/// comparisons never allocate. The hand-written suite's names are string
/// literals already; generated-app names are owned, so the first plan that
/// enumerates one leaks a deduplicated copy here. The table is global and
/// append-only: re-planning the same generated family costs nothing new,
/// and the leak is bounded by the number of *distinct* generated names in
/// the process lifetime.
// The parameter really is `&Cow`, not `&str`: the `Borrowed` arm must
// pass its `&'static str` through without touching the intern table.
#[allow(clippy::ptr_arg)]
fn intern_name(name: &Cow<'static, str>) -> &'static str {
    if let Cow::Borrowed(s) = name {
        return s;
    }
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut table = INTERNED.lock().expect("name interner poisoned");
    if let Some(s) = table.get(name.as_ref()) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.as_ref().to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

/// Typed key of one experiment cell.
///
/// Replaces the stringly `(String, String, String, String)` tuple: `Copy`,
/// `Ord` (pair, technique, model, app — the aggregation order), and lookups
/// never allocate. Model and app names are the `&'static str` interned in
/// [`ModelProfile`] / [`pareval_apps::Application`]; map lookups by
/// non-static `&str` go through [`CellQuery`] (see [`Borrow`] impl below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    pub pair: TranslationPair,
    pub technique: Technique,
    pub model: &'static str,
    pub app: &'static str,
}

/// Borrowed view of a [`CellKey`] for allocation-free map lookups with
/// arbitrary `&str` model/app names.
pub trait CellQuery {
    fn fields(&self) -> (TranslationPair, Technique, &str, &str);
}

impl CellQuery for CellKey {
    fn fields(&self) -> (TranslationPair, Technique, &str, &str) {
        (self.pair, self.technique, self.model, self.app)
    }
}

impl<'a> CellQuery for (TranslationPair, Technique, &'a str, &'a str) {
    fn fields(&self) -> (TranslationPair, Technique, &str, &str) {
        (self.0, self.1, self.2, self.3)
    }
}

impl<'a> Borrow<dyn CellQuery + 'a> for CellKey {
    fn borrow(&self) -> &(dyn CellQuery + 'a) {
        self
    }
}

impl PartialEq for dyn CellQuery + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.fields() == other.fields()
    }
}

impl Eq for dyn CellQuery + '_ {}

impl PartialOrd for dyn CellQuery + '_ {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for dyn CellQuery + '_ {
    fn cmp(&self, other: &Self) -> Ordering {
        self.fields().cmp(&other.fields())
    }
}

/// One enumerated cell of the plan: its key, indices into the plan's task,
/// model, and backend tables, and the sampling parameters resolved at plan
/// time.
#[derive(Debug, Clone)]
pub struct CellSpec {
    pub key: CellKey,
    /// Index into [`ExperimentPlan::tasks`].
    pub task: usize,
    /// Index into [`ExperimentPlan::models`].
    pub model: usize,
    /// Index into [`ExperimentPlan::backends`] — the translation backend
    /// this cell runs on (grids can mix backends per cell).
    pub backend: usize,
    /// Plan-time feasibility, as judged by the cell's backend (the default
    /// [`SimulatedBackend`] uses the paper calibration): infeasible cells
    /// get zero [`SampleSpec`]s, so a partially-run infeasible cell cannot
    /// exist.
    pub feasible: bool,
    /// Samples scheduled for this cell (0 when infeasible).
    pub samples: u32,
    /// Plan-time relative cost estimate of one sample of this cell —
    /// copied into every [`SampleSpec::cost_hint`] the cell emits.
    pub cost_hint: u32,
}

/// Plan-time relative cost estimate of one sample: the scheduling weight
/// the work-stealing runner seeds its injector with (most expensive first,
/// the classic longest-processing-time heuristic), derived from everything
/// the plan knows before a single sample runs:
///
/// - the **technique** (SWE-agent iterates until the build passes, the
///   top-down pipeline assembles dependency context, non-agentic is one
///   pass per file),
/// - the **repair budget** (a failed build can cost up to `repair_budget`
///   extra evaluate rounds, so budgeted samples have a heavier tail),
/// - the cell's **backend feasibility** (an infeasible cell costs nothing;
///   it is never scheduled).
///
/// Units are arbitrary — only the relative order matters, and mispredicted
/// hints are corrected at run time by stealing.
pub fn sample_cost_hint(technique: Technique, eval: &EvalConfig, feasible: bool) -> u32 {
    if !feasible {
        return 0;
    }
    let base = match technique {
        Technique::NonAgentic => 2,
        Technique::TopDownAgentic => 3,
        Technique::SweAgent => 5,
    };
    base * (1 + eval.repair_budget)
}

/// A declarative cell predicate for [`ExperimentPlanBuilder::backend_for`]:
/// `None` fields match anything. Plain data (not a closure) so plans and
/// builders stay `Clone + Debug`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellFilter {
    pub pair: Option<TranslationPair>,
    pub technique: Option<Technique>,
    pub model: Option<String>,
    pub app: Option<String>,
}

impl CellFilter {
    /// Matches every cell.
    pub fn any() -> Self {
        Self::default()
    }

    pub fn pair(mut self, pair: TranslationPair) -> Self {
        self.pair = Some(pair);
        self
    }

    pub fn technique(mut self, technique: Technique) -> Self {
        self.technique = Some(technique);
        self
    }

    pub fn model(mut self, model: impl Into<String>) -> Self {
        self.model = Some(model.into());
        self
    }

    pub fn app(mut self, app: impl Into<String>) -> Self {
        self.app = Some(app.into());
        self
    }

    pub fn matches(&self, key: &CellKey) -> bool {
        self.pair.is_none_or(|p| p == key.pair)
            && self.technique.is_none_or(|t| t == key.technique)
            && self.model.as_deref().is_none_or(|m| m == key.model)
            && self.app.as_deref().is_none_or(|a| a == key.app)
    }
}

/// One schedulable unit of work: a single seeded generation of one cell.
/// Samples are independent, so a runner may execute them in any order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Index into [`ExperimentPlan::cells`].
    pub cell: usize,
    pub sample_index: u32,
    /// Plan-time relative cost estimate (see [`sample_cost_hint`]): the
    /// weight [`crate::sched::ScheduledRunner`] sorts by when seeding its
    /// injector. Purely advisory — results never depend on it.
    pub cost_hint: u32,
}

/// A fully enumerated experiment: the immutable input to a runner.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    seed: u64,
    eval: EvalConfig,
    tasks: Vec<Task>,
    models: Vec<ModelProfile>,
    backends: Vec<Arc<dyn TranslationBackend>>,
    cells: Vec<CellSpec>,
    streaming: bool,
}

impl ExperimentPlan {
    pub fn builder() -> ExperimentPlanBuilder {
        ExperimentPlanBuilder::default()
    }

    /// The paper's full grid with N samples per cell.
    pub fn full(samples: u32) -> Self {
        Self::builder().samples(samples).build()
    }

    /// A small smoke-test slice (one pair, the three XOR apps).
    pub fn quick() -> Self {
        Self::builder()
            .samples(3)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .apps(["nanoXOR", "microXORh", "microXOR"])
            .build()
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn eval(&self) -> &EvalConfig {
        &self.eval
    }

    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    pub fn models(&self) -> &[ModelProfile] {
        &self.models
    }

    pub fn cells(&self) -> &[CellSpec] {
        &self.cells
    }

    /// The backend table: index 0 is the default, later entries were added
    /// by [`ExperimentPlanBuilder::backend_for`] overrides.
    pub fn backends(&self) -> &[Arc<dyn TranslationBackend>] {
        &self.backends
    }

    pub fn task_of(&self, cell: &CellSpec) -> &Task {
        &self.tasks[cell.task]
    }

    pub fn model_of(&self, cell: &CellSpec) -> &ModelProfile {
        &self.models[cell.model]
    }

    pub fn backend_of(&self, cell: &CellSpec) -> &dyn TranslationBackend {
        &*self.backends[cell.backend]
    }

    /// Total samples a runner will execute (infeasible cells contribute 0).
    pub fn total_samples(&self) -> usize {
        self.cells.iter().map(|c| c.samples as usize).sum()
    }

    /// Whether collection folds samples into per-cell sufficient statistics
    /// as they arrive instead of retaining every raw [`crate::SampleRecord`]
    /// (see [`ExperimentPlanBuilder::streaming`]).
    pub fn streaming(&self) -> bool {
        self.streaming
    }

    /// Content fingerprint of the plan, pinned in a journal header (see
    /// [`crate::journal`]) so a resume can refuse a journal written by a
    /// different grid. Hashes everything that determines the result set:
    /// the seed, the result-affecting [`EvalConfig`] knobs, and every
    /// cell's key, feasibility, sample count, and backend *name*. Pure
    /// wall-clock knobs (`build_cache`, the disk-cache tier) are excluded —
    /// toggling them mid-resume is legal because results are byte-identical
    /// either way.
    pub fn fingerprint(&self) -> u128 {
        let mut h = crate::eval::ContentHash::new();
        h.write(b"pareval-plan-v1");
        h.write(&self.seed.to_le_bytes());
        h.write(&(self.eval.max_cases as u64).to_le_bytes());
        h.write(&self.eval.max_steps.to_le_bytes());
        h.write(&self.eval.repair_budget.to_le_bytes());
        h.write(&(self.eval.repair_diag_lines as u64).to_le_bytes());
        // Analyzer knobs change result bytes, but only when on: hashing
        // them conditionally keeps analyzer-off fingerprints (and thus
        // existing journals) byte-identical to the pre-analyzer format.
        if self.eval.analyze {
            h.write(b"analyze");
            h.write(&(self.eval.analyze_max_findings as u64).to_le_bytes());
        }
        if self.eval.repair_guided {
            h.write(b"repair-guided");
        }
        for cell in &self.cells {
            h.write(cell.key.pair.id().as_bytes());
            h.write(cell.key.technique.name().as_bytes());
            h.write(cell.key.model.as_bytes());
            h.write(cell.key.app.as_bytes());
            // Generated apps additionally pin their GenSpec digest (seed +
            // every generator knob): regenerating the family differently
            // under the same names must invalidate old journals. Hashed
            // conditionally so hand-written-suite fingerprints stay
            // byte-identical to the pre-generator format.
            if let Some(digest) = self.tasks[cell.task].app.gen_digest {
                h.write(b"gen");
                h.write(&digest.to_le_bytes());
            }
            h.write(&[cell.feasible as u8]);
            h.write(&cell.samples.to_le_bytes());
            h.write(self.backends[cell.backend].name().as_bytes());
        }
        h.finish()
    }

    /// The flat work list, in deterministic enumeration order.
    pub fn sample_specs(&self) -> Vec<SampleSpec> {
        let mut out = Vec::with_capacity(self.total_samples());
        for (i, cell) in self.cells.iter().enumerate() {
            for sample_index in 0..cell.samples {
                out.push(SampleSpec {
                    cell: i,
                    sample_index,
                    cost_hint: cell.cost_hint,
                });
            }
        }
        out
    }
}

/// Default experiment seed: the ICPP'25 presentation date.
pub const DEFAULT_SEED: u64 = 20250908;

/// The default evaluation knobs for grid runs (one developer test case per
/// sample keeps the full grid tractable for an interpreter substrate).
pub(crate) fn default_eval() -> EvalConfig {
    EvalConfig {
        max_cases: 1,
        ..EvalConfig::default()
    }
}

/// Builder for [`ExperimentPlan`]. Defaults reproduce the paper's full grid
/// (all pairs, the three techniques, all five models, every app).
#[derive(Debug, Clone)]
pub struct ExperimentPlanBuilder {
    samples: u32,
    seed: u64,
    pairs: Vec<TranslationPair>,
    techniques: Vec<Technique>,
    models: Vec<ModelProfile>,
    apps: Vec<String>,
    extra_apps: Vec<Application>,
    eval: EvalConfig,
    backend: Arc<dyn TranslationBackend>,
    backend_overrides: Vec<(CellFilter, Arc<dyn TranslationBackend>)>,
    streaming: bool,
}

impl Default for ExperimentPlanBuilder {
    fn default() -> Self {
        ExperimentPlanBuilder {
            samples: 3,
            seed: DEFAULT_SEED,
            pairs: TranslationPair::ALL.to_vec(),
            techniques: Technique::ALL.to_vec(),
            models: all_models(),
            apps: Vec::new(),
            extra_apps: Vec::new(),
            eval: default_eval(),
            backend: Arc::new(SimulatedBackend),
            backend_overrides: Vec::new(),
            streaming: false,
        }
    }
}

impl ExperimentPlanBuilder {
    /// Samples (generations) per cell; the paper uses 25–50, the default
    /// here keeps the full grid tractable for an interpreter substrate.
    pub fn samples(mut self, samples: u32) -> Self {
        self.samples = samples;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn pairs(mut self, pairs: impl IntoIterator<Item = TranslationPair>) -> Self {
        self.pairs = pairs.into_iter().collect();
        self
    }

    pub fn techniques(mut self, techniques: impl IntoIterator<Item = Technique>) -> Self {
        self.techniques = techniques.into_iter().collect();
        self
    }

    pub fn models(mut self, models: impl IntoIterator<Item = ModelProfile>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// Restrict to these apps (names); empty = all.
    pub fn apps<I, S>(mut self, apps: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.apps = apps.into_iter().map(Into::into).collect();
        self
    }

    pub fn eval(mut self, eval: EvalConfig) -> Self {
        self.eval = eval;
        self
    }

    /// Register additional applications beyond the hand-written suite —
    /// the open-registry path `pareval_apps::suite_with_generated` feeds.
    /// Extra apps are explicitly requested, so the [`Self::apps`] name
    /// filter does not apply to them; their tasks enumerate after the
    /// built-in suite's, pair-major, in the order given here.
    pub fn extend_apps(mut self, apps: impl IntoIterator<Item = Application>) -> Self {
        self.extra_apps.extend(apps);
        self
    }

    /// Fold each sample into per-cell sufficient statistics on arrival
    /// instead of retaining every raw [`crate::SampleRecord`]: peak
    /// retained records become O(in-flight samples) instead of O(total
    /// samples), which is what makes thousand-cell generated grids
    /// tractable. All rate/count accessors stay exact; only the raw
    /// per-sample views ([`crate::CellResult::records`], `error_logs`) come
    /// back empty. Collection-mode only — journal bytes and fingerprints
    /// are unchanged, so a streaming run can resume a non-streaming
    /// journal and vice versa.
    pub fn streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// The default [`TranslationBackend`] for every cell
    /// ([`SimulatedBackend`] unless set). `Arc<ConcreteBackend>` coerces,
    /// so `.backend(Arc::new(OracleBackend))` just works; pass a clone of
    /// an existing handle to share stateful backends (e.g. a recorder)
    /// with the caller.
    pub fn backend(mut self, backend: Arc<dyn TranslationBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// Route the cells matching `filter` to a different backend — a grid
    /// can mix backends per cell (e.g. oracle upper-bounds for one model
    /// column, replay for the rest). Later overrides win on overlap.
    pub fn backend_for(mut self, filter: CellFilter, backend: Arc<dyn TranslationBackend>) -> Self {
        self.backend_overrides.push((filter, backend));
        self
    }

    /// Enumerate the grid. Cell order is the harness's canonical order —
    /// tasks in `(pair, app)` order, then techniques, then models — and two
    /// builds from the same inputs produce identical plans. Duplicate
    /// technique or model entries enumerate each cell once (first wins), so
    /// a sloppy input cannot double-schedule — and double-count — a cell.
    pub fn build(self) -> ExperimentPlan {
        let mut tasks: Vec<Task> = all_tasks()
            .into_iter()
            .filter(|t| self.pairs.contains(&t.pair))
            .filter(|t| self.apps.is_empty() || self.apps.iter().any(|a| *a == *t.app.name))
            .collect();
        // Extra (generated) apps enumerate after the built-in suite,
        // pair-major like `all_tasks`, filtered only by repo presence.
        for pair in TranslationPair::ALL {
            if !self.pairs.contains(&pair) {
                continue;
            }
            for app in &self.extra_apps {
                if app.repo(pair.from).is_some() {
                    tasks.push(Task {
                        app: app.clone(),
                        pair,
                    });
                }
            }
        }
        let mut backends: Vec<Arc<dyn TranslationBackend>> = vec![self.backend];
        backends.extend(self.backend_overrides.iter().map(|(_, b)| Arc::clone(b)));
        let mut seen = std::collections::BTreeSet::new();
        let mut cells = Vec::with_capacity(tasks.len() * self.techniques.len() * self.models.len());
        for (ti, task) in tasks.iter().enumerate() {
            for technique in &self.techniques {
                for (mi, model) in self.models.iter().enumerate() {
                    let key = CellKey {
                        pair: task.pair,
                        technique: *technique,
                        model: model.name,
                        app: intern_name(&task.app.name),
                    };
                    if !seen.insert(key) {
                        continue;
                    }
                    // Backend table slot: the last matching override, else
                    // the default at index 0.
                    let backend = self
                        .backend_overrides
                        .iter()
                        .rposition(|(f, _)| f.matches(&key))
                        .map_or(0, |i| i + 1);
                    let feasible = backends[backend].cell_feasible(
                        task.pair,
                        *technique,
                        model.name,
                        &task.app.name,
                    );
                    cells.push(CellSpec {
                        key,
                        task: ti,
                        model: mi,
                        backend,
                        feasible,
                        samples: if feasible { self.samples } else { 0 },
                        cost_hint: sample_cost_hint(*technique, &self.eval, feasible),
                    });
                }
            }
        }
        ExperimentPlan {
            seed: self.seed,
            eval: self.eval,
            tasks,
            models: self.models,
            backends,
            cells,
            streaming: self.streaming,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_plan_enumerates_expected_cells() {
        let plan = ExperimentPlan::quick();
        // 3 apps × 1 pair × 3 techniques × 5 models.
        assert_eq!(plan.cells().len(), 45);
        // SWE-agent ran only CUDA→Kokkos/GPT-4o-mini: all 15 SWE cells of
        // this CUDA→offload slice are infeasible, scheduled with 0 samples.
        let swe: Vec<_> = plan
            .cells()
            .iter()
            .filter(|c| c.key.technique == Technique::SweAgent)
            .collect();
        assert_eq!(swe.len(), 15);
        assert!(swe.iter().all(|c| !c.feasible && c.samples == 0));
        // Every feasible cell got the requested sample count.
        assert!(plan
            .cells()
            .iter()
            .filter(|c| c.feasible)
            .all(|c| c.samples == 3));
        assert_eq!(
            plan.total_samples(),
            plan.cells().iter().filter(|c| c.feasible).count() * 3
        );
    }

    #[test]
    fn duplicate_inputs_do_not_double_schedule() {
        let base = ExperimentPlan::builder()
            .samples(2)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .apps(["nanoXOR"]);
        let clean = base.clone().build();
        let doubled = base
            .techniques([Technique::NonAgentic, Technique::NonAgentic])
            .build();
        assert_eq!(clean.cells().len(), doubled.cells().len());
        assert_eq!(clean.total_samples(), doubled.total_samples());
    }

    #[test]
    fn plans_are_deterministic() {
        let a = ExperimentPlan::quick();
        let b = ExperimentPlan::quick();
        assert_eq!(a.cells().len(), b.cells().len());
        for (x, y) in a.cells().iter().zip(b.cells()) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.samples, y.samples);
        }
        assert_eq!(a.sample_specs(), b.sample_specs());
    }

    #[test]
    fn backend_overrides_route_cells_and_feasibility() {
        use pareval_llm::OracleBackend;

        // One override: gemini cells run on the oracle, the rest on the
        // default simulation.
        let plan = ExperimentPlan::builder()
            .samples(2)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .apps(["XSBench"])
            .backend_for(
                CellFilter::any().model("gemini-1.5-flash"),
                Arc::new(OracleBackend),
            )
            .build();
        assert_eq!(plan.backends().len(), 2);
        for cell in plan.cells() {
            if cell.key.model == "gemini-1.5-flash" {
                assert_eq!(cell.backend, 1);
                assert_eq!(plan.backend_of(cell).name(), "oracle");
                // The paper could not run this cell (context window); the
                // oracle can, so it is feasible and scheduled.
                assert!(cell.feasible && cell.samples == 2);
            } else {
                assert_eq!(cell.backend, 0);
                assert_eq!(plan.backend_of(cell).name(), "simulated");
            }
        }
    }

    #[test]
    fn later_backend_overrides_win() {
        use pareval_llm::{OracleBackend, SimulatedBackend};

        let plan = ExperimentPlan::builder()
            .samples(1)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .apps(["nanoXOR"])
            .backend_for(CellFilter::any(), Arc::new(OracleBackend))
            .backend_for(CellFilter::any().app("nanoXOR"), Arc::new(SimulatedBackend))
            .build();
        for cell in plan.cells() {
            assert_eq!(plan.backend_of(cell).name(), "simulated");
        }
    }

    #[test]
    fn cost_hints_rank_techniques_and_scale_with_repair_budget() {
        let eval0 = default_eval();
        let eval3 = EvalConfig {
            repair_budget: 3,
            ..default_eval()
        };
        // Infeasible cells cost nothing, whatever the technique.
        for t in Technique::ALL {
            assert_eq!(sample_cost_hint(t, &eval3, false), 0);
        }
        // SWE-agent > top-down > non-agentic, at any budget.
        for eval in [&eval0, &eval3] {
            let hints: Vec<u32> = Technique::ALL
                .iter()
                .map(|t| sample_cost_hint(*t, eval, true))
                .collect();
            assert!(hints[0] < hints[1] && hints[1] < hints[2], "{hints:?}");
        }
        // A repair budget multiplies the tail estimate.
        assert!(
            sample_cost_hint(Technique::NonAgentic, &eval3, true)
                > sample_cost_hint(Technique::NonAgentic, &eval0, true)
        );
        // The plan copies the per-cell hint onto every emitted spec.
        let plan = ExperimentPlan::quick();
        for spec in plan.sample_specs() {
            let cell = &plan.cells()[spec.cell];
            assert_eq!(spec.cost_hint, cell.cost_hint);
            assert!(cell.feasible && spec.cost_hint > 0);
        }
    }

    #[test]
    fn generated_apps_extend_the_grid() {
        use minihpc_gen::GenSpec;

        let specs: Vec<GenSpec> = (0..4).map(GenSpec::new).collect();
        let base = ExperimentPlan::builder()
            .samples(1)
            .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
            .techniques([Technique::NonAgentic]);
        let plain = base.clone().build();
        let extended = base
            .clone()
            .extend_apps(pareval_apps::suite_with_generated(&specs).split_off(6))
            .build();
        // 4 generated apps × 1 technique × 5 models of new cells, appended
        // after the built-in suite's.
        assert_eq!(extended.cells().len(), plain.cells().len() + 20);
        let gen_cells: Vec<_> = extended
            .cells()
            .iter()
            .filter(|c| c.key.app.starts_with("gen-"))
            .collect();
        assert_eq!(gen_cells.len(), 20);
        // Generated names intern to stable &'static strs: re-planning the
        // same family yields pointer-identical keys.
        let again = base
            .extend_apps(pareval_apps::suite_with_generated(&specs).split_off(6))
            .build();
        for (a, b) in extended.cells().iter().zip(again.cells()) {
            assert_eq!(a.key, b.key);
        }
        assert_eq!(extended.fingerprint(), again.fingerprint());
    }

    #[test]
    fn fingerprint_pins_generator_digest_but_not_collection_mode() {
        use minihpc_gen::GenSpec;

        let with_specs = |seed: u64, streaming: bool| {
            ExperimentPlan::builder()
                .samples(1)
                .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
                .techniques([Technique::NonAgentic])
                .extend_apps([pareval_apps::generated_app(&GenSpec::new(seed))])
                .streaming(streaming)
                .build()
        };
        // Same generated family → same fingerprint; different generator
        // seed → drift a resume must detect. (The app *name* embeds the
        // seed too, so also check two specs that differ only in a knob
        // that does not change the name.)
        assert_eq!(
            with_specs(7, false).fingerprint(),
            with_specs(7, false).fingerprint()
        );
        assert_ne!(
            with_specs(7, false).fingerprint(),
            with_specs(8, false).fingerprint()
        );
        let knob_a = pareval_apps::generated_app(&GenSpec::new(7).with_files(2));
        let knob_b = pareval_apps::generated_app(
            &GenSpec::new(7)
                .with_files(2)
                .with_kernels([minihpc_gen::KernelKind::Stencil]),
        );
        assert_eq!(knob_a.name, knob_b.name);
        let plan_of = |app: pareval_apps::Application| {
            ExperimentPlan::builder()
                .samples(1)
                .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
                .techniques([Technique::NonAgentic])
                .extend_apps([app])
                .build()
        };
        assert_ne!(
            plan_of(knob_a).fingerprint(),
            plan_of(knob_b).fingerprint(),
            "same name, different generator knobs must not share a fingerprint"
        );
        // Streaming is collection-mode only: fingerprints (and thus
        // journals) are interchangeable between modes.
        assert_eq!(
            with_specs(7, false).fingerprint(),
            with_specs(7, true).fingerprint()
        );
        // And the hand-written suite's fingerprint is untouched by the
        // gen-digest block (no generated apps → no block).
        assert_eq!(
            ExperimentPlan::quick().fingerprint(),
            ExperimentPlan::quick().fingerprint()
        );
    }

    #[test]
    fn cell_key_ord_is_grid_order() {
        let k1 = CellKey {
            pair: TranslationPair::CUDA_TO_OMP_OFFLOAD,
            technique: Technique::NonAgentic,
            model: "a",
            app: "z",
        };
        let k2 = CellKey {
            pair: TranslationPair::CUDA_TO_OMP_OFFLOAD,
            technique: Technique::NonAgentic,
            model: "b",
            app: "a",
        };
        assert!(k1 < k2, "model orders before app");
    }
}
