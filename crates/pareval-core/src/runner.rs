//! The Runner layer: execution strategies over an [`ExperimentPlan`].
//!
//! A [`Runner`] turns a plan's [`SampleSpec`]s into [`SampleRecord`]s and
//! hands them to the Collector ([`ExperimentResults::from_records`]).
//! Because every sample is independently seeded, execution order is
//! irrelevant to the result: the collector restores the canonical
//! `(CellKey, sample_index)` order before aggregation, so
//! [`ParallelRunner`] output is byte-identical to [`SerialRunner`] output
//! for the same plan.
//!
//! Runners stream progress to a [`ProgressSink`] (observer) as samples
//! complete — from worker threads, in completion order, which under the
//! parallel runner is nondeterministic even though the final results are
//! not.

use crate::collect::ExperimentResults;
use crate::plan::{CellKey, ExperimentPlan, SampleSpec};
use crate::task::{run_sample, SampleResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// One completed sample: the cell it belongs to, its index within the cell,
/// and the raw evaluation result. Records are what the collector retains,
/// so every metric can be recomputed (including pass@k for k > 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    pub key: CellKey,
    pub sample_index: u32,
    pub result: SampleResult,
}

/// Observer of experiment progress. Implementations must be [`Sync`]:
/// [`ParallelRunner`] invokes `on_sample` concurrently from worker threads.
pub trait ProgressSink: Sync {
    /// Called once per completed sample, in completion order.
    fn on_sample(&self, record: &SampleRecord);
}

/// Discards all progress events.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn on_sample(&self, _record: &SampleRecord) {}
}

/// Counts completed samples (a minimal progress meter usable from tests and
/// long-running drivers alike).
#[derive(Debug, Default)]
pub struct CountingSink {
    completed: AtomicU64,
}

impl CountingSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }
}

impl ProgressSink for CountingSink {
    fn on_sample(&self, _record: &SampleRecord) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// An execution strategy for a plan.
pub trait Runner {
    /// Execute every sample of `plan`, streaming records to `sink`.
    fn run_with_sink(&self, plan: &ExperimentPlan, sink: &dyn ProgressSink) -> ExperimentResults;

    /// Execute without observing progress.
    fn run(&self, plan: &ExperimentPlan) -> ExperimentResults {
        self.run_with_sink(plan, &NullSink)
    }
}

/// Execute one sample spec of `plan`.
pub fn execute_spec(plan: &ExperimentPlan, spec: &SampleSpec) -> SampleRecord {
    let cell = &plan.cells()[spec.cell];
    let result = run_sample(
        plan.task_of(cell),
        cell.key.technique,
        plan.model_of(cell),
        plan.seed(),
        spec.sample_index,
        plan.eval(),
    );
    SampleRecord {
        key: cell.key,
        sample_index: spec.sample_index,
        result,
    }
}

/// Runs every sample on the calling thread, in enumeration order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialRunner;

impl Runner for SerialRunner {
    fn run_with_sink(&self, plan: &ExperimentPlan, sink: &dyn ProgressSink) -> ExperimentResults {
        let records: Vec<SampleRecord> = plan
            .sample_specs()
            .iter()
            .map(|spec| {
                let record = execute_spec(plan, spec);
                sink.on_sample(&record);
                record
            })
            .collect();
        ExperimentResults::from_records(plan, records)
    }
}

/// Shards the plan's samples round-robin across N scoped worker threads.
///
/// Workers emit records to the sink as they complete; the collector then
/// restores `(CellKey, sample_index)` order, so the returned results are
/// byte-identical to [`SerialRunner`]'s for the same plan.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    workers: usize,
}

impl ParallelRunner {
    /// `workers` is clamped to at least 1.
    pub fn new(workers: usize) -> Self {
        ParallelRunner {
            workers: workers.max(1),
        }
    }

    /// One worker per available CPU.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Runner for ParallelRunner {
    fn run_with_sink(&self, plan: &ExperimentPlan, sink: &dyn ProgressSink) -> ExperimentResults {
        let specs = plan.sample_specs();
        let workers = self.workers.min(specs.len().max(1));
        let mut records: Vec<SampleRecord> = Vec::with_capacity(specs.len());
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let specs = &specs;
                    scope.spawn(move |_| {
                        specs
                            .iter()
                            .skip(w)
                            .step_by(workers)
                            .map(|spec| {
                                let record = execute_spec(plan, spec);
                                sink.on_sample(&record);
                                record
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                records.extend(handle.join().expect("experiment worker panicked"));
            }
        })
        .expect("experiment thread scope failed");
        ExperimentResults::from_records(plan, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExperimentPlan;
    use minihpc_lang::model::TranslationPair;
    use pareval_llm::all_models;
    use pareval_translate::Technique;

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::builder()
            .samples(2)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
            .apps(["nanoXOR"])
            .build()
    }

    #[test]
    fn sink_sees_every_sample() {
        let plan = tiny_plan();
        let sink = CountingSink::new();
        SerialRunner.run_with_sink(&plan, &sink);
        assert_eq!(sink.completed() as usize, plan.total_samples());

        let sink = CountingSink::new();
        ParallelRunner::new(3).run_with_sink(&plan, &sink);
        assert_eq!(sink.completed() as usize, plan.total_samples());
    }

    #[test]
    fn parallel_matches_serial_on_tiny_plan() {
        let plan = tiny_plan();
        let serial = SerialRunner.run(&plan);
        let parallel = ParallelRunner::new(2).run(&plan);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(ParallelRunner::new(0).workers(), 1);
    }
}
