//! The Runner layer: execution strategies over an [`ExperimentPlan`].
//!
//! A [`Runner`] turns a plan's [`SampleSpec`]s
//! into [`SampleRecord`]s (via a shared [`EvalPipeline`]) and hands them to
//! the Collector ([`ExperimentResults::from_records`]).
//! Because every sample is independently seeded, execution order is
//! irrelevant to the result: the collector restores the canonical
//! `(CellKey, sample_index)` order before aggregation, so every
//! multi-threaded runner's output is byte-identical to [`SerialRunner`]
//! output for the same plan.
//!
//! Three strategies ship: [`SerialRunner`] (one thread, enumeration
//! order), [`ScheduledRunner`] (work stealing — the parallel default; see
//! [`crate::sched`]), and [`RoundRobinRunner`] (static sharding, kept as
//! the scheduler benchmarks' baseline). [`ParallelRunner`] is a deprecated
//! alias that now delegates to the work-stealing scheduler.
//!
//! Runners stream progress to a [`ProgressSink`] (observer) as samples
//! complete — from worker threads, in completion order, which under the
//! multi-threaded runners is nondeterministic even though the final
//! results are not.

use crate::collect::{CellResult, ExperimentResults};
use crate::eval::EvalPipeline;
use crate::journal::{self, JournalError, JournalReader};
use crate::plan::{CellKey, ExperimentPlan, SampleSpec};
use crate::sched::{round_robin_map, ScheduledRunner};
use crate::task::SampleResult;
use std::collections::{BTreeMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One completed sample: the cell it belongs to, its index within the cell,
/// and the raw evaluation result. Records are what the collector retains,
/// so every metric can be recomputed (including pass@k for k > 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    pub key: CellKey,
    pub sample_index: u32,
    pub result: SampleResult,
}

/// Observer of experiment progress. Implementations must be [`Sync`]:
/// [`ParallelRunner`] invokes `on_sample` concurrently from worker threads.
pub trait ProgressSink: Sync {
    /// Called once per completed sample, in completion order.
    fn on_sample(&self, record: &SampleRecord);
}

/// Discards all progress events.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn on_sample(&self, _record: &SampleRecord) {}
}

/// Counts completed samples (a minimal progress meter usable from tests and
/// long-running drivers alike).
#[derive(Debug, Default)]
pub struct CountingSink {
    completed: AtomicU64,
}

impl CountingSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }
}

impl ProgressSink for CountingSink {
    fn on_sample(&self, _record: &SampleRecord) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// The streaming collector: folds each completed sample into per-cell
/// sufficient statistics the moment a worker reports it, so no raw record
/// outlives its `on_sample` call. Folding is order-independent, so the
/// nondeterministic completion order of multi-threaded runners still
/// yields results byte-identical to a serial run.
pub(crate) struct StreamingCollector {
    cells: Mutex<BTreeMap<CellKey, CellResult>>,
}

impl StreamingCollector {
    pub(crate) fn new(plan: &ExperimentPlan) -> Self {
        StreamingCollector {
            cells: Mutex::new(ExperimentResults::seeded_cells(plan)),
        }
    }

    pub(crate) fn finish(self) -> ExperimentResults {
        ExperimentResults {
            cells: self
                .cells
                .into_inner()
                .expect("streaming collector poisoned"),
        }
    }
}

impl ProgressSink for StreamingCollector {
    fn on_sample(&self, record: &SampleRecord) {
        self.cells
            .lock()
            .expect("streaming collector poisoned")
            .get_mut(&record.key)
            .expect("runner produced a record for a cell not in the plan")
            .fold_record(record);
    }
}

/// Forwards each sample to the caller's sink (e.g. a journal) and then
/// folds it into the streaming collector.
struct TeeSink<'a> {
    user: &'a dyn ProgressSink,
    collector: &'a StreamingCollector,
}

impl ProgressSink for TeeSink<'_> {
    fn on_sample(&self, record: &SampleRecord) {
        self.user.on_sample(record);
        self.collector.on_sample(record);
    }
}

/// An execution strategy for a plan.
pub trait Runner {
    /// Execute `specs` (a subset of `plan.sample_specs()`) through
    /// `pipeline`, streaming each completed record to `sink` and returning
    /// the records in completion order. This is the strategy's *only*
    /// required method — the whole-plan entry points and
    /// [`Runner::resume`] are provided on top of it — so a strategy
    /// defines how work is distributed exactly once and partial runs
    /// (resume's remainder) go through the same code path as full ones.
    fn run_specs(
        &self,
        plan: &ExperimentPlan,
        specs: Vec<SampleSpec>,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) -> Vec<SampleRecord>;

    /// Like [`Runner::run_specs`] but without returning (or accumulating)
    /// the records: each record's only life is its `on_sample` delivery.
    /// This is the streaming-aggregation execution path — peak retained
    /// records are the in-flight samples (≤ worker count), not O(total).
    ///
    /// The default delegates to `run_specs` and drops the buffer, which is
    /// correct but keeps the O(total) allocation; the shipped strategies
    /// override it to never collect.
    fn run_specs_discarding(
        &self,
        plan: &ExperimentPlan,
        specs: Vec<SampleSpec>,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) {
        let _ = self.run_specs(plan, specs, pipeline, sink);
    }

    /// Execute every sample of `plan` through `pipeline`, streaming records
    /// to `sink`. The pipeline (and with it the build cache) is shared by
    /// every worker of this run; pass one in explicitly to inspect
    /// [`EvalPipeline::cache_stats`] afterwards.
    ///
    /// A plan built with
    /// [`streaming(true)`](crate::plan::ExperimentPlanBuilder::streaming)
    /// takes the fold-on-arrival path instead of buffering records; `sink`
    /// still sees every sample first, so journaling composes unchanged.
    fn run_with(
        &self,
        plan: &ExperimentPlan,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) -> ExperimentResults {
        if plan.streaming() {
            let collector = StreamingCollector::new(plan);
            let tee = TeeSink {
                user: sink,
                collector: &collector,
            };
            self.run_specs_discarding(plan, plan.sample_specs(), pipeline, &tee);
            return collector.finish();
        }
        let records = self.run_specs(plan, plan.sample_specs(), pipeline, sink);
        ExperimentResults::from_records(plan, records)
    }

    /// Execute with a fresh pipeline built from the plan's
    /// [`EvalConfig`](crate::task::EvalConfig).
    fn run_with_sink(&self, plan: &ExperimentPlan, sink: &dyn ProgressSink) -> ExperimentResults {
        self.run_with(plan, &EvalPipeline::new(plan.eval().clone()), sink)
    }

    /// Execute without observing progress.
    fn run(&self, plan: &ExperimentPlan) -> ExperimentResults {
        self.run_with_sink(plan, &NullSink)
    }

    /// Resume a crashed run from the journal at `journal`, producing
    /// [`ExperimentResults`] byte-identical to an uninterrupted run of
    /// `plan`.
    ///
    /// Two streaming passes over the journal: the first recovers the
    /// completed `(cell, sample)` set from the intact record prefix (torn
    /// or corrupted tails are skipped, not fatal); only the *remaining*
    /// specs are then executed through this strategy's [`Runner::run_specs`]
    /// (so e.g. [`ScheduledRunner`] re-seeds its injector with the
    /// remainder in LPT order), streaming fresh records to `sink` as usual.
    /// The second pass replays the journaled records and merges them with
    /// the fresh ones into the collector, one record in flight at a time —
    /// no double-buffering of the journal. Replay is capped at the
    /// first-pass record count and deduplicated, so a `sink` that appends
    /// to the *same* journal file (the normal arrangement, via
    /// [`JournalSink::append`](crate::journal::JournalSink::append)) is
    /// safe, as is a journal holding duplicates from earlier resume cycles.
    ///
    /// Replayed records are not re-delivered to `sink`: they were delivered
    /// during the run that wrote them.
    ///
    /// # Errors
    ///
    /// [`JournalError::NotAJournal`] / [`JournalError::PlanMismatch`] when
    /// the file is not a journal for this plan (a fingerprint mismatch
    /// refuses to silently resume the wrong grid), [`JournalError::Io`] on
    /// I/O failure.
    fn resume(
        &self,
        plan: &ExperimentPlan,
        journal: &Path,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) -> Result<ExperimentResults, JournalError> {
        let replay = journal::scan(journal, plan)?;
        let remainder: Vec<SampleSpec> = plan
            .sample_specs()
            .into_iter()
            .filter(|spec| {
                !replay
                    .completed
                    .contains(&(plan.cells()[spec.cell].key, spec.sample_index))
            })
            .collect();
        if plan.streaming() {
            // Fold the journaled prefix straight into the collector (one
            // record in flight, deduplicated exactly like the buffered
            // path), then stream the remainder on top.
            let collector = StreamingCollector::new(plan);
            let mut seen = HashSet::new();
            for record in JournalReader::open(journal, plan)?.take(replay.records as usize) {
                if seen.insert((record.key, record.sample_index)) {
                    collector.on_sample(&record);
                }
            }
            let tee = TeeSink {
                user: sink,
                collector: &collector,
            };
            self.run_specs_discarding(plan, remainder, pipeline, &tee);
            return Ok(collector.finish());
        }
        let fresh = self.run_specs(plan, remainder, pipeline, sink);
        // Second pass: replay exactly the records the scan saw (`take`
        // stops before anything `sink` appended during `run_specs`),
        // dropping duplicates a crash mid-append can leave behind.
        let mut seen = HashSet::new();
        let replayed = JournalReader::open(journal, plan)?
            .take(replay.records as usize)
            .filter(move |record| seen.insert((record.key, record.sample_index)));
        Ok(ExperimentResults::from_records(plan, replayed.chain(fresh)))
    }
}

/// Runs every sample on the calling thread, in enumeration order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialRunner;

impl Runner for SerialRunner {
    fn run_specs(
        &self,
        plan: &ExperimentPlan,
        specs: Vec<SampleSpec>,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) -> Vec<SampleRecord> {
        specs
            .iter()
            .map(|spec| {
                let record = pipeline.execute(plan, spec);
                sink.on_sample(&record);
                record
            })
            .collect()
    }

    fn run_specs_discarding(
        &self,
        plan: &ExperimentPlan,
        specs: Vec<SampleSpec>,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) {
        for spec in &specs {
            let record = pipeline.execute(plan, spec);
            sink.on_sample(&record);
        }
    }
}

/// Shards the plan's samples round-robin across N scoped worker threads:
/// sample `i` always runs on worker `i % N`, fixed for the whole run.
///
/// This is the pre-scheduler static strategy, kept because (a) it is the
/// baseline `benches/scheduler.rs` measures [`ScheduledRunner`] against
/// and (b) for *uniform* per-sample costs it is optimal with zero
/// scheduling traffic. With repair rounds enabled, per-sample cost is
/// heavy-tailed and one unlucky shard serializes the run — prefer
/// [`ScheduledRunner`].
///
/// Workers emit records to the sink as they complete; the collector then
/// restores `(CellKey, sample_index)` order, so the returned results are
/// byte-identical to [`SerialRunner`]'s for the same plan. All workers
/// share one [`EvalPipeline`], so a build-cache entry populated by one
/// shard serves hits to every other.
#[derive(Debug, Clone, Copy)]
pub struct RoundRobinRunner {
    workers: usize,
}

impl RoundRobinRunner {
    /// `workers` is clamped to at least 1.
    pub fn new(workers: usize) -> Self {
        RoundRobinRunner {
            workers: workers.max(1),
        }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Runner for RoundRobinRunner {
    fn run_specs(
        &self,
        plan: &ExperimentPlan,
        specs: Vec<SampleSpec>,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) -> Vec<SampleRecord> {
        round_robin_map(&specs, self.workers, |spec| {
            let record = pipeline.execute(plan, spec);
            sink.on_sample(&record);
            record
        })
    }

    fn run_specs_discarding(
        &self,
        plan: &ExperimentPlan,
        specs: Vec<SampleSpec>,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) {
        round_robin_map(&specs, self.workers, |spec| {
            let record = pipeline.execute(plan, spec);
            sink.on_sample(&record);
        });
    }
}

/// Deprecated name of the parallel execution strategy. Now a thin alias
/// that delegates to the work-stealing [`ScheduledRunner`] — same
/// byte-identical results, better wall-clock on heterogeneous grids. The
/// old static sharding lives on as [`RoundRobinRunner`].
#[deprecated(
    since = "0.1.0",
    note = "use ScheduledRunner (work stealing); the old static sharding is RoundRobinRunner"
)]
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    workers: usize,
}

#[allow(deprecated)]
impl ParallelRunner {
    /// `workers` is clamped to at least 1.
    pub fn new(workers: usize) -> Self {
        ParallelRunner {
            workers: workers.max(1),
        }
    }

    /// One worker per available CPU.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    pub fn workers(&self) -> usize {
        self.workers
    }
}

#[allow(deprecated)]
impl Runner for ParallelRunner {
    fn run_specs(
        &self,
        plan: &ExperimentPlan,
        specs: Vec<SampleSpec>,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) -> Vec<SampleRecord> {
        ScheduledRunner::new(self.workers).run_specs(plan, specs, pipeline, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExperimentPlan;
    use minihpc_lang::model::TranslationPair;
    use pareval_llm::all_models;
    use pareval_translate::Technique;

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::builder()
            .samples(2)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
            .apps(["nanoXOR"])
            .build()
    }

    #[test]
    fn sink_sees_every_sample() {
        let plan = tiny_plan();
        let sink = CountingSink::new();
        SerialRunner.run_with_sink(&plan, &sink);
        assert_eq!(sink.completed() as usize, plan.total_samples());

        let sink = CountingSink::new();
        RoundRobinRunner::new(3).run_with_sink(&plan, &sink);
        assert_eq!(sink.completed() as usize, plan.total_samples());
    }

    #[test]
    fn round_robin_matches_serial_on_tiny_plan() {
        let plan = tiny_plan();
        let serial = SerialRunner.run(&plan);
        let sharded = RoundRobinRunner::new(2).run(&plan);
        assert_eq!(serial, sharded);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_parallel_alias_still_runs_and_matches_serial() {
        let plan = tiny_plan();
        assert_eq!(ParallelRunner::new(0).workers(), 1);
        assert!(ParallelRunner::auto().workers() >= 1);
        let serial = SerialRunner.run(&plan);
        let aliased = ParallelRunner::new(2).run(&plan);
        assert_eq!(serial, aliased);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(RoundRobinRunner::new(0).workers(), 1);
    }

    #[test]
    fn parallel_workers_share_the_build_cache() {
        // Same plan, one shared pipeline: identical translated repos recur
        // across samples (correct translations and same-kind injections are
        // content-identical), so sharded workers serve each other hits —
        // and the results still match an uncached serial run byte for byte.
        let plan = ExperimentPlan::builder()
            .samples(6)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
            .apps(["nanoXOR"])
            .build();
        let pipeline = EvalPipeline::new(plan.eval().clone());
        let cached = ScheduledRunner::new(3).run_with(&plan, &pipeline, &NullSink);
        let stats = pipeline.cache_stats();
        assert!(stats.hits > 0, "expected shared hits, got {stats:?}");

        let mut uncached_eval = plan.eval().clone();
        uncached_eval.build_cache = false;
        let uncached_pipeline = EvalPipeline::new(uncached_eval);
        let uncached = SerialRunner.run_with(&plan, &uncached_pipeline, &NullSink);
        assert_eq!(uncached_pipeline.cache_stats().misses, 0);
        assert_eq!(cached, uncached);
        assert_eq!(format!("{cached:?}"), format!("{uncached:?}"));
    }

    /// A grid that exercises every statistic the streaming collector must
    /// reproduce: repair rounds (per-round slots), analysis findings (race
    /// rule counts), build/run failures (error categories), infeasible
    /// cells, and generated apps alongside a built-in.
    fn streaming_probe_plan(streaming: bool) -> ExperimentPlan {
        use crate::task::EvalConfig;
        use minihpc_gen::GenSpec;

        let eval = EvalConfig {
            max_cases: 1,
            repair_budget: 2,
            analyze: true,
            ..EvalConfig::default()
        };
        ExperimentPlan::builder()
            .samples(3)
            .pairs([
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                TranslationPair::OMP_THREADS_TO_OFFLOAD,
            ])
            .techniques(Technique::ALL)
            .models(
                all_models()
                    .into_iter()
                    .filter(|m| m.name == "o4-mini" || m.name == "gemini-1.5-flash"),
            )
            .apps(["nanoXOR"])
            .extend_apps([
                pareval_apps::generated_app(&GenSpec::new(0x51)),
                pareval_apps::generated_app(&GenSpec::new(0x52).with_files(3)),
            ])
            .eval(eval)
            .streaming(streaming)
            .build()
    }

    #[test]
    fn streaming_matches_buffered_on_every_accessor() {
        use crate::task::Scoring;
        use crate::Metric;

        let buffered = SerialRunner.run(&streaming_probe_plan(false));
        let streamed = ScheduledRunner::new(4).run(&streaming_probe_plan(true));

        // Results-level views agree wholesale.
        assert_eq!(buffered.max_repair_round(), streamed.max_repair_round());
        assert_eq!(buffered.error_counts(), streamed.error_counts());
        assert_eq!(
            buffered.race_finding_counts(),
            streamed.race_finding_counts()
        );

        let plan = streaming_probe_plan(false);
        assert!(plan.cells().len() > 20);
        for cell in plan.cells() {
            let k = cell.key;
            let b = buffered.cell(k.pair, k.technique, k.model, k.app).unwrap();
            let s = streamed.cell(k.pair, k.technique, k.model, k.app).unwrap();
            assert_eq!(b.feasible(), s.feasible(), "{k:?}");
            assert_eq!(b.samples(), s.samples(), "{k:?}");
            assert_eq!(b.max_repair_round(), s.max_repair_round(), "{k:?}");
            assert_eq!(b.race_free_samples(), s.race_free_samples(), "{k:?}");
            assert_eq!(
                b.error_category_counts(),
                s.error_category_counts(),
                "{k:?}"
            );
            assert_eq!(b.finding_rule_counts(), s.finding_rule_counts(), "{k:?}");
            assert_eq!(b.tokens().mean(), s.tokens().mean(), "{k:?}");
            assert_eq!(b.tokens().count(), s.tokens().count(), "{k:?}");
            for metric in [Metric::Build, Metric::Pass] {
                for scoring in [Scoring::CodeOnly, Scoring::Overall] {
                    assert_eq!(
                        b.successes(metric, scoring),
                        s.successes(metric, scoring),
                        "{k:?}"
                    );
                    for kk in 1..=3 {
                        assert_eq!(
                            b.rate(metric, scoring, kk),
                            s.rate(metric, scoring, kk),
                            "{k:?} k={kk}"
                        );
                    }
                    for round in 0..=buffered.max_repair_round() + 1 {
                        assert_eq!(
                            b.successes_at_round(metric, scoring, round),
                            s.successes_at_round(metric, scoring, round),
                            "{k:?} round={round}"
                        );
                        assert_eq!(
                            b.rate_at_round(metric, scoring, 2, round),
                            s.rate_at_round(metric, scoring, 2, round),
                            "{k:?} round={round}"
                        );
                    }
                }
            }
            for round in 0..=buffered.max_repair_round() + 1 {
                assert_eq!(
                    b.tokens_at_round(round).mean(),
                    s.tokens_at_round(round).mean(),
                    "{k:?} round={round}"
                );
            }
            // The one intended divergence: streaming retains no raw records.
            if b.feasible() {
                assert!(!b.records().is_empty(), "{k:?}");
                assert!(s.records().is_empty(), "{k:?}");
            }
        }
    }

    #[test]
    fn streaming_resume_matches_uninterrupted_buffered_run() {
        use crate::journal::JournalSink;

        let dir =
            std::env::temp_dir().join(format!("pareval-stream-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let journal = dir.join("run.journal");

        let plan = streaming_probe_plan(true);
        let pipeline = EvalPipeline::new(plan.eval().clone());

        // Simulate a crash: journal only a prefix of the samples, then
        // resume in streaming mode and compare against a buffered run.
        let sink = JournalSink::create(&journal, &plan).expect("create journal");
        let prefix: Vec<SampleSpec> = plan.sample_specs().into_iter().take(17).collect();
        SerialRunner.run_specs_discarding(&plan, prefix, &pipeline, &sink);
        sink.sync().expect("sync journal");
        assert_eq!(sink.records_written(), 17);
        drop(sink);

        let append = JournalSink::append(&journal, &plan).expect("append journal");
        let resumed = ScheduledRunner::new(4)
            .resume(&plan, &journal, &pipeline, &append)
            .expect("resume");
        let buffered = SerialRunner.run(&streaming_probe_plan(false));
        assert_eq!(
            format!("{:?}", resumed.error_counts()),
            format!("{:?}", buffered.error_counts())
        );
        for cell in plan.cells() {
            let k = cell.key;
            let r = resumed.cell(k.pair, k.technique, k.model, k.app).unwrap();
            let b = buffered.cell(k.pair, k.technique, k.model, k.app).unwrap();
            assert_eq!(r.samples(), b.samples(), "{k:?}");
            for metric in [crate::Metric::Build, crate::Metric::Pass] {
                for scoring in [
                    crate::task::Scoring::CodeOnly,
                    crate::task::Scoring::Overall,
                ] {
                    assert_eq!(
                        r.successes(metric, scoring),
                        b.successes(metric, scoring),
                        "{k:?}"
                    );
                }
            }
            assert_eq!(r.tokens().mean(), b.tokens().mean(), "{k:?}");
            assert!(r.records().is_empty(), "{k:?}");
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quick_grid_reproduces_cell_shapes() {
        use crate::task::Scoring;
        use crate::Metric;

        let plan = ExperimentPlan::builder()
            .samples(4)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .models(
                all_models()
                    .into_iter()
                    .filter(|m| m.name == "o4-mini" || m.name == "gemini-1.5-flash"),
            )
            .apps(["nanoXOR", "microXORh", "microXOR"])
            .build();
        let results = SerialRunner.run(&plan);
        let o4 = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "o4-mini",
                "nanoXOR",
            )
            .unwrap();
        assert!(o4.feasible());
        assert_eq!(o4.samples(), 4);
        // Code-only pass implies code-only build, per-sample and aggregate.
        assert!(
            o4.successes(Metric::Pass, Scoring::CodeOnly)
                <= o4.successes(Metric::Build, Scoring::CodeOnly)
        );
        assert!(
            o4.successes(Metric::Pass, Scoring::Overall)
                <= o4.successes(Metric::Build, Scoring::Overall)
        );
        // Overall never exceeds code-only builds (gt build file only helps).
        assert!(
            o4.successes(Metric::Build, Scoring::Overall)
                <= o4.successes(Metric::Build, Scoring::CodeOnly) + 1
        );

        let gem = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "gemini-1.5-flash",
                "nanoXOR",
            )
            .unwrap();
        // Gemini's pass@1 is 0 in the paper for this cell.
        assert_eq!(gem.successes(Metric::Pass, Scoring::CodeOnly), 0);
        assert_eq!(gem.successes(Metric::Pass, Scoring::Overall), 0);
    }
}
