//! The work-stealing scheduler: [`ScheduledRunner`] and the raw scheduling
//! primitives ([`stealing_map`], [`round_robin_map`]) it and the scheduler
//! benchmarks are built from.
//!
//! PR 4's repair rounds made per-sample cost wildly variable — a budget-3
//! repair sample can cost several times a cache-hit sample — so the static
//! round-robin sharding of the original parallel runner lets one unlucky
//! shard serialize a whole grid run. This module replaces it with the
//! classic work-stealing design over the vendored [`crossbeam::deque`]
//! primitives:
//!
//! - the full work list is seeded into a shared FIFO [`Injector`], sorted
//!   most-expensive-first by the plan-time
//!   [`SampleSpec::cost_hint`](crate::plan::SampleSpec::cost_hint)
//!   (longest-processing-time-first: big rocks start early, the tail of a
//!   run is made of small ones);
//! - every worker owns a LIFO [`Worker`] deque and publishes a [`Stealer`]
//!   handle; it drains its own deque first, refills from the injector in
//!   small batches, and only when both are empty steals from a sibling —
//!   so a worker stuck on an expensive repair sample cannot strand the
//!   work queued behind it;
//! - a worker exits when its deque, the injector, and every sibling deque
//!   are observed empty. Samples never spawn more samples, so that
//!   condition is final: every item is executed exactly once.
//!
//! Scheduling only changes *when* a sample runs, never *what* it computes:
//! samples are independently seeded, and the collector restores canonical
//! `(CellKey, sample_index)` order, so [`ScheduledRunner`] output is
//! byte-identical to [`SerialRunner`](crate::runner::SerialRunner) for the
//! same plan at any worker count (pinned by the determinism proptests in
//! `tests/determinism.rs`).

use crate::collect::ExperimentResults;
use crate::eval::EvalPipeline;
use crate::plan::{ExperimentPlan, SampleSpec};
use crate::runner::{ProgressSink, Runner, SampleRecord};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing how one [`stealing_map`] run balanced itself.
/// Purely observational — results never depend on them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Items taken from a *sibling worker's* deque (the rebalancing acts).
    pub steals: u64,
    /// Batch refills served by the shared injector.
    pub injector_refills: u64,
}

/// Runs `f` over every item of `items` on `workers` scoped threads using
/// work stealing, returning the results in completion order (callers that
/// need a canonical order restore it themselves — the experiment collector
/// sorts by `(CellKey, sample_index)`).
///
/// Items are seeded into the shared injector in the given order; pass a
/// cost-sorted list (most expensive first) to get LPT scheduling. Each
/// worker drains its local deque, refills from the injector in small
/// batches, then steals from siblings; see the module docs for the exit
/// condition. A panicking `f` propagates out of the thread scope after the
/// remaining workers finish their items.
pub fn stealing_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> (Vec<R>, SchedStats)
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let total = items.len();
    let workers = workers.max(1).min(total.max(1));
    let injector = Injector::new();
    for item in items {
        injector.push(item);
    }
    let locals: Vec<Worker<T>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<T>> = locals.iter().map(Worker::stealer).collect();
    let steals = AtomicU64::new(0);
    let refills = AtomicU64::new(0);

    let mut results: Vec<R> = Vec::with_capacity(total);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .iter()
            .enumerate()
            .map(|(me, local)| {
                let (injector, stealers) = (&injector, &stealers);
                let (f, steals, refills) = (&f, &steals, &refills);
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    while let Some(item) = find_work(local, injector, stealers, me, steals, refills)
                    {
                        out.push(f(&item));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(out) => results.extend(out),
                // Re-raise the worker's own payload (the pipeline already
                // attached the offending cell/sample) instead of a bare
                // "worker panicked".
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    })
    .expect("scheduler thread scope failed");

    (
        results,
        SchedStats {
            steals: steals.load(Ordering::Relaxed),
            injector_refills: refills.load(Ordering::Relaxed),
        },
    )
}

/// One worker's drain-then-steal step: local deque first, then a batch
/// refill from the injector, then a steal from the first non-empty sibling.
/// Returns `None` only after observing all three sources empty.
fn find_work<T>(
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
    me: usize,
    steals: &AtomicU64,
    refills: &AtomicU64,
) -> Option<T> {
    if let Some(item) = local.pop() {
        return Some(item);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(item) => {
                refills.fetch_add(1, Ordering::Relaxed);
                return Some(item);
            }
            Steal::Retry => continue,
            Steal::Empty => {}
        }
        let mut contended = false;
        for (i, stealer) in stealers.iter().enumerate() {
            if i == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(item) => {
                    steals.fetch_add(1, Ordering::Relaxed);
                    return Some(item);
                }
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        if !contended {
            return None;
        }
    }
}

/// The static-sharding baseline: item `i` goes to worker `i % workers`,
/// fixed for the whole run. Results come back in shard-concatenation
/// order. This is what `ParallelRunner` did before work stealing — kept
/// (a) as the baseline the scheduler benchmarks compare against and (b)
/// because for *uniform* per-item costs it is optimal and lock-free.
pub fn round_robin_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    let mut results: Vec<R> = Vec::with_capacity(items.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move |_| {
                    items
                        .iter()
                        .skip(w)
                        .step_by(workers)
                        .map(f)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(out) => results.extend(out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    })
    .expect("round-robin thread scope failed");
    results
}

/// The work-stealing execution strategy: seeds a shared injector with the
/// plan's samples sorted by plan-time cost hint, and lets `workers` scoped
/// threads drain-then-steal until the grid is done.
///
/// Like every runner, it streams [`SampleRecord`]s to the
/// [`ProgressSink`] in completion order (nondeterministic) and returns
/// results that are byte-identical to a serial run (deterministic). All
/// workers share one [`EvalPipeline`], so build-cache entries populated by
/// one worker serve hits to every other.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledRunner {
    workers: usize,
}

impl ScheduledRunner {
    /// `workers` is clamped to at least 1 (and, at run time, to the number
    /// of scheduled samples — idle threads are never spawned).
    pub fn new(workers: usize) -> Self {
        ScheduledRunner {
            workers: workers.max(1),
        }
    }

    /// One worker per available CPU.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// [`Runner::run_with`], additionally returning the run's scheduling
    /// counters (how many steals and injector refills it took to balance).
    pub fn run_with_stats(
        &self,
        plan: &ExperimentPlan,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) -> (ExperimentResults, SchedStats) {
        let (records, stats) = self.schedule(plan, plan.sample_specs(), pipeline, sink);
        (ExperimentResults::from_records(plan, records), stats)
    }

    /// The one scheduling path every entry point funnels through: LPT-sort
    /// `specs` and work-steal them across this runner's threads. Full runs
    /// and resume remainders both land here, so a resumed run re-seeds its
    /// injector with only the remaining samples — still most-expensive
    /// first.
    fn schedule(
        &self,
        plan: &ExperimentPlan,
        mut specs: Vec<SampleSpec>,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) -> (Vec<SampleRecord>, SchedStats) {
        // LPT seeding: most expensive first. The sort is stable, so equal
        // hints keep enumeration order and the injector contents are
        // deterministic for a given spec list.
        specs.sort_by_key(|spec| std::cmp::Reverse(spec.cost_hint));
        stealing_map(specs, self.workers, |spec: &SampleSpec| {
            let record = pipeline.execute(plan, spec);
            sink.on_sample(&record);
            record
        })
    }
}

impl Runner for ScheduledRunner {
    fn run_specs(
        &self,
        plan: &ExperimentPlan,
        specs: Vec<SampleSpec>,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) -> Vec<SampleRecord> {
        self.schedule(plan, specs, pipeline, sink).0
    }

    fn run_specs_discarding(
        &self,
        plan: &ExperimentPlan,
        mut specs: Vec<SampleSpec>,
        pipeline: &EvalPipeline,
        sink: &dyn ProgressSink,
    ) {
        // Same LPT seeding as `schedule`, but the worker closure returns
        // unit: no record outlives its `on_sample` delivery, so the
        // streaming path's peak retained records are the in-flight
        // samples (≤ worker count).
        specs.sort_by_key(|spec| std::cmp::Reverse(spec.cost_hint));
        stealing_map(specs, self.workers, |spec: &SampleSpec| {
            let record = pipeline.execute(plan, spec);
            sink.on_sample(&record);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{CountingSink, SerialRunner};
    use minihpc_lang::model::TranslationPair;
    use pareval_llm::all_models;
    use pareval_translate::Technique;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn stealing_map_runs_every_item_exactly_once() {
        let items: Vec<u64> = (0..100).collect();
        let calls = AtomicUsize::new(0);
        let (mut results, _) = stealing_map(items, 4, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * 2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        results.sort_unstable();
        assert_eq!(results, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_map_handles_degenerate_shapes() {
        // No items: no worker ever finds work.
        let (results, stats) = stealing_map(Vec::<u64>::new(), 8, |&x| x);
        assert!(results.is_empty());
        assert_eq!(stats, SchedStats::default());
        // One item, many workers; zero workers clamps to one.
        for workers in [0, 1, 8] {
            let (results, _) = stealing_map(vec![7u64], workers, |&x| x + 1);
            assert_eq!(results, vec![8]);
        }
    }

    #[test]
    fn round_robin_map_matches_serial_iteration() {
        let items: Vec<u64> = (0..37).collect();
        let mut results = round_robin_map(&items, 4, |&x| x + 1);
        results.sort_unstable();
        assert_eq!(results, (1..38).collect::<Vec<_>>());
        assert_eq!(round_robin_map(&items, 0, |&x| x).len(), items.len());
    }

    #[test]
    fn imbalanced_items_get_stolen() {
        // One expensive item at the head (LPT order) plus a tail of cheap
        // ones: with 2 workers the one not holding the expensive item must
        // refill from the injector repeatedly, and the counters see it.
        let mut items = vec![1u64; 64];
        items[0] = 50;
        let (_, stats) = stealing_map(items, 2, |&ms| {
            std::thread::sleep(std::time::Duration::from_micros(ms * 100));
        });
        assert!(
            stats.injector_refills > 1,
            "expected multiple refills, got {stats:?}"
        );
    }

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::builder()
            .samples(3)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic, Technique::TopDownAgentic])
            .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
            .apps(["nanoXOR", "microXOR"])
            .build()
    }

    #[test]
    fn scheduled_matches_serial_and_reports_progress() {
        let plan = tiny_plan();
        let serial = SerialRunner.run(&plan);
        for workers in [1, 3, 8] {
            let sink = CountingSink::new();
            let runner = ScheduledRunner::new(workers);
            let results = runner.run_with_sink(&plan, &sink);
            assert_eq!(serial, results, "{workers} workers diverged");
            assert_eq!(sink.completed() as usize, plan.total_samples());
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(ScheduledRunner::new(0).workers(), 1);
        assert!(ScheduledRunner::auto().workers() >= 1);
    }
}
