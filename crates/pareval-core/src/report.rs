//! Plain-text report emitters: one per table and figure of the paper.

use crate::collect::{ExperimentResults, Metric};
use crate::task::Scoring;
use minihpc_build::ErrorCategory;
use minihpc_lang::complexity;
use minihpc_lang::model::TranslationPair;
use minihpc_lang::parser;
use minihpc_lang::repo::FileKind;
use pareval_llm::{all_models, MODEL_ORDER};
use pareval_metrics::{dollar_cost, expected_token_cost, node_hours};
use pareval_translate::Technique;
use std::fmt::Write as _;

const APP_ORDER: [&str; 6] = [
    "nanoXOR",
    "microXORh",
    "microXOR",
    "SimpleMOC-kernel",
    "XSBench",
    "llm.c",
];

/// Table 1: application statistics (SLoC, cyclomatic complexity, files,
/// available models) computed from the MiniHPC ports.
pub fn table1() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<18} {:>6} {:>5} {:>7}  Models",
        "Application", "SLoC", "CC", "#Files"
    )
    .unwrap();
    for app in pareval_apps::suite() {
        let (model, repo) = app.repos.iter().next().unwrap();
        let mut sloc = 0usize;
        let mut cc = 0usize;
        let mut files = 0usize;
        for (path, text) in repo.iter() {
            let kind = FileKind::of(path);
            if kind == FileKind::Other {
                continue;
            }
            files += 1;
            if kind.is_code() {
                if let Ok(parsed) = parser::parse_file(text) {
                    let stats = complexity::file_stats(text, &parsed);
                    sloc += stats.sloc;
                    cc += stats.cyclomatic;
                } else {
                    sloc += complexity::sloc(text);
                }
            } else {
                sloc += complexity::sloc(text);
            }
        }
        let models: Vec<&str> = app.available_models().iter().map(|m| m.name()).collect();
        let _ = model;
        writeln!(
            out,
            "{:<18} {:>6} {:>5} {:>7}  {}",
            app.name,
            sloc,
            cc,
            files,
            models.join(", ")
        )
        .unwrap();
    }
    out
}

/// One Fig. 2 subfigure: build@1 or pass@1 heatmaps (code-only and overall)
/// for one pair and the techniques that ran.
pub fn fig2(results: &ExperimentResults, pair: TranslationPair, pass: bool) -> String {
    let metric = if pass { Metric::Pass } else { Metric::Build };
    let mut out = String::new();
    writeln!(
        out,
        "== {metric_label}@1 for {pair} ==",
        metric_label = if pass { "pass" } else { "build" }
    )
    .unwrap();
    for scoring in Scoring::ALL {
        for technique in [
            Technique::NonAgentic,
            Technique::TopDownAgentic,
            Technique::SweAgent,
        ] {
            let mut grid = String::new();
            let mut any = false;
            for app in APP_ORDER {
                let mut row = format!("{app:<18}");
                let mut row_any = false;
                for model in MODEL_ORDER {
                    let cell = results.cell(pair, technique, model, app);
                    match cell {
                        Some(c) if c.feasible() && c.samples() > 0 => {
                            let v = c.rate(metric, scoring, 1);
                            write!(row, " {v:>5.2}").unwrap();
                            row_any = true;
                        }
                        Some(_) => write!(row, " {:>5}", "-").unwrap(),
                        None => write!(row, " {:>5}", ".").unwrap(),
                    }
                }
                if row_any {
                    any = true;
                }
                grid.push_str(&row);
                grid.push('\n');
            }
            if any {
                writeln!(
                    out,
                    "-- {scoring} / {technique} --",
                    scoring = scoring.label()
                )
                .unwrap();
                writeln!(
                    out,
                    "{:<18} {:>5} {:>5} {:>5} {:>5} {:>5}",
                    "", "gem", "gpt", "o4", "llam", "qwq"
                )
                .unwrap();
                out.push_str(&grid);
            }
        }
    }
    out
}

/// First four characters of a model name, counted in characters rather
/// than bytes — model names are not guaranteed to be ASCII, and a byte
/// slice panics on a multi-byte boundary.
fn model_abbrev(name: &str) -> String {
    name.chars().take(4).collect()
}

/// Fig. 3: per-(model, category) build-error counts, via the ground-truth
/// categories (the clustering pipeline's validation target).
pub fn fig3(results: &ExperimentResults) -> String {
    let counts = results.error_counts();
    let mut out = String::new();
    writeln!(out, "== Error category counts (Fig. 3) ==").unwrap();
    write!(out, "{:<34}", "Category").unwrap();
    for m in MODEL_ORDER {
        write!(out, " {:>6}", model_abbrev(m)).unwrap();
    }
    out.push('\n');
    for category in ErrorCategory::FIGURE3 {
        write!(out, "{:<34}", category.label()).unwrap();
        for model in MODEL_ORDER {
            let c = counts
                .get(&(model.to_string(), category))
                .copied()
                .unwrap_or(0);
            write!(out, " {c:>6}").unwrap();
        }
        out.push('\n');
    }
    out
}

/// Fig. 4: average total inference tokens per (technique, model, app),
/// averaged over pairs and generations, in thousands.
pub fn fig4(results: &ExperimentResults) -> String {
    let mut out = String::new();
    writeln!(out, "== Avg total inference tokens, thousands (Fig. 4) ==").unwrap();
    for technique in [Technique::NonAgentic, Technique::TopDownAgentic] {
        writeln!(out, "-- {technique} --").unwrap();
        for app in APP_ORDER {
            write!(out, "{app:<18}").unwrap();
            for model in MODEL_ORDER {
                let mut sum = 0.0;
                let mut n = 0.0;
                for pair in TranslationPair::ALL {
                    if let Some(c) = results.cell(pair, technique, model, app) {
                        if let Some(m) = c.tokens().mean() {
                            sum += m;
                            n += 1.0;
                        }
                    }
                }
                if n > 0.0 {
                    write!(out, " {:>8.1}", sum / n / 1000.0).unwrap();
                } else {
                    write!(out, " {:>8}", "-").unwrap();
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Fig. 5: expected token cost E_kappa (thousands), aggregated over pairs
/// with pass@1 > 0.
pub fn fig5(results: &ExperimentResults) -> String {
    let mut out = String::new();
    writeln!(out, "== Expected tokens for success, thousands (Fig. 5) ==").unwrap();
    for technique in [Technique::NonAgentic, Technique::TopDownAgentic] {
        writeln!(out, "-- {technique} --").unwrap();
        for app in APP_ORDER {
            write!(out, "{app:<18}").unwrap();
            for model in MODEL_ORDER {
                let mut acc = Vec::new();
                for pair in TranslationPair::ALL {
                    if let Some(c) = results.cell(pair, technique, model, app) {
                        let p = c.rate(Metric::Pass, Scoring::Overall, 1);
                        if let (true, Some(t)) = (p > 0.0, c.tokens().mean()) {
                            if let Some(e) = expected_token_cost(p, t) {
                                acc.push(e);
                            }
                        }
                    }
                }
                if acc.is_empty() {
                    write!(out, " {:>9}", "-").unwrap();
                } else {
                    let mean = acc.iter().sum::<f64>() / acc.len() as f64;
                    write!(out, " {:>9.1}", mean / 1000.0).unwrap();
                }
            }
            out.push('\n');
        }
    }
    out
}

/// The repair-loop report: build@1 / pass@1 and token cost *as a function
/// of repair round*, per model, averaged over the feasible cells of the
/// grid. Round 0 is the one-shot harness; round r is the state after r
/// bounded repair rounds. E_kappa follows paper Eq. 2 with repair tokens
/// included in the per-generation cost.
///
/// Denominator caveat, inherited from the paper's own aggregation rule:
/// the rate and token rows average over a *fixed* cell set, but E_kappa is
/// only defined where pass@1 > 0, so its per-round mean averages over the
/// cells solvable *at that round*. A cell that becomes barely solvable in
/// a later round joins the pool with a large E_kappa and can raise the
/// printed mean even when every individual cell got cheaper — compare a
/// single cell across rounds (`CellResult::rate_at_round` +
/// `tokens_at_round`) when population drift matters.
pub fn repair_report(results: &ExperimentResults) -> String {
    let max_round = results.max_repair_round();
    let mut out = String::new();
    writeln!(
        out,
        "== build@1 / pass@1 by repair round (Overall scoring) =="
    )
    .unwrap();
    write!(out, "{:<34}", "").unwrap();
    for r in 0..=max_round {
        write!(out, " {:>7}", format!("r{r}")).unwrap();
    }
    out.push('\n');

    // One row per model, one column per round: the mean of `value` over
    // the grid's feasible, sampled cells ("-" when no cell contributes).
    let rows = |out: &mut String,
                decimals: usize,
                value: &dyn Fn(&crate::collect::CellResult, u32) -> Option<f64>| {
        for model in MODEL_ORDER {
            write!(out, "{model:<34}").unwrap();
            for round in 0..=max_round {
                let mut sum = 0.0;
                let mut n = 0usize;
                for (key, cell) in &results.cells {
                    if key.model == model && cell.feasible() && cell.samples() > 0 {
                        if let Some(v) = value(cell, round) {
                            sum += v;
                            n += 1;
                        }
                    }
                }
                if n > 0 {
                    write!(out, " {:>7.decimals$}", sum / n as f64).unwrap();
                } else {
                    write!(out, " {:>7}", "-").unwrap();
                }
            }
            out.push('\n');
        }
    };

    for (label, metric) in [("build@1", Metric::Build), ("pass@1", Metric::Pass)] {
        writeln!(out, "-- {label} --").unwrap();
        rows(&mut out, 2, &|cell, round| {
            Some(cell.rate_at_round(metric, Scoring::Overall, 1, round))
        });
    }
    writeln!(out, "-- mean tokens per sample, thousands --").unwrap();
    rows(&mut out, 1, &|cell, round| {
        Some(cell.tokens_at_round(round).mean()? / 1000.0)
    });
    writeln!(
        out,
        "-- E_kappa, thousands (Eq. 2; repair tokens included) --"
    )
    .unwrap();
    rows(&mut out, 1, &|cell, round| {
        let p = cell.rate_at_round(Metric::Pass, Scoring::Overall, 1, round);
        let t = cell.tokens_at_round(round).mean()?;
        if p > 0.0 {
            Some(expected_token_cost(p, t)? / 1000.0)
        } else {
            None
        }
    });
    out
}

/// Static-analysis report: per-(model, rule) finding counts over the whole
/// grid, then race_free@1 per model averaged over the feasible, sampled
/// cells. An all-zero table means either a race-clean grid or a grid run
/// with `EvalConfig::analyze` off — the analyzer records nothing when off.
pub fn race_report(results: &ExperimentResults) -> String {
    let counts = results.race_finding_counts();
    let mut out = String::new();
    writeln!(out, "== Static race & directive analysis ==").unwrap();
    write!(out, "{:<24}", "Rule").unwrap();
    for m in MODEL_ORDER {
        write!(out, " {:>6}", model_abbrev(m)).unwrap();
    }
    out.push('\n');
    for rule in minihpc_analyze::Rule::ALL {
        write!(out, "{:<24}", rule.id()).unwrap();
        for model in MODEL_ORDER {
            let c = counts.get(&(model.to_string(), rule)).copied().unwrap_or(0);
            write!(out, " {c:>6}").unwrap();
        }
        out.push('\n');
    }
    writeln!(out, "-- race_free@1 (built and analysis-clean) --").unwrap();
    for model in MODEL_ORDER {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (key, cell) in &results.cells {
            if key.model == model && cell.feasible() && cell.samples() > 0 {
                sum += cell.race_free_at_k(1);
                n += 1;
            }
        }
        if n > 0 {
            writeln!(out, "{:<24} {:>6.2}", model, sum / n as f64).unwrap();
        } else {
            writeln!(out, "{:<24} {:>6}", model, "-").unwrap();
        }
    }
    out
}

/// Table 2: estimated cost ($ for the cheapest commercial model, node-hours
/// for the cheapest local model) per successful translation of the three
/// XOR applications.
pub fn table2(results: &ExperimentResults) -> String {
    let models = all_models();
    let o4 = models.iter().find(|m| m.name == "o4-mini").unwrap();
    let llama = models.iter().find(|m| m.name == "Llama-3.3-70B").unwrap();
    let apps = ["nanoXOR", "microXORh", "microXOR"];
    let mut out = String::new();
    writeln!(
        out,
        "== Estimated cost per successful translation (Table 2) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>10} {:>11} {:>10}",
        "", apps[0], apps[1], apps[2]
    )
    .unwrap();
    for (label, model) in [
        ("Non-agentic o4-mini", o4),
        ("Non-agentic Llama-3.3", llama),
    ] {
        write!(out, "{label:<28}").unwrap();
        for app in apps {
            let mut ek = Vec::new();
            for pair in TranslationPair::ALL {
                if let Some(c) = results.cell(pair, Technique::NonAgentic, model.name, app) {
                    let p = c.rate(Metric::Pass, Scoring::Overall, 1);
                    if let (true, Some(t)) = (p > 0.0, c.tokens().mean()) {
                        if let Some(e) = expected_token_cost(p, t) {
                            ek.push(e);
                        }
                    }
                }
            }
            if ek.is_empty() {
                write!(out, " {:>10}", "-").unwrap();
                continue;
            }
            let tokens = ek.iter().sum::<f64>() / ek.len() as f64;
            if model.local_tokens_per_second > 0.0 {
                let nh = node_hours(tokens as u64, model.local_tokens_per_second);
                write!(out, " {nh:>8.2}nh").unwrap();
            } else {
                // Approximate input/output split from the profile multiplier.
                let out_frac = 0.35;
                let d = dollar_cost(
                    (tokens * (1.0 - out_frac)) as u64,
                    (tokens * out_frac) as u64,
                    model.price_in_per_mtok,
                    model.price_out_per_mtok,
                );
                write!(out, " {:>9}", format!("${d:.2}")).unwrap();
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_apps_and_increasing_size() {
        let t = table1();
        for app in APP_ORDER {
            assert!(t.contains(app), "missing {app} in:\n{t}");
        }
        // Extract SLoC column and check nanoXOR < XSBench.
        let sloc = |name: &str| -> usize {
            t.lines()
                .find(|l| l.starts_with(name))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        assert!(sloc("nanoXOR") < sloc("XSBench"));
        assert!(sloc("SimpleMOC-kernel") < sloc("XSBench"));
    }

    #[test]
    fn model_abbrev_is_char_safe_on_multibyte_names() {
        // A byte slice `&m[..4]` panics here: the 4th byte falls inside
        // the two-byte 'é'. The char-based abbrev must not.
        assert_eq!(model_abbrev("gém-2.5"), "gém-");
        assert_eq!(model_abbrev("日本語モデル"), "日本語モ");
        assert_eq!(model_abbrev("o4"), "o4");
        assert_eq!(model_abbrev(""), "");
    }

    #[test]
    fn race_report_renders_every_rule_on_an_empty_grid() {
        let results = ExperimentResults {
            cells: std::collections::BTreeMap::new(),
        };
        let r = race_report(&results);
        for rule in minihpc_analyze::Rule::ALL {
            assert!(r.contains(rule.id()), "missing {} in:\n{r}", rule.id());
        }
        assert!(r.contains("race_free@1"));
    }
}
