//! # pareval-core
//!
//! The ParEval-Repo harness: the sixteen translation tasks, the layered
//! experiment API (N generations per task × technique × model cell, each
//! evaluated through the real MiniHPC build + run pipeline under both the
//! "Code-only" and "Overall" scorings), and plain-text emitters for every
//! table and figure of the paper.
//!
//! The experiment API has three layers:
//!
//! 1. **Plan** ([`plan`]) — [`ExperimentPlan::builder`] deterministically
//!    enumerates typed cells ([`CellKey`], [`CellSpec`]) and per-sample work
//!    units ([`SampleSpec`]), resolving feasibility up front.
//! 2. **Runner** ([`runner`]) — a [`Runner`] executes the plan:
//!    [`SerialRunner`] on one thread, [`ParallelRunner`] sharded across
//!    scoped workers. Both stream [`SampleRecord`]s to a [`ProgressSink`]
//!    and produce byte-identical results for the same plan.
//! 3. **Collector** ([`collect`]) — [`ExperimentResults`] retains the raw
//!    records and recomputes every metric on demand, including
//!    [`CellResult::pass_at_k`] / [`CellResult::build_at_k`] for k > 1.
//!
//! ```no_run
//! use pareval_core::{report, ExperimentPlan, ParallelRunner, Runner};
//!
//! let plan = ExperimentPlan::quick();
//! let results = ParallelRunner::new(4).run(&plan);
//! println!("{}", report::fig2(
//!     &results,
//!     minihpc_lang::TranslationPair::CUDA_TO_OMP_OFFLOAD,
//!     true,
//! ));
//! ```

pub mod collect;
pub mod experiment;
pub mod plan;
pub mod report;
pub mod runner;
pub mod task;

pub use collect::{CellResult, ExperimentResults, Metric};
pub use experiment::ExperimentConfig;
pub use plan::{CellKey, CellQuery, CellSpec, ExperimentPlan, ExperimentPlanBuilder, SampleSpec};
pub use runner::{
    execute_spec, CountingSink, NullSink, ParallelRunner, ProgressSink, Runner, SampleRecord,
    SerialRunner,
};
pub use task::{
    all_tasks, evaluate, run_sample, EvalConfig, EvalOutcome, SampleResult, Scoring, Task,
};

#[allow(deprecated)]
pub use experiment::run_experiment;
