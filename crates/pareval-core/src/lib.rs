//! # pareval-core
//!
//! The ParEval-Repo harness: the sixteen translation tasks, the layered
//! experiment API (N generations per task × technique × model cell, each
//! evaluated through the real MiniHPC build + run pipeline under both the
//! "Code-only" and "Overall" scorings), and plain-text emitters for every
//! table and figure of the paper.
//!
//! The experiment API has four layers:
//!
//! 1. **Plan** ([`plan`]) — [`ExperimentPlan::builder`] deterministically
//!    enumerates typed cells ([`CellKey`], [`CellSpec`]) and per-sample work
//!    units ([`SampleSpec`]), resolving feasibility up front and binding
//!    each cell to a [`pareval_llm::TranslationBackend`] (grids can mix
//!    backends per cell).
//! 2. **Pipeline** ([`eval`]) — an [`EvalPipeline`] turns one sample spec
//!    into a [`SampleResult`]: backend attempt → technique → build → run →
//!    score, through a content-addressed [`BuildCache`] shared by every
//!    worker of a run. With [`EvalConfig::repair_budget`] > 0, failed
//!    builds get bounded repair rounds — categorized diagnostics fed back
//!    to the attempt, revised files re-evaluated — tracked per round in
//!    [`RepairRound`].
//! 3. **Runner** ([`runner`], [`sched`]) — a [`Runner`] executes the plan:
//!    [`SerialRunner`] on one thread, or the work-stealing
//!    [`ScheduledRunner`] across scoped workers (per-worker LIFO deques +
//!    a shared injector seeded most-expensive-first by
//!    [`SampleSpec::cost_hint`]; [`RoundRobinRunner`] keeps the old static
//!    sharding as the benchmark baseline). All stream [`SampleRecord`]s to
//!    a [`ProgressSink`] and produce byte-identical results for the same
//!    plan — cached or not, at any worker count. With a [`JournalSink`]
//!    attached, completed samples are checkpointed to an append-only
//!    on-disk journal and a crashed run continues via [`Runner::resume`]
//!    (see [`journal`]).
//! 4. **Collector** ([`collect`]) — [`ExperimentResults`] retains the raw
//!    records and recomputes every metric on demand, including
//!    [`CellResult::pass_at_k`] / [`CellResult::build_at_k`] for k > 1.
//!
//! ```no_run
//! use pareval_core::{report, ExperimentPlan, Runner, ScheduledRunner};
//!
//! let plan = ExperimentPlan::quick();
//! let results = ScheduledRunner::new(4).run(&plan);
//! println!("{}", report::fig2(
//!     &results,
//!     minihpc_lang::TranslationPair::CUDA_TO_OMP_OFFLOAD,
//!     true,
//! ));
//! ```
//!
//! Backends other than the default simulation plug in at the plan:
//!
//! ```no_run
//! use pareval_core::{ExperimentPlan, SerialRunner, Runner};
//! use pareval_llm::OracleBackend;
//! use std::sync::Arc;
//!
//! let plan = ExperimentPlan::builder()
//!     .backend(Arc::new(OracleBackend))
//!     .build();
//! let upper_bound = SerialRunner.run(&plan);
//! ```

pub mod collect;
pub mod eval;
pub mod journal;
pub mod plan;
pub mod report;
pub mod runner;
pub mod sched;
pub mod task;

pub use collect::{CellResult, ExperimentResults, Metric};
pub use eval::{BuildCache, CacheStats, EvalPipeline};
pub use journal::{JournalError, JournalReader, JournalSink, Replay};
pub use minihpc_analyze::{
    AnalysisFinding, Confidence as AnalysisConfidence, FixIt, FixItEdit, Rule as AnalysisRule,
};
pub use plan::{
    CellFilter, CellKey, CellQuery, CellSpec, ExperimentPlan, ExperimentPlanBuilder, SampleSpec,
};
#[allow(deprecated)]
pub use runner::ParallelRunner;
pub use runner::{
    CountingSink, NullSink, ProgressSink, RoundRobinRunner, Runner, SampleRecord, SerialRunner,
};
pub use sched::{SchedStats, ScheduledRunner};
pub use task::{all_tasks, EvalConfig, EvalOutcome, RepairRound, SampleResult, Scoring, Task};
