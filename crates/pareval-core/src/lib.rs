//! # pareval-core
//!
//! The ParEval-Repo harness: the sixteen translation tasks, the layered
//! experiment API (N generations per task × technique × model cell, each
//! evaluated through the real MiniHPC build + run pipeline under both the
//! "Code-only" and "Overall" scorings), and plain-text emitters for every
//! table and figure of the paper.
//!
//! The experiment API has four layers:
//!
//! 1. **Plan** ([`plan`]) — [`ExperimentPlan::builder`] deterministically
//!    enumerates typed cells ([`CellKey`], [`CellSpec`]) and per-sample work
//!    units ([`SampleSpec`]), resolving feasibility up front and binding
//!    each cell to a [`pareval_llm::TranslationBackend`] (grids can mix
//!    backends per cell).
//! 2. **Pipeline** ([`eval`]) — an [`EvalPipeline`] turns one sample spec
//!    into a [`SampleResult`]: backend attempt → technique → build → run →
//!    score, through a content-addressed [`BuildCache`] shared by every
//!    worker of a run. With [`EvalConfig::repair_budget`] > 0, failed
//!    builds get bounded repair rounds — categorized diagnostics fed back
//!    to the attempt, revised files re-evaluated — tracked per round in
//!    [`RepairRound`].
//! 3. **Runner** ([`runner`]) — a [`Runner`] executes the plan:
//!    [`SerialRunner`] on one thread, [`ParallelRunner`] sharded across
//!    scoped workers. Both stream [`SampleRecord`]s to a [`ProgressSink`]
//!    and produce byte-identical results for the same plan — cached or
//!    not.
//! 4. **Collector** ([`collect`]) — [`ExperimentResults`] retains the raw
//!    records and recomputes every metric on demand, including
//!    [`CellResult::pass_at_k`] / [`CellResult::build_at_k`] for k > 1.
//!
//! ```no_run
//! use pareval_core::{report, ExperimentPlan, ParallelRunner, Runner};
//!
//! let plan = ExperimentPlan::quick();
//! let results = ParallelRunner::new(4).run(&plan);
//! println!("{}", report::fig2(
//!     &results,
//!     minihpc_lang::TranslationPair::CUDA_TO_OMP_OFFLOAD,
//!     true,
//! ));
//! ```
//!
//! Backends other than the default simulation plug in at the plan:
//!
//! ```no_run
//! use pareval_core::{ExperimentPlan, SerialRunner, Runner};
//! use pareval_llm::OracleBackend;
//! use std::sync::Arc;
//!
//! let plan = ExperimentPlan::builder()
//!     .backend(Arc::new(OracleBackend))
//!     .build();
//! let upper_bound = SerialRunner.run(&plan);
//! ```

pub mod collect;
pub mod eval;
pub mod plan;
pub mod report;
pub mod runner;
pub mod task;

pub use collect::{CellResult, ExperimentResults, Metric};
pub use eval::{BuildCache, CacheStats, EvalPipeline};
pub use plan::{
    CellFilter, CellKey, CellQuery, CellSpec, ExperimentPlan, ExperimentPlanBuilder, SampleSpec,
};
pub use runner::{
    CountingSink, NullSink, ParallelRunner, ProgressSink, Runner, SampleRecord, SerialRunner,
};
pub use task::{all_tasks, EvalConfig, EvalOutcome, RepairRound, SampleResult, Scoring, Task};
