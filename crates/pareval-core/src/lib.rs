//! # pareval-core
//!
//! The ParEval-Repo harness: the sixteen translation tasks, the experiment
//! runner (N generations per task × technique × model cell, each evaluated
//! through the real MiniHPC build + run pipeline under both the "Code-only"
//! and "Overall" scorings), and plain-text emitters for every table and
//! figure of the paper.
//!
//! ```no_run
//! use pareval_core::{run_experiment, ExperimentConfig, report};
//!
//! let results = run_experiment(&ExperimentConfig::quick());
//! println!("{}", report::fig2(
//!     &results,
//!     minihpc_lang::TranslationPair::CUDA_TO_OMP_OFFLOAD,
//!     true,
//! ));
//! ```

pub mod experiment;
pub mod report;
pub mod task;

pub use experiment::{run_experiment, CellResult, ExperimentConfig, ExperimentResults};
pub use task::{all_tasks, evaluate, run_sample, EvalConfig, EvalOutcome, SampleResult, Task};
