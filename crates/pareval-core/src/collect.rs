//! The Collector layer: aggregation of raw [`SampleRecord`]s into
//! [`ExperimentResults`].
//!
//! The collector retains every record, and every metric — build@k, pass@k,
//! token means, error logs — is recomputed from them on demand, never
//! cached. That preserves the harness invariant that two code paths cannot
//! disagree about a metric, and it is what makes pass@k for k > 1 possible
//! at all: an aggregate-counts design cannot answer "how many of C(n, k)
//! draws contain a success" after the fact.
//!
//! Construction is atomic per cell: a cell is either infeasible with no
//! records, or feasible with exactly its scheduled records. A
//! partially-filled infeasible cell — the old runner's `break` left token
//! and error-log accumulators populated when a cell went infeasible
//! mid-loop — is unrepresentable.
//!
//! ## Streaming aggregation
//!
//! Retaining every record is O(total samples) in memory, which a
//! thousand-cell generated grid cannot afford. A plan built with
//! [`streaming(true)`](crate::plan::ExperimentPlanBuilder::streaming)
//! instead folds each record into per-cell *sufficient statistics*
//! ([`CellStats`]) the moment it arrives. The folded form is exact, not
//! approximate: `pass@k` needs only `(samples, successes)` counts for any
//! k, per-round rates need one counter row per repair round (bounded by
//! the repair budget), and token means are integer sums below 2^53 —
//! every count/rate accessor returns bit-identical values in both modes,
//! and folding is order-independent so work-stolen shards agree with a
//! serial run. What streaming gives up is exactly the raw per-sample
//! views: [`CellResult::records`] and [`CellResult::error_logs`] come
//! back empty (categorical error counts survive via [`CellStats`]).

use crate::plan::{CellKey, CellQuery, ExperimentPlan};
use crate::runner::SampleRecord;
use crate::task::{EvalOutcome, Scoring};
use minihpc_build::ErrorCategory;
use minihpc_lang::model::TranslationPair;
use pareval_errclust::LogEntry;
use pareval_metrics::{pass_at_k, MeanAccumulator};
use pareval_translate::Technique;
use std::collections::BTreeMap;

/// Which success criterion a rate is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// The translation compiled.
    Build,
    /// The translation compiled, produced correct output, and executed on
    /// the specified hardware.
    Pass,
}

/// Per-cell sufficient statistics: everything the count/rate accessors
/// need, folded one sample at a time. Every field is an order-independent
/// aggregate (integer sums, maxes, count maps), so any fold order yields
/// the same value — the streaming analogue of the collector's
/// sort-by-sample-index normalisation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellStats {
    samples: u64,
    /// Final successes, indexed `[metric][scoring]` (Build/Pass ×
    /// CodeOnly/Overall).
    successes: [[u64; 2]; 2],
    race_free: u64,
    max_round: u32,
    token_total: u64,
    /// One slot per repair round, `rounds[r]` = the cell's aggregate as of
    /// round r with each sample's trajectory clamped to its own length —
    /// the exact fold of [`CellResult::successes_at_round`] /
    /// [`CellResult::tokens_at_round`]. Length is the deepest trajectory
    /// seen (≤ repair budget + 1), never O(samples).
    rounds: Vec<RoundSlot>,
    errors: BTreeMap<ErrorCategory, u64>,
    race_rules: BTreeMap<minihpc_analyze::Rule, u64>,
    /// Findings that carried a machine-applicable fix-it.
    fixits: u64,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct RoundSlot {
    successes: [[u64; 2]; 2],
    token_total: u64,
}

fn metric_index(metric: Metric) -> usize {
    match metric {
        Metric::Build => 0,
        Metric::Pass => 1,
    }
}

fn scoring_index(scoring: Scoring) -> usize {
    match scoring {
        Scoring::CodeOnly => 0,
        Scoring::Overall => 1,
    }
}

/// `[built, passed]` counts of one optional outcome.
fn outcome_flags(o: Option<&EvalOutcome>) -> [u64; 2] {
    match o {
        Some(o) => [u64::from(o.built), u64::from(o.passed)],
        None => [0, 0],
    }
}

impl CellStats {
    fn fold(&mut self, result: &crate::task::SampleResult) {
        self.samples += 1;
        let co = outcome_flags(result.code_only.as_ref());
        let ov = outcome_flags(result.overall.as_ref());
        for m in 0..2 {
            self.successes[m][0] += co[m];
            self.successes[m][1] += ov[m];
        }
        self.race_free += u64::from(result.race_free());
        self.max_round = self
            .max_round
            .max(result.rounds.last().map_or(0, |r| r.round));
        self.token_total += result.tokens.total();
        // The sample's per-round trajectory; a sample without one (build
        // succeeded, or budget 0) reports its final outcome at every
        // round, i.e. a constant length-1 trajectory.
        let traj: Vec<([[u64; 2]; 2], u64)> = if result.rounds.is_empty() {
            vec![([[co[0], ov[0]], [co[1], ov[1]]], result.tokens.total())]
        } else {
            result
                .rounds
                .iter()
                .map(|r| {
                    let co = outcome_flags(Some(&r.code_only));
                    let ov = outcome_flags(Some(&r.overall));
                    ([[co[0], ov[0]], [co[1], ov[1]]], r.tokens.total())
                })
                .collect()
        };
        // Beyond its own trajectory a sample's outcome is constant, so
        // slots grown later start as a copy of the current last slot —
        // every previously folded sample is already clamped there.
        while self.rounds.len() < traj.len() {
            let carried = self.rounds.last().cloned().unwrap_or_default();
            self.rounds.push(carried);
        }
        for (r, slot) in self.rounds.iter_mut().enumerate() {
            let (succ, tokens) = &traj[r.min(traj.len() - 1)];
            for (acc, add) in slot
                .successes
                .iter_mut()
                .flatten()
                .zip(succ.iter().flatten())
            {
                *acc += add;
            }
            slot.token_total += tokens;
        }
        if let Some(o) = result.overall.as_ref().filter(|o| !o.built) {
            if let Some(category) = o.error_category {
                *self.errors.entry(category).or_default() += 1;
            }
        }
        for finding in &result.analysis {
            *self.race_rules.entry(finding.rule).or_default() += 1;
            self.fixits += u64::from(finding.fixit.is_some());
        }
    }
}

/// All retained samples of one cell — or, under streaming aggregation,
/// their folded sufficient statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellResult {
    feasible: bool,
    records: Vec<SampleRecord>,
    stats: Option<CellStats>,
}

impl CellResult {
    fn infeasible() -> Self {
        CellResult {
            feasible: false,
            records: Vec::new(),
            stats: None,
        }
    }

    /// Fold one record in streaming mode: the aggregate-only counterpart
    /// of pushing onto `records`, with identical feasibility semantics
    /// (an infeasible record demotes the whole cell atomically).
    pub(crate) fn fold_record(&mut self, record: &SampleRecord) {
        if !record.result.feasible {
            *self = CellResult::infeasible();
            return;
        }
        if !self.feasible {
            return;
        }
        self.stats
            .get_or_insert_with(CellStats::default)
            .fold(&record.result);
    }

    /// Was this configuration runnable at all?
    pub fn feasible(&self) -> bool {
        self.feasible
    }

    pub fn samples(&self) -> u64 {
        match &self.stats {
            Some(s) => s.samples,
            None => self.records.len() as u64,
        }
    }

    /// The raw per-sample records, ordered by sample index. Empty under
    /// streaming aggregation — the records were folded, not retained.
    pub fn records(&self) -> &[SampleRecord] {
        &self.records
    }

    fn outcome(record: &SampleRecord, scoring: Scoring) -> Option<&EvalOutcome> {
        match scoring {
            Scoring::CodeOnly => record.result.code_only.as_ref(),
            Scoring::Overall => record.result.overall.as_ref(),
        }
    }

    /// Successful samples under one metric and scoring.
    pub fn successes(&self, metric: Metric, scoring: Scoring) -> u64 {
        if let Some(s) = &self.stats {
            return s.successes[metric_index(metric)][scoring_index(scoring)];
        }
        self.records
            .iter()
            .filter_map(|r| Self::outcome(r, scoring))
            .filter(|o| match metric {
                Metric::Build => o.built,
                Metric::Pass => o.passed,
            })
            .count() as u64
    }

    /// The unbiased build@k / pass@k estimate (paper Eq. 1) for this cell,
    /// recomputed from the retained records. Zero-sample cells score 0.
    ///
    /// The estimator needs `k <= samples()`; for larger k it saturates —
    /// 1 when any sample succeeded, 0 otherwise — rather than erroring or
    /// extrapolating. This is [`pass_at_k`]'s documented edge semantics,
    /// pinned by a shared property test (`rate_agrees_with_pass_at_k`), so
    /// the two public call paths cannot drift apart.
    pub fn rate(&self, metric: Metric, scoring: Scoring, k: u32) -> f64 {
        pass_at_k(
            self.samples(),
            self.successes(metric, scoring),
            u64::from(k),
        )
    }

    /// A record's outcome as of repair round `round` (0 = before any
    /// repair). Records without a repair trajectory — the build succeeded,
    /// the cell ran with `repair_budget = 0`, or the sample was infeasible
    /// — report their final outcome at every round. Rounds beyond the
    /// recorded trajectory report the last recorded state (once a sample
    /// stops repairing, its outcome is final).
    fn outcome_at_round(
        record: &SampleRecord,
        scoring: Scoring,
        round: u32,
    ) -> Option<&EvalOutcome> {
        let rounds = &record.result.rounds;
        if rounds.is_empty() {
            return Self::outcome(record, scoring);
        }
        let r = &rounds[(round as usize).min(rounds.len() - 1)];
        Some(match scoring {
            Scoring::CodeOnly => &r.code_only,
            Scoring::Overall => &r.overall,
        })
    }

    /// Successful samples under one metric and scoring, as of repair round
    /// `round`.
    pub fn successes_at_round(&self, metric: Metric, scoring: Scoring, round: u32) -> u64 {
        if let Some(s) = &self.stats {
            if s.rounds.is_empty() {
                return s.successes[metric_index(metric)][scoring_index(scoring)];
            }
            let slot = &s.rounds[(round as usize).min(s.rounds.len() - 1)];
            return slot.successes[metric_index(metric)][scoring_index(scoring)];
        }
        self.records
            .iter()
            .filter_map(|r| Self::outcome_at_round(r, scoring, round))
            .filter(|o| match metric {
                Metric::Build => o.built,
                Metric::Pass => o.passed,
            })
            .count() as u64
    }

    /// build@k / pass@k as of repair round `round` — the Fig. 2 estimator
    /// over the outcomes each sample had after `round` repair rounds.
    /// `rate_at_round(m, s, k, budget)` equals [`CellResult::rate`].
    pub fn rate_at_round(&self, metric: Metric, scoring: Scoring, k: u32, round: u32) -> f64 {
        pass_at_k(
            self.samples(),
            self.successes_at_round(metric, scoring, round),
            u64::from(k),
        )
    }

    /// The deepest repair round any retained sample recorded (0 when no
    /// sample entered the repair loop).
    pub fn max_repair_round(&self) -> u32 {
        if let Some(s) = &self.stats {
            return s.max_round;
        }
        self.records
            .iter()
            .filter_map(|r| r.result.rounds.last())
            .map(|round| round.round)
            .max()
            .unwrap_or(0)
    }

    /// Mean cumulative tokens per sample as of repair round `round` —
    /// repair tokens count toward E_kappa (paper Eq. 2), so the round-R
    /// token cost pairs with the round-R pass rate.
    pub fn tokens_at_round(&self, round: u32) -> MeanAccumulator {
        if let Some(s) = &self.stats {
            let total = if s.rounds.is_empty() {
                s.token_total
            } else {
                s.rounds[(round as usize).min(s.rounds.len() - 1)].token_total
            };
            return MeanAccumulator::from_sum_count(total as f64, s.samples);
        }
        let mut acc = MeanAccumulator::default();
        for r in &self.records {
            let rounds = &r.result.rounds;
            let t = if rounds.is_empty() {
                r.result.tokens
            } else {
                rounds[(round as usize).min(rounds.len() - 1)].tokens
            };
            acc.add(t.total() as f64);
        }
        acc
    }

    pub fn build_at_k(&self, scoring: Scoring, k: u32) -> f64 {
        self.rate(Metric::Build, scoring, k)
    }

    pub fn pass_at_k(&self, scoring: Scoring, k: u32) -> f64 {
        self.rate(Metric::Pass, scoring, k)
    }

    /// Samples that built and carried no error-severity analysis finding.
    /// Zero unless the grid ran with `EvalConfig::analyze` on.
    pub fn race_free_samples(&self) -> u64 {
        if let Some(s) = &self.stats {
            return s.race_free;
        }
        self.records.iter().filter(|r| r.result.race_free()).count() as u64
    }

    /// race_free@k: the Eq. 1 estimator over samples whose build succeeded
    /// and whose static analysis reported no error-severity finding.
    pub fn race_free_at_k(&self, k: u32) -> f64 {
        pareval_metrics::race_free_at_k(self.samples(), self.race_free_samples(), u64::from(k))
    }

    /// Mean total inference tokens per sample, accumulated in sample order.
    pub fn tokens(&self) -> MeanAccumulator {
        if let Some(s) = &self.stats {
            return MeanAccumulator::from_sum_count(s.token_total as f64, s.samples);
        }
        let mut acc = MeanAccumulator::default();
        for r in &self.records {
            acc.add(r.result.tokens.total() as f64);
        }
        acc
    }

    /// Failed-build logs with ground-truth categories (Fig. 3 input),
    /// in sample order. Empty under streaming aggregation — log text is a
    /// raw per-sample view; use [`Self::error_category_counts`] for the
    /// categorical summary, which survives folding.
    pub fn error_logs(&self) -> impl Iterator<Item = LogEntry> + '_ {
        self.records.iter().filter_map(|r| {
            let overall = r.result.overall.as_ref()?;
            if overall.built {
                return None;
            }
            let truth = overall.error_category?;
            Some(LogEntry {
                text: overall.build_log.clone(),
                truth,
            })
        })
    }

    /// Per-category counts of failed overall builds — available in both
    /// collection modes.
    pub fn error_category_counts(&self) -> BTreeMap<ErrorCategory, u64> {
        if let Some(s) = &self.stats {
            return s.errors.clone();
        }
        let mut out: BTreeMap<ErrorCategory, u64> = BTreeMap::new();
        for r in &self.records {
            if let Some(o) = r.result.overall.as_ref().filter(|o| !o.built) {
                if let Some(category) = o.error_category {
                    *out.entry(category).or_default() += 1;
                }
            }
        }
        out
    }

    /// Findings that carried a machine-applicable fix-it — available in
    /// both collection modes. Zero unless the grid ran with
    /// `EvalConfig::analyze` on.
    pub fn fixit_count(&self) -> u64 {
        if let Some(s) = &self.stats {
            return s.fixits;
        }
        self.records
            .iter()
            .flat_map(|r| &r.result.analysis)
            .filter(|f| f.fixit.is_some())
            .count() as u64
    }

    /// Per-rule counts of static-analysis findings — available in both
    /// collection modes.
    pub fn finding_rule_counts(&self) -> BTreeMap<minihpc_analyze::Rule, u64> {
        if let Some(s) = &self.stats {
            return s.race_rules.clone();
        }
        let mut out: BTreeMap<minihpc_analyze::Rule, u64> = BTreeMap::new();
        for r in &self.records {
            for finding in &r.result.analysis {
                *out.entry(finding.rule).or_default() += 1;
            }
        }
        out
    }
}

/// All cell results of one experiment run, keyed by [`CellKey`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentResults {
    pub cells: BTreeMap<CellKey, CellResult>,
}

impl ExperimentResults {
    /// Collect runner output into per-cell results.
    ///
    /// Accepts any record source — a runner's `Vec`, or a lazy journal
    /// replay chained with fresh records (see
    /// [`Runner::resume`](crate::runner::Runner::resume)) — and consumes it
    /// in a single pass, moving each record straight into its cell: peak
    /// retained records = the final per-cell total plus the one record in
    /// flight, never an extra buffered copy of the input.
    ///
    /// Records are restored to canonical `(CellKey, sample_index)` order
    /// before the results are returned, so any execution order (serial,
    /// sharded, work-stolen, resumed) yields identical results. Cell
    /// construction is atomic: a cell whose plan — or any of whose records
    /// — says infeasible holds no records at all.
    ///
    /// # Panics
    ///
    /// Panics if a record's [`CellKey`] does not appear in `plan` — every
    /// record must come from executing that plan's own [`SampleSpec`]s
    /// (replaying records against a narrower plan is a caller bug, not a
    /// recoverable state).
    ///
    /// [`SampleSpec`]: crate::plan::SampleSpec
    pub fn from_records(
        plan: &ExperimentPlan,
        records: impl IntoIterator<Item = SampleRecord>,
    ) -> Self {
        let mut cells = Self::seeded_cells(plan);
        if plan.streaming() {
            for record in records {
                cells
                    .get_mut(&record.key)
                    .expect("runner produced a record for a cell not in the plan")
                    .fold_record(&record);
            }
            return ExperimentResults { cells };
        }
        for record in records {
            let cell = cells
                .get_mut(&record.key)
                .expect("runner produced a record for a cell not in the plan");
            if !record.result.feasible {
                // All samples of a cell share the plan's feasibility; a
                // single infeasible record marks its whole cell not-run,
                // dropping any records already retained and blocking the
                // rest.
                *cell = CellResult::infeasible();
            } else if cell.feasible {
                cell.records.push(record);
            }
        }
        // Per-cell sort by sample index == the old global (key, index) sort,
        // since the map is already keyed by cell.
        for cell in cells.values_mut() {
            cell.records.sort_by_key(|r| r.sample_index);
        }
        ExperimentResults { cells }
    }

    /// The per-cell map every collection path starts from: one entry per
    /// plan cell with the plan's feasibility and no samples. (A feasible
    /// cell scheduled with zero samples is still feasible; an infeasible
    /// record demotes its cell during collection.)
    pub(crate) fn seeded_cells(plan: &ExperimentPlan) -> BTreeMap<CellKey, CellResult> {
        plan.cells()
            .iter()
            .map(|spec| {
                let cell = if spec.feasible {
                    CellResult {
                        feasible: true,
                        records: Vec::new(),
                        stats: None,
                    }
                } else {
                    CellResult::infeasible()
                };
                (spec.key, cell)
            })
            .collect()
    }

    pub fn cell(
        &self,
        pair: TranslationPair,
        technique: Technique,
        model: &str,
        app: &str,
    ) -> Option<&CellResult> {
        self.cells
            .get(&(pair, technique, model, app) as &dyn CellQuery)
    }

    /// The deepest repair round recorded anywhere in the grid (0 when the
    /// run had no repair budget or every build succeeded first try).
    pub fn max_repair_round(&self) -> u32 {
        self.cells
            .values()
            .map(CellResult::max_repair_round)
            .max()
            .unwrap_or(0)
    }

    /// Fig. 3 input: all failed-build logs across cells, tagged with model
    /// names, in `(CellKey, sample_index)` order.
    ///
    /// Note: `CellKey` orders pairs and techniques by enum declaration,
    /// where the pre-refactor string keys ordered them lexically by
    /// `pair.id()` / `technique.name()`. On grids spanning several pairs or
    /// techniques the log *sequence* therefore differs from the old API
    /// (the per-category counts of [`Self::error_counts`] do not), which
    /// can nudge the order-sensitive clustering pipeline downstream.
    pub fn error_logs_with_models(&self) -> Vec<(String, LogEntry)> {
        let mut out = Vec::new();
        for (key, cell) in &self.cells {
            for log in cell.error_logs() {
                out.push((key.model.to_string(), log));
            }
        }
        out
    }

    /// Per-(model, category) counts of build failures (the ground-truth
    /// counterpart of Fig. 3). Available in both collection modes.
    pub fn error_counts(&self) -> BTreeMap<(String, ErrorCategory), usize> {
        let mut out: BTreeMap<(String, ErrorCategory), usize> = BTreeMap::new();
        for (key, cell) in &self.cells {
            for (truth, n) in cell.error_category_counts() {
                *out.entry((key.model.to_string(), truth)).or_default() += n as usize;
            }
        }
        out
    }

    /// Per-(model, rule) counts of static-analysis findings across the
    /// grid. Empty unless the grid ran with `EvalConfig::analyze` on.
    /// Available in both collection modes.
    pub fn race_finding_counts(&self) -> BTreeMap<(String, minihpc_analyze::Rule), usize> {
        let mut out: BTreeMap<(String, minihpc_analyze::Rule), usize> = BTreeMap::new();
        for (key, cell) in &self.cells {
            for (rule, n) in cell.finding_rule_counts() {
                *out.entry((key.model.to_string(), rule)).or_default() += n as usize;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalPipeline;
    use crate::plan::ExperimentPlan;
    use crate::runner::{Runner, SerialRunner};
    use minihpc_lang::model::TranslationPair;
    use pareval_llm::all_models;
    use pareval_translate::Technique;

    fn one_cell_plan(samples: u32) -> ExperimentPlan {
        ExperimentPlan::builder()
            .samples(samples)
            // Seed 42 gives this cell a mixed pass record (4/6), so the
            // k > 1 estimates are strictly between pass@1 and 1.
            .seed(42)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
            .apps(["nanoXOR"])
            .build()
    }

    #[test]
    fn pass_at_k_grows_with_k() {
        let plan = one_cell_plan(6);
        let results = SerialRunner.run(&plan);
        let cell = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "o4-mini",
                "nanoXOR",
            )
            .unwrap();
        assert_eq!(cell.samples(), 6);
        let p1 = cell.pass_at_k(Scoring::CodeOnly, 1);
        let p5 = cell.pass_at_k(Scoring::CodeOnly, 5);
        // o4-mini passes this cell sometimes but not always, so a larger
        // draw strictly helps.
        assert!(p1 > 0.0, "p1 = {p1}");
        assert!(p5 > p1, "p5 = {p5} <= p1 = {p1}");
        assert!(p5 <= 1.0 + 1e-12);
        // build@k dominates pass@k for every k.
        for k in 1..=6 {
            assert!(cell.build_at_k(Scoring::CodeOnly, k) >= cell.pass_at_k(Scoring::CodeOnly, k));
        }
    }

    #[test]
    fn rate_of_empty_cell_is_zero() {
        let empty = CellResult::default();
        for metric in [Metric::Build, Metric::Pass] {
            for scoring in Scoring::ALL {
                assert_eq!(empty.rate(metric, scoring, 1), 0.0);
                assert_eq!(empty.rate(metric, scoring, 5), 0.0);
            }
        }
        assert!(empty.tokens().mean().is_none());
    }

    #[test]
    fn infeasible_cell_construction_is_atomic() {
        // Run real samples, then forge an infeasible record into the middle
        // of the batch: the whole cell must collapse to "not run" with no
        // leftover token / error-log state.
        let plan = one_cell_plan(3);
        let pipeline = EvalPipeline::new(plan.eval().clone());
        let mut records: Vec<_> = plan
            .sample_specs()
            .iter()
            .map(|s| pipeline.execute(&plan, s))
            .collect();
        let mut forged = records[1].clone();
        forged.result.feasible = false;
        forged.result.code_only = None;
        forged.result.overall = None;
        records[1] = forged;
        let results = ExperimentResults::from_records(&plan, records);
        let cell = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "o4-mini",
                "nanoXOR",
            )
            .unwrap();
        assert!(!cell.feasible());
        assert_eq!(cell.samples(), 0);
        assert!(cell.tokens().mean().is_none());
        assert_eq!(cell.error_logs().count(), 0);
    }

    #[test]
    fn results_equal_regardless_of_record_order() {
        let plan = one_cell_plan(4);
        let pipeline = EvalPipeline::new(plan.eval().clone());
        let records: Vec<_> = plan
            .sample_specs()
            .iter()
            .map(|s| pipeline.execute(&plan, s))
            .collect();
        let mut shuffled = records.clone();
        shuffled.reverse();
        assert_eq!(
            ExperimentResults::from_records(&plan, records),
            ExperimentResults::from_records(&plan, shuffled)
        );
    }

    #[test]
    fn per_round_accessors_default_to_final_outcome_without_repair() {
        // A budget-0 run records no rounds; every round must report the
        // final (only) outcome, and rate_at_round == rate.
        let plan = one_cell_plan(4);
        let results = SerialRunner.run(&plan);
        let cell = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "o4-mini",
                "nanoXOR",
            )
            .unwrap();
        assert_eq!(cell.max_repair_round(), 0);
        for round in [0, 1, 5] {
            for metric in [Metric::Build, Metric::Pass] {
                for scoring in Scoring::ALL {
                    assert_eq!(
                        cell.rate_at_round(metric, scoring, 1, round),
                        cell.rate(metric, scoring, 1)
                    );
                }
            }
            assert_eq!(cell.tokens_at_round(round).mean(), cell.tokens().mean());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::plan::CellKey;
    use crate::task::{EvalOutcome, SampleResult};
    use pareval_llm::TokenUsage;
    use proptest::prelude::*;

    /// A cell whose records succeed exactly where `successes` says.
    fn forged_cell(successes: &[bool]) -> CellResult {
        let key = CellKey {
            pair: TranslationPair::CUDA_TO_OMP_OFFLOAD,
            technique: Technique::NonAgentic,
            model: "o4-mini",
            app: "nanoXOR",
        };
        let records = successes
            .iter()
            .enumerate()
            .map(|(i, &ok)| {
                let outcome = EvalOutcome {
                    built: ok,
                    passed: ok,
                    error_category: None,
                    build_log: String::new(),
                    error_diagnostics: Vec::new(),
                };
                SampleRecord {
                    key,
                    sample_index: i as u32,
                    result: SampleResult {
                        feasible: true,
                        failure_reason: None,
                        code_only: Some(outcome.clone()),
                        overall: Some(outcome),
                        tokens: TokenUsage::default(),
                        rounds: Vec::new(),
                        analysis: Vec::new(),
                    },
                }
            })
            .collect();
        CellResult {
            feasible: true,
            records,
            stats: None,
        }
    }

    proptest! {
        /// The shared edge-semantics pin (see `pass_at_k`'s docs): the
        /// harness-side `CellResult::rate` must agree with the estimator
        /// for every k — including k > samples(), where both saturate to
        /// 1 iff any sample succeeded instead of erroring.
        #[test]
        fn rate_agrees_with_pass_at_k(
            pattern in proptest::collection::vec(any::<bool>(), 0..12),
            k in 1u32..30,
        ) {
            let cell = forged_cell(&pattern);
            let n = cell.samples();
            let c = cell.successes(Metric::Pass, Scoring::Overall);
            let v = cell.rate(Metric::Pass, Scoring::Overall, k);
            prop_assert_eq!(v, pass_at_k(n, c, u64::from(k)));
            if u64::from(k) > n {
                prop_assert_eq!(v, if c > 0 { 1.0 } else { 0.0 });
            }
        }
    }
}
