//! The Collector layer: aggregation of raw [`SampleRecord`]s into
//! [`ExperimentResults`].
//!
//! The collector retains every record, and every metric — build@k, pass@k,
//! token means, error logs — is recomputed from them on demand, never
//! cached. That preserves the harness invariant that two code paths cannot
//! disagree about a metric, and it is what makes pass@k for k > 1 possible
//! at all: an aggregate-counts design cannot answer "how many of C(n, k)
//! draws contain a success" after the fact.
//!
//! Construction is atomic per cell: a cell is either infeasible with no
//! records, or feasible with exactly its scheduled records. A
//! partially-filled infeasible cell — the old runner's `break` left token
//! and error-log accumulators populated when a cell went infeasible
//! mid-loop — is unrepresentable.

use crate::plan::{CellKey, CellQuery, ExperimentPlan};
use crate::runner::SampleRecord;
use crate::task::{EvalOutcome, Scoring};
use minihpc_build::ErrorCategory;
use minihpc_lang::model::TranslationPair;
use pareval_errclust::LogEntry;
use pareval_metrics::{pass_at_k, MeanAccumulator};
use pareval_translate::Technique;
use std::collections::BTreeMap;

/// Which success criterion a rate is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// The translation compiled.
    Build,
    /// The translation compiled, produced correct output, and executed on
    /// the specified hardware.
    Pass,
}

/// All retained samples of one cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellResult {
    feasible: bool,
    records: Vec<SampleRecord>,
}

impl CellResult {
    fn infeasible() -> Self {
        CellResult {
            feasible: false,
            records: Vec::new(),
        }
    }

    /// Was this configuration runnable at all?
    pub fn feasible(&self) -> bool {
        self.feasible
    }

    pub fn samples(&self) -> u64 {
        self.records.len() as u64
    }

    /// The raw per-sample records, ordered by sample index.
    pub fn records(&self) -> &[SampleRecord] {
        &self.records
    }

    fn outcome(record: &SampleRecord, scoring: Scoring) -> Option<&EvalOutcome> {
        match scoring {
            Scoring::CodeOnly => record.result.code_only.as_ref(),
            Scoring::Overall => record.result.overall.as_ref(),
        }
    }

    /// Successful samples under one metric and scoring.
    pub fn successes(&self, metric: Metric, scoring: Scoring) -> u64 {
        self.records
            .iter()
            .filter_map(|r| Self::outcome(r, scoring))
            .filter(|o| match metric {
                Metric::Build => o.built,
                Metric::Pass => o.passed,
            })
            .count() as u64
    }

    /// The unbiased build@k / pass@k estimate (paper Eq. 1) for this cell,
    /// recomputed from the retained records. Zero-sample cells score 0.
    ///
    /// The estimator needs `k <= samples()`; for larger k it saturates —
    /// 1 when any sample succeeded, 0 otherwise — rather than erroring or
    /// extrapolating. This is [`pass_at_k`]'s documented edge semantics,
    /// pinned by a shared property test (`rate_agrees_with_pass_at_k`), so
    /// the two public call paths cannot drift apart.
    pub fn rate(&self, metric: Metric, scoring: Scoring, k: u32) -> f64 {
        pass_at_k(
            self.samples(),
            self.successes(metric, scoring),
            u64::from(k),
        )
    }

    /// A record's outcome as of repair round `round` (0 = before any
    /// repair). Records without a repair trajectory — the build succeeded,
    /// the cell ran with `repair_budget = 0`, or the sample was infeasible
    /// — report their final outcome at every round. Rounds beyond the
    /// recorded trajectory report the last recorded state (once a sample
    /// stops repairing, its outcome is final).
    fn outcome_at_round(
        record: &SampleRecord,
        scoring: Scoring,
        round: u32,
    ) -> Option<&EvalOutcome> {
        let rounds = &record.result.rounds;
        if rounds.is_empty() {
            return Self::outcome(record, scoring);
        }
        let r = &rounds[(round as usize).min(rounds.len() - 1)];
        Some(match scoring {
            Scoring::CodeOnly => &r.code_only,
            Scoring::Overall => &r.overall,
        })
    }

    /// Successful samples under one metric and scoring, as of repair round
    /// `round`.
    pub fn successes_at_round(&self, metric: Metric, scoring: Scoring, round: u32) -> u64 {
        self.records
            .iter()
            .filter_map(|r| Self::outcome_at_round(r, scoring, round))
            .filter(|o| match metric {
                Metric::Build => o.built,
                Metric::Pass => o.passed,
            })
            .count() as u64
    }

    /// build@k / pass@k as of repair round `round` — the Fig. 2 estimator
    /// over the outcomes each sample had after `round` repair rounds.
    /// `rate_at_round(m, s, k, budget)` equals [`CellResult::rate`].
    pub fn rate_at_round(&self, metric: Metric, scoring: Scoring, k: u32, round: u32) -> f64 {
        pass_at_k(
            self.samples(),
            self.successes_at_round(metric, scoring, round),
            u64::from(k),
        )
    }

    /// The deepest repair round any retained sample recorded (0 when no
    /// sample entered the repair loop).
    pub fn max_repair_round(&self) -> u32 {
        self.records
            .iter()
            .filter_map(|r| r.result.rounds.last())
            .map(|round| round.round)
            .max()
            .unwrap_or(0)
    }

    /// Mean cumulative tokens per sample as of repair round `round` —
    /// repair tokens count toward E_kappa (paper Eq. 2), so the round-R
    /// token cost pairs with the round-R pass rate.
    pub fn tokens_at_round(&self, round: u32) -> MeanAccumulator {
        let mut acc = MeanAccumulator::default();
        for r in &self.records {
            let rounds = &r.result.rounds;
            let t = if rounds.is_empty() {
                r.result.tokens
            } else {
                rounds[(round as usize).min(rounds.len() - 1)].tokens
            };
            acc.add(t.total() as f64);
        }
        acc
    }

    pub fn build_at_k(&self, scoring: Scoring, k: u32) -> f64 {
        self.rate(Metric::Build, scoring, k)
    }

    pub fn pass_at_k(&self, scoring: Scoring, k: u32) -> f64 {
        self.rate(Metric::Pass, scoring, k)
    }

    /// Samples that built and carried no error-severity analysis finding.
    /// Zero unless the grid ran with `EvalConfig::analyze` on.
    pub fn race_free_samples(&self) -> u64 {
        self.records.iter().filter(|r| r.result.race_free()).count() as u64
    }

    /// race_free@k: the Eq. 1 estimator over samples whose build succeeded
    /// and whose static analysis reported no error-severity finding.
    pub fn race_free_at_k(&self, k: u32) -> f64 {
        pareval_metrics::race_free_at_k(self.samples(), self.race_free_samples(), u64::from(k))
    }

    /// Mean total inference tokens per sample, accumulated in sample order.
    pub fn tokens(&self) -> MeanAccumulator {
        let mut acc = MeanAccumulator::default();
        for r in &self.records {
            acc.add(r.result.tokens.total() as f64);
        }
        acc
    }

    /// Failed-build logs with ground-truth categories (Fig. 3 input),
    /// in sample order.
    pub fn error_logs(&self) -> impl Iterator<Item = LogEntry> + '_ {
        self.records.iter().filter_map(|r| {
            let overall = r.result.overall.as_ref()?;
            if overall.built {
                return None;
            }
            let truth = overall.error_category?;
            Some(LogEntry {
                text: overall.build_log.clone(),
                truth,
            })
        })
    }
}

/// All cell results of one experiment run, keyed by [`CellKey`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentResults {
    pub cells: BTreeMap<CellKey, CellResult>,
}

impl ExperimentResults {
    /// Collect runner output into per-cell results.
    ///
    /// Accepts any record source — a runner's `Vec`, or a lazy journal
    /// replay chained with fresh records (see
    /// [`Runner::resume`](crate::runner::Runner::resume)) — and consumes it
    /// in a single pass, moving each record straight into its cell: peak
    /// retained records = the final per-cell total plus the one record in
    /// flight, never an extra buffered copy of the input.
    ///
    /// Records are restored to canonical `(CellKey, sample_index)` order
    /// before the results are returned, so any execution order (serial,
    /// sharded, work-stolen, resumed) yields identical results. Cell
    /// construction is atomic: a cell whose plan — or any of whose records
    /// — says infeasible holds no records at all.
    ///
    /// # Panics
    ///
    /// Panics if a record's [`CellKey`] does not appear in `plan` — every
    /// record must come from executing that plan's own [`SampleSpec`]s
    /// (replaying records against a narrower plan is a caller bug, not a
    /// recoverable state).
    ///
    /// [`SampleSpec`]: crate::plan::SampleSpec
    pub fn from_records(
        plan: &ExperimentPlan,
        records: impl IntoIterator<Item = SampleRecord>,
    ) -> Self {
        let mut cells: BTreeMap<CellKey, CellResult> = plan
            .cells()
            .iter()
            .map(|spec| {
                // Feasibility starts from the plan (a feasible cell scheduled
                // with zero samples is still feasible); an infeasible record
                // demotes its cell below.
                let cell = if spec.feasible {
                    CellResult {
                        feasible: true,
                        records: Vec::new(),
                    }
                } else {
                    CellResult::infeasible()
                };
                (spec.key, cell)
            })
            .collect();
        for record in records {
            let cell = cells
                .get_mut(&record.key)
                .expect("runner produced a record for a cell not in the plan");
            if !record.result.feasible {
                // All samples of a cell share the plan's feasibility; a
                // single infeasible record marks its whole cell not-run,
                // dropping any records already retained and blocking the
                // rest.
                *cell = CellResult::infeasible();
            } else if cell.feasible {
                cell.records.push(record);
            }
        }
        // Per-cell sort by sample index == the old global (key, index) sort,
        // since the map is already keyed by cell.
        for cell in cells.values_mut() {
            cell.records.sort_by_key(|r| r.sample_index);
        }
        ExperimentResults { cells }
    }

    pub fn cell(
        &self,
        pair: TranslationPair,
        technique: Technique,
        model: &str,
        app: &str,
    ) -> Option<&CellResult> {
        self.cells
            .get(&(pair, technique, model, app) as &dyn CellQuery)
    }

    /// The deepest repair round recorded anywhere in the grid (0 when the
    /// run had no repair budget or every build succeeded first try).
    pub fn max_repair_round(&self) -> u32 {
        self.cells
            .values()
            .map(CellResult::max_repair_round)
            .max()
            .unwrap_or(0)
    }

    /// Fig. 3 input: all failed-build logs across cells, tagged with model
    /// names, in `(CellKey, sample_index)` order.
    ///
    /// Note: `CellKey` orders pairs and techniques by enum declaration,
    /// where the pre-refactor string keys ordered them lexically by
    /// `pair.id()` / `technique.name()`. On grids spanning several pairs or
    /// techniques the log *sequence* therefore differs from the old API
    /// (the per-category counts of [`Self::error_counts`] do not), which
    /// can nudge the order-sensitive clustering pipeline downstream.
    pub fn error_logs_with_models(&self) -> Vec<(String, LogEntry)> {
        let mut out = Vec::new();
        for (key, cell) in &self.cells {
            for log in cell.error_logs() {
                out.push((key.model.to_string(), log));
            }
        }
        out
    }

    /// Per-(model, category) counts of build failures (the ground-truth
    /// counterpart of Fig. 3).
    pub fn error_counts(&self) -> BTreeMap<(String, ErrorCategory), usize> {
        let mut out: BTreeMap<(String, ErrorCategory), usize> = BTreeMap::new();
        for (key, cell) in &self.cells {
            for record in cell.records() {
                let failed_category = record
                    .result
                    .overall
                    .as_ref()
                    .filter(|o| !o.built)
                    .and_then(|o| o.error_category);
                if let Some(truth) = failed_category {
                    *out.entry((key.model.to_string(), truth)).or_default() += 1;
                }
            }
        }
        out
    }

    /// Per-(model, rule) counts of static-analysis findings across the
    /// grid. Empty unless the grid ran with `EvalConfig::analyze` on.
    pub fn race_finding_counts(&self) -> BTreeMap<(String, minihpc_analyze::Rule), usize> {
        let mut out: BTreeMap<(String, minihpc_analyze::Rule), usize> = BTreeMap::new();
        for (key, cell) in &self.cells {
            for record in cell.records() {
                for finding in &record.result.analysis {
                    *out.entry((key.model.to_string(), finding.rule))
                        .or_default() += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalPipeline;
    use crate::plan::ExperimentPlan;
    use crate::runner::{Runner, SerialRunner};
    use minihpc_lang::model::TranslationPair;
    use pareval_llm::all_models;
    use pareval_translate::Technique;

    fn one_cell_plan(samples: u32) -> ExperimentPlan {
        ExperimentPlan::builder()
            .samples(samples)
            // Seed 42 gives this cell a mixed pass record (4/6), so the
            // k > 1 estimates are strictly between pass@1 and 1.
            .seed(42)
            .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
            .techniques([Technique::NonAgentic])
            .models(all_models().into_iter().filter(|m| m.name == "o4-mini"))
            .apps(["nanoXOR"])
            .build()
    }

    #[test]
    fn pass_at_k_grows_with_k() {
        let plan = one_cell_plan(6);
        let results = SerialRunner.run(&plan);
        let cell = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "o4-mini",
                "nanoXOR",
            )
            .unwrap();
        assert_eq!(cell.samples(), 6);
        let p1 = cell.pass_at_k(Scoring::CodeOnly, 1);
        let p5 = cell.pass_at_k(Scoring::CodeOnly, 5);
        // o4-mini passes this cell sometimes but not always, so a larger
        // draw strictly helps.
        assert!(p1 > 0.0, "p1 = {p1}");
        assert!(p5 > p1, "p5 = {p5} <= p1 = {p1}");
        assert!(p5 <= 1.0 + 1e-12);
        // build@k dominates pass@k for every k.
        for k in 1..=6 {
            assert!(cell.build_at_k(Scoring::CodeOnly, k) >= cell.pass_at_k(Scoring::CodeOnly, k));
        }
    }

    #[test]
    fn rate_of_empty_cell_is_zero() {
        let empty = CellResult::default();
        for metric in [Metric::Build, Metric::Pass] {
            for scoring in Scoring::ALL {
                assert_eq!(empty.rate(metric, scoring, 1), 0.0);
                assert_eq!(empty.rate(metric, scoring, 5), 0.0);
            }
        }
        assert!(empty.tokens().mean().is_none());
    }

    #[test]
    fn infeasible_cell_construction_is_atomic() {
        // Run real samples, then forge an infeasible record into the middle
        // of the batch: the whole cell must collapse to "not run" with no
        // leftover token / error-log state.
        let plan = one_cell_plan(3);
        let pipeline = EvalPipeline::new(plan.eval().clone());
        let mut records: Vec<_> = plan
            .sample_specs()
            .iter()
            .map(|s| pipeline.execute(&plan, s))
            .collect();
        let mut forged = records[1].clone();
        forged.result.feasible = false;
        forged.result.code_only = None;
        forged.result.overall = None;
        records[1] = forged;
        let results = ExperimentResults::from_records(&plan, records);
        let cell = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "o4-mini",
                "nanoXOR",
            )
            .unwrap();
        assert!(!cell.feasible());
        assert_eq!(cell.samples(), 0);
        assert!(cell.tokens().mean().is_none());
        assert_eq!(cell.error_logs().count(), 0);
    }

    #[test]
    fn results_equal_regardless_of_record_order() {
        let plan = one_cell_plan(4);
        let pipeline = EvalPipeline::new(plan.eval().clone());
        let records: Vec<_> = plan
            .sample_specs()
            .iter()
            .map(|s| pipeline.execute(&plan, s))
            .collect();
        let mut shuffled = records.clone();
        shuffled.reverse();
        assert_eq!(
            ExperimentResults::from_records(&plan, records),
            ExperimentResults::from_records(&plan, shuffled)
        );
    }

    #[test]
    fn per_round_accessors_default_to_final_outcome_without_repair() {
        // A budget-0 run records no rounds; every round must report the
        // final (only) outcome, and rate_at_round == rate.
        let plan = one_cell_plan(4);
        let results = SerialRunner.run(&plan);
        let cell = results
            .cell(
                TranslationPair::CUDA_TO_OMP_OFFLOAD,
                Technique::NonAgentic,
                "o4-mini",
                "nanoXOR",
            )
            .unwrap();
        assert_eq!(cell.max_repair_round(), 0);
        for round in [0, 1, 5] {
            for metric in [Metric::Build, Metric::Pass] {
                for scoring in Scoring::ALL {
                    assert_eq!(
                        cell.rate_at_round(metric, scoring, 1, round),
                        cell.rate(metric, scoring, 1)
                    );
                }
            }
            assert_eq!(cell.tokens_at_round(round).mean(), cell.tokens().mean());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::plan::CellKey;
    use crate::task::{EvalOutcome, SampleResult};
    use pareval_llm::TokenUsage;
    use proptest::prelude::*;

    /// A cell whose records succeed exactly where `successes` says.
    fn forged_cell(successes: &[bool]) -> CellResult {
        let key = CellKey {
            pair: TranslationPair::CUDA_TO_OMP_OFFLOAD,
            technique: Technique::NonAgentic,
            model: "o4-mini",
            app: "nanoXOR",
        };
        let records = successes
            .iter()
            .enumerate()
            .map(|(i, &ok)| {
                let outcome = EvalOutcome {
                    built: ok,
                    passed: ok,
                    error_category: None,
                    build_log: String::new(),
                    error_diagnostics: Vec::new(),
                };
                SampleRecord {
                    key,
                    sample_index: i as u32,
                    result: SampleResult {
                        feasible: true,
                        failure_reason: None,
                        code_only: Some(outcome.clone()),
                        overall: Some(outcome),
                        tokens: TokenUsage::default(),
                        rounds: Vec::new(),
                        analysis: Vec::new(),
                    },
                }
            })
            .collect();
        CellResult {
            feasible: true,
            records,
        }
    }

    proptest! {
        /// The shared edge-semantics pin (see `pass_at_k`'s docs): the
        /// harness-side `CellResult::rate` must agree with the estimator
        /// for every k — including k > samples(), where both saturate to
        /// 1 iff any sample succeeded instead of erroring.
        #[test]
        fn rate_agrees_with_pass_at_k(
            pattern in proptest::collection::vec(any::<bool>(), 0..12),
            k in 1u32..30,
        ) {
            let cell = forged_cell(&pattern);
            let n = cell.samples();
            let c = cell.successes(Metric::Pass, Scoring::Overall);
            let v = cell.rate(Metric::Pass, Scoring::Overall, k);
            prop_assert_eq!(v, pass_at_k(n, c, u64::from(k)));
            if u64::from(k) > n {
                prop_assert_eq!(v, if c > 0 { 1.0 } else { 0.0 });
            }
        }
    }
}
