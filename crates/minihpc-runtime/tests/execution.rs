//! End-to-end runtime tests: build small MiniHPC repositories with the real
//! toolchain and execute them, covering each execution model and the failure
//! modes the ParEval-Repo harness relies on.

use minihpc_build::{build_repo, BuildRequest};
use minihpc_lang::repo::SourceRepo;
use minihpc_runtime::{run, RunConfig, RuntimeErrorKind};

fn build_and_run(repo: &SourceRepo, args: &[&str]) -> minihpc_runtime::RunResult {
    let out = build_repo(repo, &BuildRequest::new("app"));
    assert!(out.succeeded(), "build failed:\n{}", out.log.text());
    run(
        &out.executable.unwrap(),
        RunConfig::with_args(args.iter().copied()),
    )
}

fn cuda_xor_repo() -> SourceRepo {
    SourceRepo::new()
        .with_file(
            "Makefile",
            "app: main.cu\n\tnvcc -O2 -arch=sm_80 -o app main.cu\n",
        )
        .with_file(
            "main.cu",
            r#"
#include <cuda_runtime.h>
#include <stdio.h>
#include <stdlib.h>

__global__ void cellsXOR(const int* input, int* output, size_t N) {
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < N && j < N) {
        int count = 0;
        if (i > 0 && input[(i - 1) * N + j] == 1) count++;
        if (i < N - 1 && input[(i + 1) * N + j] == 1) count++;
        if (j > 0 && input[i * N + (j - 1)] == 1) count++;
        if (j < N - 1 && input[i * N + (j + 1)] == 1) count++;
        output[i * N + j] = (count == 1) ? 1 : 0;
    }
}

int main(int argc, char** argv) {
    int N = atoi(argv[1]);
    int* h_in = (int*)malloc(N * N * sizeof(int));
    int* h_out = (int*)malloc(N * N * sizeof(int));
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            h_in[i * N + j] = (i + j) % 2;
    int* d_in;
    int* d_out;
    cudaMalloc(&d_in, N * N * sizeof(int));
    cudaMalloc(&d_out, N * N * sizeof(int));
    cudaMemcpy(d_in, h_in, N * N * sizeof(int), cudaMemcpyHostToDevice);
    dim3 block(8, 8);
    dim3 grid((N + 7) / 8, (N + 7) / 8);
    cellsXOR<<<grid, block>>>(d_in, d_out, N);
    cudaDeviceSynchronize();
    cudaMemcpy(h_out, d_out, N * N * sizeof(int), cudaMemcpyDeviceToHost);
    int total = 0;
    for (int i = 0; i < N * N; i++) total += h_out[i];
    printf("checksum %d\n", total);
    cudaFree(d_in);
    cudaFree(d_out);
    free(h_in);
    free(h_out);
    return 0;
}
"#,
        )
}

/// Checksum of the 4-point XOR stencil over the checkerboard input, computed
/// independently in Rust.
fn xor_checksum(n: usize) -> i64 {
    let input: Vec<i64> = (0..n * n).map(|k| ((k / n + k % n) % 2) as i64).collect();
    let mut total = 0;
    for i in 0..n {
        for j in 0..n {
            let mut count = 0;
            if i > 0 && input[(i - 1) * n + j] == 1 {
                count += 1;
            }
            if i < n - 1 && input[(i + 1) * n + j] == 1 {
                count += 1;
            }
            if j > 0 && input[i * n + (j - 1)] == 1 {
                count += 1;
            }
            if j < n - 1 && input[i * n + (j + 1)] == 1 {
                count += 1;
            }
            total += i64::from(count == 1);
        }
    }
    total
}

#[test]
fn cuda_stencil_runs_and_matches_reference() {
    let r = build_and_run(&cuda_xor_repo(), &["16"]);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.stdout.trim(), format!("checksum {}", xor_checksum(16)));
    assert!(r.telemetry.ran_on_device());
    assert!(r.telemetry.device_parallel());
}

#[test]
fn cuda_parallel_mode_matches_sequential() {
    let out = build_repo(&cuda_xor_repo(), &BuildRequest::new("app"));
    let exe = out.executable.unwrap();
    let seq = run(&exe, RunConfig::with_args(["32"]));
    let mut cfg = RunConfig::with_args(["32"]);
    cfg.parallel = true;
    let par = run(&exe, cfg);
    assert_eq!(seq.stdout, par.stdout);
    assert!(par.error.is_none());
}

#[test]
fn cuda_race_detector_clean_on_disjoint_writes() {
    let out = build_repo(&cuda_xor_repo(), &BuildRequest::new("app"));
    let exe = out.executable.unwrap();
    let mut cfg = RunConfig::with_args(["8"]);
    cfg.detect_races = true;
    let r = run(&exe, cfg);
    assert!(r.races.is_empty(), "{:?}", r.races);
}

#[test]
fn missing_memcpy_back_gives_wrong_answer_not_crash() {
    // Classic translation bug: result read from host buffer that was never
    // copied back. Output is all zeros → checksum 0.
    let mut repo = cuda_xor_repo();
    let src = repo.get("main.cu").unwrap().to_string();
    let broken = src.replace(
        "    cudaMemcpy(h_out, d_out, N * N * sizeof(int), cudaMemcpyDeviceToHost);\n",
        "",
    );
    repo.add("main.cu", broken);
    let r = build_and_run(&repo, &["16"]);
    assert!(r.error.is_none());
    assert_eq!(r.stdout.trim(), "checksum 0");
}

#[test]
fn device_pointer_dereferenced_on_host_is_illegal_access() {
    let mut repo = cuda_xor_repo();
    let src = repo.get("main.cu").unwrap().to_string();
    // Read the device pointer directly from host code.
    let broken = src.replace(
        "    int total = 0;\n    for (int i = 0; i < N * N; i++) total += h_out[i];",
        "    int total = 0;\n    for (int i = 0; i < N * N; i++) total += d_out[i];",
    );
    repo.add("main.cu", broken);
    let r = build_and_run(&repo, &["8"]);
    let err = r.error.expect("expected an illegal access");
    assert_eq!(err.kind, RuntimeErrorKind::IllegalAccess);
}

fn omp_offload_repo(pragma: &str) -> SourceRepo {
    let main = format!(
        r#"
#include <stdio.h>
#include <stdlib.h>

int main(int argc, char** argv) {{
    int N = atoi(argv[1]);
    int* a = (int*)malloc(N * sizeof(int));
    for (int i = 0; i < N; i++) a[i] = 0;
    {pragma}
    for (int i = 0; i < N; i++) {{
        a[i] = i * 2;
    }}
    long total = 0;
    for (int i = 0; i < N; i++) total += a[i];
    printf("total %ld\n", total);
    free(a);
    return 0;
}}
"#
    );
    SourceRepo::new()
        .with_file(
            "Makefile",
            "CXX = clang++\nFLAGS = -O2 -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda\n\
             app: main.cpp\n\t$(CXX) $(FLAGS) -o app main.cpp\n",
        )
        .with_file("main.cpp", main)
}

#[test]
fn omp_offload_loop_runs_on_device() {
    let repo =
        omp_offload_repo("#pragma omp target teams distribute parallel for map(tofrom: a[0:N])");
    let r = build_and_run(&repo, &["100"]);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.stdout.trim(), format!("total {}", 100i64 * 99));
    assert!(r.telemetry.ran_on_device());
    assert!(r.telemetry.device_parallel());
}

#[test]
fn listing4_style_missing_target_runs_on_host() {
    // Paper Listing 4: `teams distribute` without `target` — builds, runs,
    // produces the right numbers, but never touches the device.
    let repo = omp_offload_repo("#pragma omp teams distribute");
    let r = build_and_run(&repo, &["100"]);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.stdout.trim(), format!("total {}", 100i64 * 99));
    assert!(
        !r.telemetry.ran_on_device(),
        "host-only execution must be visible to the harness"
    );
}

#[test]
fn missing_map_from_loses_results() {
    let repo = omp_offload_repo("#pragma omp target teams distribute parallel for map(to: a[0:N])");
    let r = build_and_run(&repo, &["100"]);
    assert!(r.error.is_none());
    assert_eq!(r.stdout.trim(), "total 0", "results must not copy back");
}

#[test]
fn unmapped_pointer_in_target_region_is_illegal() {
    let repo = omp_offload_repo("#pragma omp target teams distribute parallel for");
    let r = build_and_run(&repo, &["16"]);
    let err = r.error.expect("expected illegal access");
    assert_eq!(err.kind, RuntimeErrorKind::IllegalAccess);
}

#[test]
fn omp_threads_parallel_for_with_reduction() {
    let repo = SourceRepo::new()
        .with_file(
            "Makefile",
            "app: main.cpp\n\tg++ -O2 -fopenmp -o app main.cpp\n",
        )
        .with_file(
            "main.cpp",
            r#"
#include <stdio.h>
#include <stdlib.h>

int main(int argc, char** argv) {
    int N = atoi(argv[1]);
    double total = 0.0;
    #pragma omp parallel for reduction(+: total)
    for (int i = 0; i < N; i++) {
        total += i * 0.5;
    }
    printf("sum %.1f\n", total);
    return 0;
}
"#,
        );
    let out = build_repo(&repo, &BuildRequest::new("app"));
    assert!(out.succeeded(), "{}", out.log.text());
    let exe = out.executable.unwrap();

    let seq = run(&exe, RunConfig::with_args(["1000"]));
    assert_eq!(seq.stdout.trim(), "sum 249750.0");
    assert_eq!(seq.telemetry.host_parallel_regions, 1);
    assert!(!seq.telemetry.ran_on_device());

    let mut cfg = RunConfig::with_args(["1000"]);
    cfg.parallel = true;
    let par = run(&exe, cfg);
    assert_eq!(par.stdout, seq.stdout, "parallel reduction must agree");
}

#[test]
fn shared_write_recorder_sees_dropped_reduction_race() {
    // The same accumulator loop with and without its reduction clause: the
    // opt-in recorder must stay silent on the clean version and flag the
    // shared scalar on the racy one — the dynamic ground truth the static
    // analyzer's `raw-reduction` verdict is cross-validated against.
    let program = |pragma: &str| {
        SourceRepo::new()
            .with_file(
                "Makefile",
                "app: main.cpp\n\tg++ -O2 -fopenmp -o app main.cpp\n",
            )
            .with_file(
                "main.cpp",
                format!(
                    r#"
#include <stdio.h>
#include <stdlib.h>

int main(int argc, char** argv) {{
    int N = atoi(argv[1]);
    long total = 0;
    {pragma}
    for (int i = 0; i < N; i++) {{
        total += i;
    }}
    printf("total %ld\n", total);
    return 0;
}}
"#
                ),
            )
    };
    let race_of = |pragma: &str| -> Vec<String> {
        let out = build_repo(&program(pragma), &BuildRequest::new("app"));
        assert!(out.succeeded(), "{}", out.log.text());
        let mut cfg = RunConfig::with_args(["1000"]);
        cfg.parallel = true;
        cfg.workers = 4;
        cfg.record_shared_writes = true;
        run(&out.executable.unwrap(), cfg).races
    };
    let clean = race_of("#pragma omp parallel for reduction(+: total)");
    assert!(clean.is_empty(), "reduction clause privatizes: {clean:?}");
    let racy = race_of("#pragma omp parallel for");
    assert!(
        racy.iter().any(|r| r.contains("'total'")),
        "dropped clause must surface as a conflicting shared write: {racy:?}"
    );
    // Off by default: the same racy binary reports nothing.
    let out = build_repo(
        &program("#pragma omp parallel for"),
        &BuildRequest::new("app"),
    );
    let mut cfg = RunConfig::with_args(["1000"]);
    cfg.parallel = true;
    cfg.workers = 4;
    let silent = run(&out.executable.unwrap(), cfg);
    assert!(silent.races.is_empty());
}

#[test]
fn kokkos_parallel_for_and_reduce() {
    let repo = SourceRepo::new()
        .with_file(
            "CMakeLists.txt",
            "cmake_minimum_required(VERSION 3.16)\nproject(app LANGUAGES CXX)\n\
             find_package(Kokkos REQUIRED)\nadd_executable(app main.cpp)\n\
             target_link_libraries(app PRIVATE Kokkos::kokkos)\n",
        )
        .with_file(
            "main.cpp",
            r#"
#include <Kokkos_Core.hpp>
#include <stdio.h>
#include <stdlib.h>

int main(int argc, char** argv) {
    int N = atoi(argv[1]);
    Kokkos::initialize();
    {
        Kokkos::View<double*> d("d", N);
        Kokkos::parallel_for(N, KOKKOS_LAMBDA(int i) { d(i) = 2.0 * i; });
        Kokkos::fence();
        double total = 0.0;
        Kokkos::parallel_reduce(N, KOKKOS_LAMBDA(int i, double& lsum) { lsum += d(i); }, total);
        printf("total %.1f\n", total);
    }
    Kokkos::finalize();
    return 0;
}
"#,
        );
    let r = build_and_run(&repo, &["100"]);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(
        r.stdout.trim(),
        format!("total {:.1}", 2.0 * (99.0 * 100.0 / 2.0))
    );
    assert!(r.telemetry.ran_on_device());
    assert!(r.telemetry.device_parallel());
}

#[test]
fn kokkos_mirror_and_deep_copy() {
    let repo = SourceRepo::new()
        .with_file(
            "CMakeLists.txt",
            "cmake_minimum_required(VERSION 3.16)\nproject(app LANGUAGES CXX)\n\
             find_package(Kokkos REQUIRED)\nadd_executable(app main.cpp)\n\
             target_link_libraries(app PRIVATE Kokkos::kokkos)\n",
        )
        .with_file(
            "main.cpp",
            r#"
#include <Kokkos_Core.hpp>
#include <stdio.h>

int main() {
    Kokkos::initialize();
    {
        Kokkos::View<int*> d("d", 8);
        Kokkos::parallel_for(8, KOKKOS_LAMBDA(int i) { d(i) = i * i; });
        Kokkos::fence();
        Kokkos::View<int*> h = Kokkos::create_mirror_view(d);
        Kokkos::deep_copy(h, d);
        int total = 0;
        for (int i = 0; i < 8; i++) total += h(i);
        printf("%d\n", total);
    }
    Kokkos::finalize();
    return 0;
}
"#,
        );
    let r = build_and_run(&repo, &[]);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.stdout.trim(), "140");
}

#[test]
fn curand_deterministic_and_in_range() {
    let repo = SourceRepo::new()
        .with_file(
            "Makefile",
            "app: main.cu\n\tnvcc -O2 -arch=sm_80 -o app main.cu\n",
        )
        .with_file(
            "main.cu",
            r#"
#include <cuda_runtime.h>
#include <curand_kernel.h>
#include <stdio.h>

__global__ void init_rng(curandState* states, int n, int seed) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        curand_init(seed, i, 0, &states[i]);
    }
}

__global__ void sample(curandState* states, float* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        out[i] = curand_uniform(&states[i]);
    }
}

int main() {
    int n = 64;
    curandState* states;
    float* d_out;
    cudaMalloc(&states, n * sizeof(curandState));
    cudaMalloc(&d_out, n * sizeof(float));
    init_rng<<<2, 32>>>(states, n, 1234);
    sample<<<2, 32>>>(states, d_out, n);
    float* h = (float*)malloc(n * sizeof(float));
    cudaMemcpy(h, d_out, n * sizeof(float), cudaMemcpyDeviceToHost);
    int ok = 1;
    double sum = 0.0;
    for (int i = 0; i < n; i++) {
        if (h[i] <= 0.0 || h[i] > 1.0) ok = 0;
        sum += h[i];
    }
    printf("ok %d mean %.2f\n", ok, sum / n);
    return 0;
}
"#,
        );
    let r1 = build_and_run(&repo, &[]);
    assert!(r1.error.is_none(), "{:?}", r1.error);
    assert!(r1.stdout.starts_with("ok 1"), "{}", r1.stdout);
    let r2 = build_and_run(&repo, &[]);
    assert_eq!(r1.stdout, r2.stdout, "seeded RNG must be deterministic");
}

#[test]
fn infinite_loop_hits_step_limit() {
    let repo = SourceRepo::new()
        .with_file("Makefile", "app: main.cpp\n\tg++ -o app main.cpp\n")
        .with_file(
            "main.cpp",
            "int main() { int x = 0; while (1) { x = x + 1; } return x; }\n",
        );
    let out = build_repo(&repo, &BuildRequest::new("app"));
    let exe = out.executable.unwrap();
    let cfg = RunConfig {
        max_steps: 10_000,
        ..RunConfig::default()
    };
    let r = run(&exe, cfg);
    assert_eq!(r.error.unwrap().kind, RuntimeErrorKind::StepLimit);
}

#[test]
fn exit_code_propagates() {
    let repo = SourceRepo::new()
        .with_file("Makefile", "app: main.cpp\n\tg++ -o app main.cpp\n")
        .with_file(
            "main.cpp",
            "#include <stdlib.h>\nint main() { exit(3); return 0; }\n",
        );
    let r = build_and_run(&repo, &[]);
    assert_eq!(r.exit_code, 3);
}

#[test]
fn structs_and_functions_across_files() {
    let repo = SourceRepo::new()
        .with_file(
            "Makefile",
            "app: main.cpp sim.cpp\n\tg++ -O2 -o app main.cpp sim.cpp\n",
        )
        .with_file(
            "sim.h",
            "typedef struct { double energy; int count; } State;\n\
             State* make_state(int n);\nvoid bump(State* s, double e);\n",
        )
        .with_file(
            "sim.cpp",
            "#include \"sim.h\"\n#include <stdlib.h>\n\
             State* make_state(int n) {\n    State* s = (State*)malloc(n * sizeof(State));\n    s[0].energy = 0.0;\n    s[0].count = 0;\n    return s;\n}\n\
             void bump(State* s, double e) {\n    s[0].energy += e;\n    s[0].count++;\n}\n",
        )
        .with_file(
            "main.cpp",
            "#include \"sim.h\"\n#include <stdio.h>\n\
             int main() {\n    State* s = make_state(1);\n    for (int i = 0; i < 10; i++) bump(s, 0.5);\n    printf(\"%.1f %d\\n\", s[0].energy, s[0].count);\n    return 0;\n}\n",
        );
    let r = build_and_run(&repo, &[]);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.stdout.trim(), "5.0 10");
}

#[test]
fn target_data_region_with_inner_target_loops() {
    let repo = SourceRepo::new()
        .with_file(
            "Makefile",
            "CXX = clang++\nFLAGS = -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda\n\
             app: main.cpp\n\t$(CXX) $(FLAGS) -o app main.cpp\n",
        )
        .with_file(
            "main.cpp",
            r#"
#include <stdio.h>
#include <stdlib.h>

int main(int argc, char** argv) {
    int N = atoi(argv[1]);
    int* in = (int*)malloc(N * sizeof(int));
    int* out = (int*)malloc(N * sizeof(int));
    for (int i = 0; i < N; i++) in[i] = i;
    #pragma omp target data map(to: in[0:N]) map(from: out[0:N])
    {
        #pragma omp target teams distribute parallel for
        for (int i = 0; i < N; i++) {
            out[i] = in[i] * 3;
        }
    }
    long total = 0;
    for (int i = 0; i < N; i++) total += out[i];
    printf("%ld\n", total);
    return 0;
}
"#,
        );
    let r = build_and_run(&repo, &["50"]);
    assert!(r.error.is_none(), "{:?}", r.error);
    assert_eq!(r.stdout.trim(), format!("{}", 3i64 * (49 * 50 / 2)));
    assert!(r.telemetry.ran_on_device());
}

#[test]
fn collapse2_device_loop() {
    let repo = SourceRepo::new()
        .with_file(
            "Makefile",
            "CXX = clang++\nFLAGS = -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda\n\
             app: main.cpp\n\t$(CXX) $(FLAGS) -o app main.cpp\n",
        )
        .with_file(
            "main.cpp",
            r#"
#include <stdio.h>
#include <stdlib.h>

int main(int argc, char** argv) {
    int N = atoi(argv[1]);
    int* grid = (int*)malloc(N * N * sizeof(int));
    #pragma omp target teams distribute parallel for collapse(2) map(from: grid[0:N*N])
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            grid[i * N + j] = i + j;
    long total = 0;
    for (int k = 0; k < N * N; k++) total += grid[k];
    printf("%ld\n", total);
    return 0;
}
"#,
        );
    let r = build_and_run(&repo, &["10"]);
    assert!(r.error.is_none(), "{:?}", r.error);
    // sum over i,j of (i+j) = 2 * N * (N-1)/2 * N = N^2 (N-1)
    assert_eq!(r.stdout.trim(), format!("{}", 10i64 * 10 * 9));
    assert_eq!(r.telemetry.max_device_parallelism, 100);
}
