//! Property tests on the simulated runtime: determinism under seeds, and
//! parallel/sequential agreement for race-free kernels.

use minihpc_build::{build_repo, BuildRequest};
use minihpc_lang::repo::SourceRepo;
use minihpc_runtime::{run, RunConfig};
use proptest::prelude::*;

fn saxpy_repo() -> SourceRepo {
    SourceRepo::new()
        .with_file(
            "Makefile",
            "app: main.cu\n\tnvcc -O2 -arch=sm_80 -o app main.cu\n",
        )
        .with_file(
            "main.cu",
            r#"
#include <cuda_runtime.h>
#include <stdio.h>
#include <stdlib.h>

__global__ void saxpy(const double* x, double* y, double a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}

int main(int argc, char** argv) {
    int n = atoi(argv[1]);
    double a = atof(argv[2]);
    double* hx = (double*)malloc(n * sizeof(double));
    double* hy = (double*)malloc(n * sizeof(double));
    for (int i = 0; i < n; i++) {
        hx[i] = i * 0.5;
        hy[i] = i;
    }
    double* dx;
    double* dy;
    cudaMalloc(&dx, n * sizeof(double));
    cudaMalloc(&dy, n * sizeof(double));
    cudaMemcpy(dx, hx, n * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(dy, hy, n * sizeof(double), cudaMemcpyHostToDevice);
    saxpy<<<(n + 63) / 64, 64>>>(dx, dy, a, n);
    cudaDeviceSynchronize();
    cudaMemcpy(hy, dy, n * sizeof(double), cudaMemcpyDeviceToHost);
    double sum = 0.0;
    for (int i = 0; i < n; i++) sum += hy[i];
    printf("%.4f\n", sum);
    return 0;
}
"#,
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// saxpy through the full pipeline matches the closed form, for any
    /// size/coefficient, sequentially and on the thread pool.
    #[test]
    fn saxpy_matches_closed_form(n in 1i64..300, a_times_4 in -20i64..20) {
        let a = a_times_4 as f64 / 4.0;
        let out = build_repo(&saxpy_repo(), &BuildRequest::new("app"));
        let exe = out.executable.expect("builds");
        // sum_i (a * 0.5 i + i) = (0.5 a + 1) * n(n-1)/2
        let expected = (0.5 * a + 1.0) * (n * (n - 1)) as f64 / 2.0;
        let args = [n.to_string(), format!("{a}")];

        let seq = run(&exe, RunConfig::with_args(args.iter().cloned()));
        prop_assert!(seq.error.is_none(), "{:?}", seq.error);
        let got: f64 = seq.stdout.trim().parse().unwrap();
        prop_assert!((got - expected).abs() < 1e-6, "{got} vs {expected}");

        let mut cfg = RunConfig::with_args(args.iter().cloned());
        cfg.parallel = true;
        let par = run(&exe, cfg);
        prop_assert_eq!(par.stdout, seq.stdout, "parallel must agree");

        let mut cfg = RunConfig::with_args(args.iter().cloned());
        cfg.detect_races = true;
        let detected = run(&exe, cfg);
        prop_assert!(detected.races.is_empty(), "disjoint writes are race-free");
    }
}
