//! Minimal `printf`-style formatting for the interpreter.
//!
//! Supports the conversions the benchmark applications use: `%d`, `%ld`,
//! `%lu`, `%zu`, `%u`, `%f`, `%e`, `%g`, `%s`, `%c`, `%x`, `%%`, with
//! optional width and precision (`%8.3f`, `%-10s`, `%06d`).

use crate::value::Value;

/// Format `fmt` with `args`, consuming one argument per conversion.
/// Unknown conversions and missing arguments render as literal text rather
/// than failing — matching C's (unchecked) behaviour closely enough for
/// output comparison.
pub fn printf(fmt: &str, args: &[Value]) -> String {
    let mut out = String::with_capacity(fmt.len());
    let bytes = fmt.as_bytes();
    let mut i = 0;
    let mut next_arg = 0;
    while i < bytes.len() {
        if bytes[i] != b'%' {
            out.push(bytes[i] as char);
            i += 1;
            continue;
        }
        if i + 1 < bytes.len() && bytes[i + 1] == b'%' {
            out.push('%');
            i += 2;
            continue;
        }
        // Parse %[flags][width][.precision][length]conv
        let start = i;
        i += 1;
        let mut left_align = false;
        let mut zero_pad = false;
        while i < bytes.len() {
            match bytes[i] {
                b'-' => {
                    left_align = true;
                    i += 1;
                }
                b'0' => {
                    zero_pad = true;
                    i += 1;
                }
                b'+' | b' ' | b'#' => i += 1,
                _ => break,
            }
        }
        let mut width: Option<usize> = None;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            width = Some(width.unwrap_or(0) * 10 + (bytes[i] - b'0') as usize);
            i += 1;
        }
        let mut precision: Option<usize> = None;
        if i < bytes.len() && bytes[i] == b'.' {
            i += 1;
            precision = Some(0);
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                precision = Some(precision.unwrap_or(0) * 10 + (bytes[i] - b'0') as usize);
                i += 1;
            }
        }
        // Length modifiers.
        while i < bytes.len() && matches!(bytes[i], b'l' | b'h' | b'z' | b'j' | b't') {
            i += 1;
        }
        if i >= bytes.len() {
            out.push_str(&fmt[start..]);
            break;
        }
        let conv = bytes[i] as char;
        i += 1;
        let arg = args.get(next_arg);
        let rendered = match conv {
            'd' | 'i' | 'u' => {
                next_arg += 1;
                arg.and_then(Value::as_int)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "0".to_string())
            }
            'x' => {
                next_arg += 1;
                arg.and_then(Value::as_int)
                    .map(|v| format!("{v:x}"))
                    .unwrap_or_else(|| "0".to_string())
            }
            'f' | 'F' => {
                next_arg += 1;
                let v = arg.and_then(Value::as_float).unwrap_or(0.0);
                format!("{:.*}", precision.unwrap_or(6), v)
            }
            'e' | 'E' => {
                next_arg += 1;
                let v = arg.and_then(Value::as_float).unwrap_or(0.0);
                let s = format!("{:.*e}", precision.unwrap_or(6), v);
                // Rust renders `1e3` as `1e3`; C as `1.000000e+03`.
                normalize_exponent(&s, conv == 'E')
            }
            'g' | 'G' => {
                next_arg += 1;
                let v = arg.and_then(Value::as_float).unwrap_or(0.0);
                format!("{v}")
            }
            's' => {
                next_arg += 1;
                match arg {
                    Some(Value::Str(s)) => s.to_string(),
                    Some(other) => format!("{other:?}"),
                    None => String::new(),
                }
            }
            'c' => {
                next_arg += 1;
                arg.and_then(Value::as_int)
                    .and_then(|v| char::from_u32(v as u32))
                    .map(|c| c.to_string())
                    .unwrap_or_default()
            }
            'p' => {
                next_arg += 1;
                "0x0".to_string()
            }
            other => {
                out.push_str(&fmt[start..i - 1]);
                out.push(other);
                continue;
            }
        };
        out.push_str(&pad(&rendered, width, left_align, zero_pad));
    }
    out
}

fn pad(s: &str, width: Option<usize>, left: bool, zero: bool) -> String {
    let Some(w) = width else {
        return s.to_string();
    };
    if s.len() >= w {
        return s.to_string();
    }
    let fill = w - s.len();
    if left {
        format!("{s}{}", " ".repeat(fill))
    } else if zero && !s.starts_with('-') {
        format!("{}{s}", "0".repeat(fill))
    } else if zero {
        // Keep the sign in front of the zeros.
        format!("-{}{}", "0".repeat(fill), &s[1..])
    } else {
        format!("{}{s}", " ".repeat(fill))
    }
}

/// Convert Rust `1.5e3` exponent form to C's `1.5e+03`.
fn normalize_exponent(s: &str, upper: bool) -> String {
    let Some(epos) = s.find(['e', 'E']) else {
        return s.to_string();
    };
    let (mantissa, exp) = s.split_at(epos);
    let exp = &exp[1..];
    let (sign, digits) = match exp.strip_prefix('-') {
        Some(d) => ('-', d),
        None => ('+', exp),
    };
    let e = if upper { 'E' } else { 'e' };
    format!("{mantissa}{e}{sign}{digits:0>2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_conversions() {
        assert_eq!(
            printf("n = %d, x = %f\n", &[Value::Int(3), Value::Float(1.5)]),
            "n = 3, x = 1.500000\n"
        );
    }

    #[test]
    fn precision_and_width() {
        assert_eq!(
            printf("%.2f", &[Value::Float(std::f64::consts::PI)]),
            "3.14"
        );
        assert_eq!(
            printf("%8.2f", &[Value::Float(std::f64::consts::PI)]),
            "    3.14"
        );
        assert_eq!(printf("%-8d|", &[Value::Int(42)]), "42      |");
        assert_eq!(printf("%06d", &[Value::Int(42)]), "000042");
        assert_eq!(
            printf("%06d", &[Value::Int(-42)]),
            "-000042".replacen("0", "", 1)
        );
    }

    #[test]
    fn long_and_size_t() {
        assert_eq!(
            printf(
                "%ld %lu %zu",
                &[Value::Int(1), Value::Int(2), Value::Int(3)]
            ),
            "1 2 3"
        );
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            printf("%s: %c", &[Value::Str("ok".into()), Value::Int(65)]),
            "ok: A"
        );
    }

    #[test]
    fn percent_literal() {
        assert_eq!(printf("100%%", &[]), "100%");
    }

    #[test]
    fn exponent_matches_c_style() {
        assert_eq!(printf("%e", &[Value::Float(1500.0)]), "1.500000e+03");
        assert_eq!(printf("%.2e", &[Value::Float(0.0015)]), "1.50e-03");
        assert_eq!(printf("%E", &[Value::Float(1500.0)]), "1.500000E+03");
    }

    #[test]
    fn missing_args_render_zero() {
        assert_eq!(printf("%d %f", &[]), "0 0.000000");
    }

    #[test]
    fn hex() {
        assert_eq!(printf("%x", &[Value::Int(255)]), "ff");
    }
}
