//! The simulated memory system: separate host and device address spaces with
//! explicit transfers, plus an optional write-race detector.
//!
//! Buffers are guarded by `parking_lot::RwLock` so kernel execution can run
//! across real OS threads (see `interp::parallel`), while keeping the
//! data-race freedom guarantees Rust demands — a racy *translated program*
//! shows up as detector findings, never as UB in the interpreter.

use crate::value::{Space, Value};
use minihpc_lang::ast::Type;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A runtime error raised by memory operations or the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    pub kind: RuntimeErrorKind,
    pub message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeErrorKind {
    /// Host dereference of device memory or vice versa.
    IllegalAccess,
    /// Out-of-bounds buffer access.
    OutOfBounds,
    /// Use of a freed buffer.
    UseAfterFree,
    /// Interpreter step budget exhausted (runaway loop ≈ run timeout).
    StepLimit,
    /// Division by zero.
    DivByZero,
    /// Construct the interpreter does not model.
    Unsupported,
    /// Type confusion at run time (escaped static checking).
    TypeError,
}

impl RuntimeError {
    pub fn new(kind: RuntimeErrorKind, message: impl Into<String>) -> Self {
        RuntimeError {
            kind,
            message: message.into(),
        }
    }

    pub fn illegal(message: impl Into<String>) -> Self {
        Self::new(RuntimeErrorKind::IllegalAccess, message)
    }

    pub fn oob(message: impl Into<String>) -> Self {
        Self::new(RuntimeErrorKind::OutOfBounds, message)
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

impl std::error::Error for RuntimeError {}

pub type RtResult<T> = Result<T, RuntimeError>;

struct Buffer {
    data: RwLock<Vec<Value>>,
    elem: Type,
    freed: RwLock<bool>,
}

/// A recorded write for the race detector: (buffer, element) by logical
/// thread id.
#[derive(Debug, Default)]
pub struct RaceDetector {
    enabled: bool,
    /// Also record conflicting writes to *shared scalars* of parallel
    /// regions (the dropped-`reduction` defect). Opt-in and test-only: the
    /// interpreter uses it to cross-validate the static analyzer.
    shared_enabled: bool,
    /// element → first writer thread. A second writer with a different id is
    /// a race.
    writes: Mutex<HashMap<(usize, usize), u64>>,
    /// (region, variable) → first writer thread; `u64::MAX` marks a
    /// conflict already reported, so each racy scalar is flagged once.
    shared_writes: Mutex<HashMap<(u64, String), u64>>,
    races: Mutex<Vec<String>>,
}

impl RaceDetector {
    pub fn record_write(&self, buffer: usize, index: usize, thread: u64) {
        if !self.enabled {
            return;
        }
        let mut writes = self.writes.lock();
        match writes.get(&(buffer, index)) {
            Some(&prev) if prev != thread => {
                self.races.lock().push(format!(
                    "write-write race on device buffer {buffer} element {index}: \
                     threads {prev} and {thread}"
                ));
            }
            Some(_) => {}
            None => {
                writes.insert((buffer, index), thread);
            }
        }
    }

    /// Record a write to a shared scalar `name` of parallel region
    /// `region`. Two workers writing the same shared scalar is a
    /// conflicting-write race (a reduction clause would have privatized
    /// it).
    pub fn record_shared_write(&self, region: u64, name: &str, thread: u64) {
        if !self.shared_enabled {
            return;
        }
        let mut writes = self.shared_writes.lock();
        match writes.get_mut(&(region, name.to_string())) {
            Some(prev) if *prev != thread && *prev != u64::MAX => {
                self.races.lock().push(format!(
                    "conflicting shared write to '{name}' in parallel region {region}: \
                     threads {} and {thread}",
                    *prev
                ));
                *prev = u64::MAX;
            }
            Some(_) => {}
            None => {
                writes.insert((region, name.to_string()), thread);
            }
        }
    }

    /// Is shared-scalar recording on? (Lets callers skip watch bookkeeping
    /// entirely on ordinary runs.)
    pub fn recording_shared(&self) -> bool {
        self.shared_enabled
    }

    /// Reset per-kernel state (races accumulate across the run).
    pub fn begin_kernel(&self) {
        if self.enabled {
            self.writes.lock().clear();
        }
    }

    pub fn races(&self) -> Vec<String> {
        self.races.lock().clone()
    }

    /// Distinct shared-scalar names that conflicted (sorted, deduped) —
    /// the variables `record_shared_write` marked with `u64::MAX`. This is
    /// the dynamic ground truth the differential tests compare against the
    /// static analyzer's per-variable error findings.
    pub fn shared_conflict_vars(&self) -> Vec<String> {
        let writes = self.shared_writes.lock();
        let mut vars: Vec<String> = writes
            .iter()
            .filter(|(_, &thread)| thread == u64::MAX)
            .map(|((_, name), _)| name.clone())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

/// Host + device memory.
///
/// Pools are append-only `RwLock<Vec<Arc<Buffer>>>` so allocation can happen
/// from any execution context (e.g. a function with a local array called
/// from inside a kernel) without `&mut` access.
pub struct Memory {
    host: RwLock<Vec<Arc<Buffer>>>,
    device: RwLock<Vec<Arc<Buffer>>>,
    pub detector: RaceDetector,
}

impl Memory {
    pub fn new(detect_races: bool, record_shared_writes: bool) -> Self {
        Memory {
            host: RwLock::new(Vec::new()),
            device: RwLock::new(Vec::new()),
            detector: RaceDetector {
                enabled: detect_races,
                shared_enabled: record_shared_writes,
                ..RaceDetector::default()
            },
        }
    }

    fn pool(&self, space: Space) -> &RwLock<Vec<Arc<Buffer>>> {
        match space {
            Space::Host => &self.host,
            Space::Device => &self.device,
        }
    }

    /// Allocate a buffer of `len` elements of `elem`, zero-initialised.
    pub fn alloc(&self, space: Space, elem: Type, len: usize, zero: Value) -> usize {
        let mut pool = self.pool(space).write();
        pool.push(Arc::new(Buffer {
            data: RwLock::new(vec![zero; len]),
            elem,
            freed: RwLock::new(false),
        }));
        pool.len() - 1
    }

    pub fn free(&self, space: Space, buffer: usize) -> RtResult<()> {
        let buf = self.buffer(space, buffer)?;
        let mut freed = buf.freed.write();
        if *freed {
            return Err(RuntimeError::new(
                RuntimeErrorKind::UseAfterFree,
                format!("double free of {space:?} buffer {buffer}"),
            ));
        }
        *freed = true;
        buf.data.write().clear();
        Ok(())
    }

    fn buffer(&self, space: Space, buffer: usize) -> RtResult<Arc<Buffer>> {
        self.pool(space).read().get(buffer).cloned().ok_or_else(|| {
            RuntimeError::illegal(format!("invalid {space:?} buffer handle {buffer}"))
        })
    }

    fn check_live(&self, buf: &Buffer, space: Space, buffer: usize) -> RtResult<()> {
        if *buf.freed.read() {
            return Err(RuntimeError::new(
                RuntimeErrorKind::UseAfterFree,
                format!("use of freed {space:?} buffer {buffer}"),
            ));
        }
        Ok(())
    }

    /// Load an element, enforcing that `ctx_space` (the executing context)
    /// matches the buffer's space.
    pub fn load(
        &self,
        ctx_space: Space,
        space: Space,
        buffer: usize,
        index: usize,
    ) -> RtResult<Value> {
        if ctx_space != space {
            return Err(RuntimeError::illegal(format!(
                "{ctx_space:?} code dereferenced a {space:?} pointer \
                 (buffer {buffer}); copy the data with cudaMemcpy / map / deep_copy first"
            )));
        }
        let buf = self.buffer(space, buffer)?;
        self.check_live(&buf, space, buffer)?;
        let data = buf.data.read();
        data.get(index).cloned().ok_or_else(|| {
            RuntimeError::oob(format!(
                "index {index} out of bounds for {space:?} buffer {buffer} of length {}",
                data.len()
            ))
        })
    }

    /// Store an element (same space rule as [`Memory::load`]).
    pub fn store(
        &self,
        ctx_space: Space,
        space: Space,
        buffer: usize,
        index: usize,
        value: Value,
        thread: u64,
    ) -> RtResult<()> {
        if ctx_space != space {
            return Err(RuntimeError::illegal(format!(
                "{ctx_space:?} code wrote through a {space:?} pointer (buffer {buffer})"
            )));
        }
        let buf = self.buffer(space, buffer)?;
        self.check_live(&buf, space, buffer)?;
        let mut data = buf.data.write();
        let len = data.len();
        let slot = data.get_mut(index).ok_or_else(|| {
            RuntimeError::oob(format!(
                "index {index} out of bounds for {space:?} buffer {buffer} of length {len}"
            ))
        })?;
        *slot = value;
        drop(data);
        if space == Space::Device {
            self.detector.record_write(buffer, index, thread);
        }
        Ok(())
    }

    /// Atomic read-modify-write add (the `atomicAdd` primitive): performed
    /// under the buffer's write lock so concurrent kernel threads are safe.
    pub fn fetch_add(
        &self,
        ctx_space: Space,
        space: Space,
        buffer: usize,
        index: usize,
        delta: &Value,
    ) -> RtResult<Value> {
        if ctx_space != space {
            return Err(RuntimeError::illegal(format!(
                "{ctx_space:?} code atomicAdd on a {space:?} pointer (buffer {buffer})"
            )));
        }
        let buf = self.buffer(space, buffer)?;
        self.check_live(&buf, space, buffer)?;
        let mut data = buf.data.write();
        let len = data.len();
        let slot = data.get_mut(index).ok_or_else(|| {
            RuntimeError::oob(format!(
                "index {index} out of bounds for {space:?} buffer {buffer} of length {len}"
            ))
        })?;
        let old = slot.clone();
        *slot = match (&old, delta) {
            (Value::Int(a), d) => Value::Int(a + d.as_int().unwrap_or(0)),
            (Value::Float(a), d) => Value::Float(a + d.as_float().unwrap_or(0.0)),
            _ => {
                return Err(RuntimeError::new(
                    RuntimeErrorKind::TypeError,
                    "atomicAdd on non-numeric element",
                ))
            }
        };
        Ok(old)
    }

    /// Length (element count) of a buffer.
    pub fn len_of(&self, space: Space, buffer: usize) -> RtResult<usize> {
        let buf = self.buffer(space, buffer)?;
        let len = buf.data.read().len();
        Ok(len)
    }

    pub fn elem_type(&self, space: Space, buffer: usize) -> RtResult<Type> {
        let buf = self.buffer(space, buffer)?;
        Ok(buf.elem.clone())
    }

    /// Copy `len` elements between buffers (the `cudaMemcpy` / `map` /
    /// `deep_copy` primitive — allowed to cross spaces by design).
    #[allow(clippy::too_many_arguments)]
    pub fn copy(
        &self,
        dst_space: Space,
        dst: usize,
        dst_off: usize,
        src_space: Space,
        src: usize,
        src_off: usize,
        len: usize,
    ) -> RtResult<()> {
        let src_buf = self.buffer(src_space, src)?;
        self.check_live(&src_buf, src_space, src)?;
        let values: Vec<Value> = {
            let data = src_buf.data.read();
            if src_off + len > data.len() {
                return Err(RuntimeError::oob(format!(
                    "copy source range {src_off}..{} exceeds buffer length {}",
                    src_off + len,
                    data.len()
                )));
            }
            data[src_off..src_off + len].to_vec()
        };
        let dst_buf = self.buffer(dst_space, dst)?;
        self.check_live(&dst_buf, dst_space, dst)?;
        let mut data = dst_buf.data.write();
        if dst_off + len > data.len() {
            return Err(RuntimeError::oob(format!(
                "copy destination range {dst_off}..{} exceeds buffer length {}",
                dst_off + len,
                data.len()
            )));
        }
        data[dst_off..dst_off + len].clone_from_slice(&values);
        Ok(())
    }

    /// Fill `len` elements with a value (the `memset` primitive).
    pub fn fill(
        &self,
        ctx_space: Space,
        space: Space,
        buffer: usize,
        offset: usize,
        len: usize,
        value: Value,
    ) -> RtResult<()> {
        if ctx_space != space {
            return Err(RuntimeError::illegal(format!(
                "{ctx_space:?} code memset a {space:?} pointer"
            )));
        }
        let buf = self.buffer(space, buffer)?;
        self.check_live(&buf, space, buffer)?;
        let mut data = buf.data.write();
        let end = offset + len;
        if end > data.len() {
            return Err(RuntimeError::oob(format!(
                "memset range {offset}..{end} exceeds buffer length {}",
                data.len()
            )));
        }
        for slot in &mut data[offset..end] {
            *slot = value.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(false, false)
    }

    #[test]
    fn alloc_load_store() {
        let m = mem();
        let b = m.alloc(Space::Host, Type::INT, 4, Value::Int(0));
        m.store(Space::Host, Space::Host, b, 2, Value::Int(42), 0)
            .unwrap();
        assert_eq!(
            m.load(Space::Host, Space::Host, b, 2).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            m.load(Space::Host, Space::Host, b, 0).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn cross_space_access_is_illegal() {
        let m = mem();
        let d = m.alloc(Space::Device, Type::INT, 4, Value::Int(0));
        let err = m.load(Space::Host, Space::Device, d, 0).unwrap_err();
        assert_eq!(err.kind, RuntimeErrorKind::IllegalAccess);
        let err = m
            .store(Space::Device, Space::Host, 0, 0, Value::Int(1), 0)
            .unwrap_err();
        assert_eq!(err.kind, RuntimeErrorKind::IllegalAccess);
    }

    #[test]
    fn out_of_bounds() {
        let m = mem();
        let b = m.alloc(Space::Host, Type::INT, 4, Value::Int(0));
        let err = m.load(Space::Host, Space::Host, b, 4).unwrap_err();
        assert_eq!(err.kind, RuntimeErrorKind::OutOfBounds);
    }

    #[test]
    fn copy_crosses_spaces() {
        let m = mem();
        let h = m.alloc(Space::Host, Type::INT, 4, Value::Int(7));
        let d = m.alloc(Space::Device, Type::INT, 4, Value::Int(0));
        m.copy(Space::Device, d, 0, Space::Host, h, 0, 4).unwrap();
        assert_eq!(
            m.load(Space::Device, Space::Device, d, 0).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn copy_bounds_checked() {
        let m = mem();
        let h = m.alloc(Space::Host, Type::INT, 4, Value::Int(0));
        let d = m.alloc(Space::Device, Type::INT, 2, Value::Int(0));
        let err = m
            .copy(Space::Device, d, 0, Space::Host, h, 0, 4)
            .unwrap_err();
        assert_eq!(err.kind, RuntimeErrorKind::OutOfBounds);
    }

    #[test]
    fn double_free_and_use_after_free() {
        let m = mem();
        let b = m.alloc(Space::Host, Type::INT, 4, Value::Int(0));
        m.free(Space::Host, b).unwrap();
        assert_eq!(
            m.free(Space::Host, b).unwrap_err().kind,
            RuntimeErrorKind::UseAfterFree
        );
        assert_eq!(
            m.load(Space::Host, Space::Host, b, 0).unwrap_err().kind,
            RuntimeErrorKind::UseAfterFree
        );
    }

    #[test]
    fn race_detector_flags_conflicting_writes() {
        let m = Memory::new(true, false);
        let d = m.alloc(Space::Device, Type::INT, 4, Value::Int(0));
        m.detector.begin_kernel();
        m.store(Space::Device, Space::Device, d, 1, Value::Int(1), 10)
            .unwrap();
        m.store(Space::Device, Space::Device, d, 1, Value::Int(2), 11)
            .unwrap();
        // Same thread rewriting is fine.
        m.store(Space::Device, Space::Device, d, 2, Value::Int(1), 5)
            .unwrap();
        m.store(Space::Device, Space::Device, d, 2, Value::Int(2), 5)
            .unwrap();
        let races = m.detector.races();
        assert_eq!(races.len(), 1);
        assert!(races[0].contains("element 1"));
    }

    #[test]
    fn shared_write_recorder_flags_cross_thread_scalar_writes() {
        let m = Memory::new(false, true);
        // Same thread rewriting a shared scalar is fine.
        m.detector.record_shared_write(0, "sum", 3);
        m.detector.record_shared_write(0, "sum", 3);
        assert!(m.detector.races().is_empty());
        // A second thread conflicts — reported exactly once.
        m.detector.record_shared_write(0, "sum", 4);
        m.detector.record_shared_write(0, "sum", 5);
        let races = m.detector.races();
        assert_eq!(races.len(), 1);
        assert!(races[0].contains("'sum'"), "{races:?}");
        // Distinct regions are independent.
        m.detector.record_shared_write(1, "sum", 0);
        assert_eq!(m.detector.races().len(), 1);
        // Off by default: no recording.
        let off = Memory::new(false, false);
        off.detector.record_shared_write(0, "x", 1);
        off.detector.record_shared_write(0, "x", 2);
        assert!(off.detector.races().is_empty());
    }

    #[test]
    fn fill_respects_bounds() {
        let m = mem();
        let b = m.alloc(Space::Host, Type::INT, 4, Value::Int(1));
        m.fill(Space::Host, Space::Host, b, 1, 2, Value::Int(9))
            .unwrap();
        assert_eq!(
            m.load(Space::Host, Space::Host, b, 0).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            m.load(Space::Host, Space::Host, b, 1).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            m.load(Space::Host, Space::Host, b, 2).unwrap(),
            Value::Int(9)
        );
        assert!(m
            .fill(Space::Host, Space::Host, b, 3, 5, Value::Int(0))
            .is_err());
    }
}
