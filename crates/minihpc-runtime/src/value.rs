//! Runtime values for the MiniHPC interpreter.

use minihpc_lang::ast::{Block, Param, ScalarType, Type};
use std::sync::Arc;

/// Which address space a pointer or buffer lives in. The simulated GPU has a
/// discrete memory: host dereferences of device pointers (and vice versa)
/// are illegal accesses, reproducing the classic missing-`cudaMemcpy` /
/// missing-`map` failure modes at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    Host,
    Device,
}

/// An element-addressed pointer into a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pointer {
    pub space: Space,
    pub buffer: usize,
    /// Offset in *elements* (MiniHPC pointer arithmetic is element-wise;
    /// `sizeof` still reports C-like byte sizes for allocation arithmetic).
    pub offset: usize,
}

/// CUDA `dim3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    pub fn scalar(n: u32) -> Self {
        Dim3 { x: n, y: 1, z: 1 }
    }

    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

/// A struct value (by-value semantics, fields ordered per the definition).
#[derive(Debug, Clone, PartialEq)]
pub struct StructVal {
    pub name: String,
    pub fields: Vec<Value>,
}

/// A Kokkos view handle: a reference to a (device or host) buffer plus its
/// logical shape. Copying the handle shares the buffer, exactly like Kokkos.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewHandle {
    pub space: Space,
    pub buffer: usize,
    pub dims: [usize; 2],
    pub rank: u8,
    pub elem: ScalarType,
}

impl ViewHandle {
    pub fn len(&self) -> usize {
        match self.rank {
            1 => self.dims[0],
            _ => self.dims[0] * self.dims[1],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn flat_index(&self, indices: &[i64]) -> Option<usize> {
        match (self.rank, indices) {
            (1, [i]) if *i >= 0 && (*i as usize) < self.dims[0] => Some(*i as usize),
            (2, [i, j])
                if *i >= 0
                    && (*i as usize) < self.dims[0]
                    && *j >= 0
                    && (*j as usize) < self.dims[1] =>
            {
                Some(*i as usize * self.dims[1] + *j as usize)
            }
            _ => None,
        }
    }
}

/// A Kokkos execution policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Policy {
    Range { lo: i64, hi: i64 },
    MDRange { lo: [i64; 2], hi: [i64; 2] },
}

/// A lambda closure: parameters, body, and the by-value captured environment.
#[derive(Debug, Clone)]
pub struct Closure {
    pub params: Vec<Param>,
    pub body: Arc<Block>,
    pub captures: Vec<(String, Value)>,
}

impl PartialEq for Closure {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(Arc::as_ptr(&self.body), Arc::as_ptr(&other.body))
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Void,
    Int(i64),
    Float(f64),
    Bool(bool),
    Ptr(Pointer),
    /// The null pointer.
    Null,
    Str(Arc<str>),
    Dim3(Dim3),
    Struct(Box<StructVal>),
    View(ViewHandle),
    Policy(Policy),
    Lambda(Box<Closure>),
    /// `malloc`'s raw result: typed on first assignment to a typed pointer.
    UntypedAlloc {
        bytes: usize,
    },
}

impl Value {
    /// Truthiness for conditions.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Bool(b) => *b,
            Value::Ptr(_) | Value::View(_) => true,
            Value::Null => false,
            Value::Str(s) => !s.is_empty(),
            _ => false,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Void => "void",
            Value::Int(_) => "int",
            Value::Float(_) => "double",
            Value::Bool(_) => "bool",
            Value::Ptr(_) => "pointer",
            Value::Null => "nullptr",
            Value::Str(_) => "string",
            Value::Dim3(_) => "dim3",
            Value::Struct(_) => "struct",
            Value::View(_) => "Kokkos::View",
            Value::Policy(_) => "Kokkos::Policy",
            Value::Lambda(_) => "lambda",
            Value::UntypedAlloc { .. } => "void*",
        }
    }
}

/// Byte size of a type, for `sizeof` and allocation arithmetic.
pub fn byte_size(ty: &Type, struct_sizes: &dyn Fn(&str) -> Option<usize>) -> usize {
    match ty.unqualified() {
        Type::Scalar(s) => match s {
            ScalarType::Void => 1,
            ScalarType::Bool | ScalarType::Char => 1,
            ScalarType::Int => 4,
            ScalarType::Long | ScalarType::SizeT => 8,
            ScalarType::Float => 4,
            ScalarType::Double => 8,
        },
        Type::Ptr(_) => 8,
        Type::Named(n) => struct_sizes(n).unwrap_or(8),
        Type::Dim3 => 12,
        Type::View { .. } => 16,
        Type::Const(_) => unreachable!("unqualified strips const"),
    }
}

/// The zero value of a type (for fresh allocations).
pub fn zero_value(ty: &Type) -> Value {
    match ty.unqualified() {
        Type::Scalar(s) => match s {
            ScalarType::Float | ScalarType::Double => Value::Float(0.0),
            ScalarType::Bool => Value::Bool(false),
            ScalarType::Void => Value::Void,
            _ => Value::Int(0),
        },
        Type::Ptr(_) => Value::Null,
        Type::Dim3 => Value::Dim3(Dim3::new(0, 0, 0)),
        _ => Value::Int(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Float(0.5).truthy());
        assert!(!Value::Null.truthy());
        assert!(Value::Ptr(Pointer {
            space: Space::Host,
            buffer: 0,
            offset: 0
        })
        .truthy());
    }

    #[test]
    fn dim3_count() {
        assert_eq!(Dim3::new(2, 3, 1).count(), 6);
        assert_eq!(Dim3::scalar(32).count(), 32);
    }

    #[test]
    fn view_flat_index_rank2() {
        let v = ViewHandle {
            space: Space::Device,
            buffer: 0,
            dims: [4, 8],
            rank: 2,
            elem: ScalarType::Double,
        };
        assert_eq!(v.flat_index(&[0, 0]), Some(0));
        assert_eq!(v.flat_index(&[1, 2]), Some(10));
        assert_eq!(v.flat_index(&[4, 0]), None, "row out of range");
        assert_eq!(v.flat_index(&[0, 8]), None, "col out of range");
        assert_eq!(v.flat_index(&[-1, 0]), None);
        assert_eq!(v.len(), 32);
    }

    #[test]
    fn byte_sizes() {
        let no_structs = |_: &str| None;
        assert_eq!(byte_size(&Type::INT, &no_structs), 4);
        assert_eq!(byte_size(&Type::DOUBLE, &no_structs), 8);
        assert_eq!(byte_size(&Type::ptr(Type::DOUBLE), &no_structs), 8);
        assert_eq!(byte_size(&Type::Scalar(ScalarType::SizeT), &no_structs), 8);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Float(3.9).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }
}
