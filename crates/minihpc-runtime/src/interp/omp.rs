//! OpenMP directive execution: host `parallel for`, `target data` mapping,
//! and `target teams distribute parallel for` offload loops.

use super::*;
use minihpc_lang::pragma::ArraySection;

/// A mapping established by a `map(...)` clause for the extent of a region.
struct Mapping {
    var: String,
    host: Pointer,
    device_buffer: usize,
    lo: usize,
    len: usize,
    kind: MapKind,
    /// True when the variable was already device-mapped by an enclosing
    /// region (present-table hit): no transfer, no rebinding restore needed.
    preexisting: bool,
}

impl<'e> Interp<'e> {
    pub(super) fn exec_omp(
        &self,
        frame: &mut Frame,
        d: &OmpDirective,
        body: Option<&Stmt>,
    ) -> IResult<Flow> {
        if d.is_standalone() {
            return Ok(Flow::Normal);
        }
        let Some(body) = body else {
            return Ok(Flow::Normal);
        };
        // Without -fopenmp the pragma was warned about at compile time and
        // is ignored: the body executes as plain serial code.
        if !self.exe.features.openmp {
            return self.exec_stmt(frame, body);
        }

        let is_target = d.targets_device();
        // Establish map-clause mappings (target constructs only; `map` on a
        // host directive was a compile-time warning and is a no-op here).
        let mappings = if is_target {
            self.enter_mappings(frame, d)?
        } else {
            vec![]
        };
        // Mapped variables are rebound inside a fresh scope.
        frame.scopes.push(HashMap::new());
        for m in &mappings {
            if !m.preexisting {
                frame.scopes.last_mut().unwrap().insert(
                    m.var.clone(),
                    Value::Ptr(Pointer {
                        space: Space::Device,
                        buffer: m.device_buffer,
                        offset: 0,
                    }),
                );
            }
        }

        let result = self.exec_omp_inner(frame, d, body, is_target);

        frame.scopes.pop();
        // Copy back and release the mappings even on error paths? On error
        // the run is abandoned, so ordering does not matter; on success we
        // must copy back.
        if result.is_ok() {
            self.exit_mappings(&mappings)?;
        }
        result
    }

    fn exec_omp_inner(
        &self,
        frame: &mut Frame,
        d: &OmpDirective,
        body: &Stmt,
        is_target: bool,
    ) -> IResult<Flow> {
        // `target data` and plain region constructs: execute the body with
        // the mappings in place. `target data` itself stays on the host;
        // a bare `target` region moves execution to the device.
        if !d.is_loop_directive() {
            if d.has(OmpConstruct::TargetData) {
                return self.exec_stmt(frame, body);
            }
            if d.has(OmpConstruct::Target) {
                self.telemetry.record_device_region(1);
                let saved = frame.space;
                frame.space = Space::Device;
                let r = self.exec_stmt(frame, body);
                frame.space = saved;
                return r;
            }
            // Host `parallel` region (no loop): body runs once per "team";
            // we execute it once, which is observationally the sequential
            // schedule.
            self.telemetry
                .host_parallel_regions
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return self.exec_stmt(frame, body);
        }

        // Loop directives.
        let StmtKind::For { .. } = body.kind else {
            return Err(type_err(format!(
                "'#pragma {}' must be followed by a for loop",
                d.text()
            ))
            .into());
        };
        let collapse = d.collapse().max(1) as usize;
        let nest = self.analyze_nest(frame, body, collapse)?;

        let space = if is_target { Space::Host } else { frame.space };
        let _ = space;
        let parallel_semantics = d.has(OmpConstruct::Parallel) || d.has(OmpConstruct::Teams);

        if is_target {
            let total = nest.as_ref().map(|n| n.total()).unwrap_or(1);
            self.telemetry
                .record_device_region(if parallel_semantics { total } else { 1 });
            self.mem.detector.begin_kernel();
        } else if parallel_semantics {
            self.telemetry
                .host_parallel_regions
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }

        let exec_space = if is_target {
            Space::Device
        } else {
            frame.space
        };

        match nest {
            Some(nest) => self.run_loop_nest(frame, d, &nest, exec_space),
            None => {
                // Non-canonical loop: run it serially in the right space.
                let saved = frame.space;
                frame.space = exec_space;
                let r = self.exec_stmt(frame, body);
                frame.space = saved;
                r.map(|_| Flow::Normal)
            }
        }
    }

    fn run_loop_nest(
        &self,
        frame: &mut Frame,
        d: &OmpDirective,
        nest: &LoopNest,
        exec_space: Space,
    ) -> IResult<Flow> {
        let total = nest.total();
        let reductions: Vec<(ReductionOp, String)> = d
            .reductions()
            .flat_map(|(op, vars)| vars.iter().map(move |v| (*op, v.clone())))
            .collect();

        let use_parallel = self.config.parallel
            && total > 1
            && (d.has(OmpConstruct::Parallel) || d.has(OmpConstruct::Teams));

        if !use_parallel {
            // Sequential schedule in a shared frame: reductions and scalar
            // side effects work naturally.
            let saved = frame.space;
            frame.space = exec_space;
            let result = (|| -> IResult<()> {
                for logical in 0..total {
                    frame.scopes.push(HashMap::new());
                    let indices = nest.indices_of(logical);
                    for (var, idx) in nest.vars.iter().zip(&indices) {
                        frame.declare(var, Value::Int(*idx), Some(Type::INT));
                    }
                    let r = self.exec_stmt(frame, &nest.body);
                    frame.scopes.pop();
                    r?;
                }
                Ok(())
            })();
            frame.space = saved;
            result?;
            return Ok(Flow::Normal);
        }

        // Parallel schedule: workers get frames built from a snapshot of the
        // visible bindings; reduction variables start from the identity and
        // are combined at the end.
        let snapshot: Vec<(String, Value)> = frame.visible();
        let types = frame.types.clone();
        let depth = frame.depth;
        let n_workers = self.config.workers.max(1);
        let chunk = total.div_ceil(n_workers as u64).max(1);
        let combined: Mutex<Vec<Vec<(String, Value)>>> = Mutex::new(Vec::new());

        // Opt-in shared-write recording: writes that resolve into the
        // snapshot scope (or globals) from more than one worker are
        // conflicting shared writes — unless the directive privatizes the
        // variable (reduction / private / firstprivate).
        let watch = if self.mem.detector.recording_shared() {
            let mut exempt: std::collections::HashSet<String> =
                reductions.iter().map(|(_, v)| v.clone()).collect();
            for c in &d.clauses {
                if let minihpc_lang::pragma::OmpClause::Private(vars)
                | minihpc_lang::pragma::OmpClause::FirstPrivate(vars) = c
                {
                    exempt.extend(vars.iter().cloned());
                }
            }
            Some(Arc::new(RegionWatch {
                region: self.regions.fetch_add(1, Ordering::Relaxed),
                exempt,
            }))
        } else {
            None
        };

        let run_chunk = |interp: &Self, w: u64| -> IResult<()> {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(total);
            if lo >= hi {
                return Ok(());
            }
            let mut wframe = Frame {
                scopes: vec![snapshot.iter().cloned().collect(), HashMap::new()],
                types: types.clone(),
                space: exec_space,
                thread: w,
                cuda: None,
                depth,
                watch: watch.clone(),
                watch_scopes: 1,
            };
            // Private reduction accumulators.
            for (op, var) in &reductions {
                wframe.set_existing(var, reduction_identity(*op));
            }
            for logical in lo..hi {
                wframe.scopes.push(HashMap::new());
                let indices = nest.indices_of(logical);
                for (var, idx) in nest.vars.iter().zip(&indices) {
                    wframe.declare(var, Value::Int(*idx), Some(Type::INT));
                }
                let r = interp.exec_stmt(&mut wframe, &nest.body);
                wframe.scopes.pop();
                r?;
            }
            let finals: Vec<(String, Value)> = reductions
                .iter()
                .map(|(_, var)| {
                    (
                        var.clone(),
                        wframe.get(var).cloned().unwrap_or(Value::Int(0)),
                    )
                })
                .collect();
            combined.lock().push(finals);
            Ok(())
        };

        self.run_indices_parallel(n_workers as u64, &run_chunk)?;

        // Fold worker contributions into the shared frame.
        for worker_finals in combined.into_inner() {
            for ((op, var), (_, v)) in reductions.iter().zip(worker_finals) {
                let current = frame
                    .get(var)
                    .cloned()
                    .ok_or_else(|| type_err(format!("reduction variable '{var}' not found")))?;
                let merged = combine_reduction(*op, current, v)?;
                frame.set_existing(var, merged);
            }
        }
        Ok(Flow::Normal)
    }

    // -- map clauses -------------------------------------------------------

    fn enter_mappings(&self, frame: &mut Frame, d: &OmpDirective) -> IResult<Vec<Mapping>> {
        let mut mappings = Vec::new();
        let clauses: Vec<(MapKind, Vec<ArraySection>)> =
            d.map_clauses().map(|(k, s)| (*k, s.clone())).collect();
        for (kind, sections) in clauses {
            for section in sections {
                let current = frame
                    .get(&section.var)
                    .cloned()
                    .or_else(|| self.globals.lock().get(&section.var).cloned())
                    .ok_or_else(|| {
                        type_err(format!("mapped variable '{}' not found", section.var))
                    })?;
                let ptr = match current {
                    Value::Ptr(p) => p,
                    // Already mapped by an enclosing region, or a scalar:
                    // scalars are implicitly firstprivate (copied by the
                    // frame snapshot), so nothing to do.
                    Value::Int(_) | Value::Float(_) | Value::Bool(_) => continue,
                    Value::View(_) => continue, // views are device-native
                    other => {
                        return Err(type_err(format!(
                            "cannot map {} variable '{}'",
                            other.type_name(),
                            section.var
                        ))
                        .into())
                    }
                };
                if ptr.space == Space::Device {
                    mappings.push(Mapping {
                        var: section.var.clone(),
                        host: ptr,
                        device_buffer: ptr.buffer,
                        lo: 0,
                        len: 0,
                        kind,
                        preexisting: true,
                    });
                    continue;
                }
                // Evaluate the array section bounds.
                let (lo, len) = match section.ranges.first() {
                    Some((lo_e, len_e)) => {
                        let lo = self
                            .eval(frame, lo_e)?
                            .as_int()
                            .filter(|v| *v >= 0)
                            .ok_or_else(|| type_err("map lower bound must be >= 0"))?
                            as usize;
                        let len = self
                            .eval(frame, len_e)?
                            .as_int()
                            .filter(|v| *v >= 0)
                            .ok_or_else(|| type_err("map length must be >= 0"))?
                            as usize;
                        (lo, len)
                    }
                    None => {
                        // Bare pointer in a map clause: map the whole buffer.
                        let len = self
                            .mem
                            .len_of(ptr.space, ptr.buffer)
                            .map_err(Interrupt::Rt)?;
                        (0, len.saturating_sub(ptr.offset))
                    }
                };
                let elem = self
                    .mem
                    .elem_type(ptr.space, ptr.buffer)
                    .map_err(Interrupt::Rt)?;
                let dev = self.alloc_zeroed(Space::Device, elem, len);
                if kind.copies_to_device() {
                    self.mem
                        .copy(
                            Space::Device,
                            dev,
                            0,
                            Space::Host,
                            ptr.buffer,
                            ptr.offset + lo,
                            len,
                        )
                        .map_err(Interrupt::Rt)?;
                }
                mappings.push(Mapping {
                    var: section.var.clone(),
                    host: ptr,
                    device_buffer: dev,
                    lo,
                    len,
                    kind,
                    preexisting: false,
                });
            }
        }
        Ok(mappings)
    }

    fn exit_mappings(&self, mappings: &[Mapping]) -> IResult<()> {
        for m in mappings {
            if m.preexisting || !m.kind.copies_from_device() {
                continue;
            }
            self.mem
                .copy(
                    Space::Host,
                    m.host.buffer,
                    m.host.offset + m.lo,
                    Space::Device,
                    m.device_buffer,
                    0,
                    m.len,
                )
                .map_err(Interrupt::Rt)?;
        }
        Ok(())
    }

    // -- canonical loop analysis --------------------------------------------

    /// Analyze up to `depth` perfectly nested canonical loops, evaluating
    /// their bounds in `frame`. Returns `None` for non-canonical loops.
    fn analyze_nest(
        &self,
        frame: &mut Frame,
        stmt: &Stmt,
        depth: usize,
    ) -> IResult<Option<LoopNest>> {
        let mut vars = Vec::new();
        let mut starts = Vec::new();
        let mut counts = Vec::new();
        let mut current = stmt;
        for level in 0..depth {
            let StmtKind::For {
                init,
                cond,
                step,
                body,
            } = &current.kind
            else {
                return Ok(None);
            };
            // init: `int i = <expr>`
            let (var, start) = match init.as_deref().map(|s| &s.kind) {
                Some(StmtKind::Decl(d)) => {
                    let Some(Init::Expr(e)) = &d.init else {
                        return Ok(None);
                    };
                    let Some(start) = self.eval(frame, e)?.as_int() else {
                        return Ok(None);
                    };
                    (d.name.clone(), start)
                }
                _ => return Ok(None),
            };
            // cond: `i < expr` or `i <= expr`
            let Some(cond) = cond else { return Ok(None) };
            let end = match &cond.kind {
                ExprKind::Binary { op, lhs, rhs } => {
                    let lhs_is_var = matches!(&lhs.kind, ExprKind::Ident(n) if *n == var);
                    if !lhs_is_var {
                        return Ok(None);
                    }
                    let Some(bound) = self.eval(frame, rhs)?.as_int() else {
                        return Ok(None);
                    };
                    match op {
                        BinOp::Lt => bound,
                        BinOp::Le => bound + 1,
                        _ => return Ok(None),
                    }
                }
                _ => return Ok(None),
            };
            // step: `i++`, `++i`, `i += 1`, `i = i + 1`
            let step_ok = match step.as_ref().map(|e| &e.kind) {
                Some(ExprKind::Unary { op, expr })
                    if matches!(op, UnaryOp::PostInc | UnaryOp::PreInc)
                        && matches!(&expr.kind, ExprKind::Ident(n) if *n == var) =>
                {
                    true
                }
                Some(ExprKind::Assign {
                    op: Some(BinOp::Add),
                    lhs,
                    rhs,
                }) => {
                    matches!(&lhs.kind, ExprKind::Ident(n) if *n == var)
                        && matches!(rhs.kind, ExprKind::IntLit(1))
                }
                _ => false,
            };
            if !step_ok {
                return Ok(None);
            }
            vars.push(var);
            starts.push(start);
            counts.push((end - start).max(0) as u64);
            if level + 1 == depth {
                return Ok(Some(LoopNest {
                    vars,
                    starts,
                    counts,
                    body: (**body).clone(),
                }));
            }
            // Descend into the (single) nested loop.
            current = match &body.kind {
                StmtKind::Block(b) if b.stmts.len() == 1 => &b.stmts[0],
                StmtKind::For { .. } => body,
                _ => return Ok(None),
            };
            if !matches!(current.kind, StmtKind::For { .. }) {
                return Ok(None);
            }
        }
        Ok(None)
    }
}

/// A canonical (possibly collapsed) loop nest with precomputed bounds.
pub(super) struct LoopNest {
    pub vars: Vec<String>,
    pub starts: Vec<i64>,
    pub counts: Vec<u64>,
    pub body: Stmt,
}

impl LoopNest {
    pub fn total(&self) -> u64 {
        self.counts.iter().product()
    }

    /// Map a flat logical index to per-level loop variable values.
    pub fn indices_of(&self, mut logical: u64) -> Vec<i64> {
        let mut out = vec![0i64; self.vars.len()];
        for level in (0..self.vars.len()).rev() {
            let c = self.counts[level].max(1);
            out[level] = self.starts[level] + (logical % c) as i64;
            logical /= c;
        }
        out
    }
}

fn reduction_identity(op: ReductionOp) -> Value {
    match op {
        ReductionOp::Add | ReductionOp::BitOr | ReductionOp::BitXor => Value::Int(0),
        ReductionOp::Mul => Value::Int(1),
        ReductionOp::BitAnd => Value::Int(-1),
        ReductionOp::Min => Value::Float(f64::INFINITY),
        ReductionOp::Max => Value::Float(f64::NEG_INFINITY),
    }
}

fn combine_reduction(op: ReductionOp, a: Value, b: Value) -> IResult<Value> {
    let out = match op {
        ReductionOp::Add => expr::apply_binop(BinOp::Add, a, b).map_err(Interrupt::Rt)?,
        ReductionOp::Mul => expr::apply_binop(BinOp::Mul, a, b).map_err(Interrupt::Rt)?,
        ReductionOp::BitOr => expr::apply_binop(BinOp::BitOr, a, b).map_err(Interrupt::Rt)?,
        ReductionOp::BitXor => expr::apply_binop(BinOp::BitXor, a, b).map_err(Interrupt::Rt)?,
        ReductionOp::BitAnd => expr::apply_binop(BinOp::BitAnd, a, b).map_err(Interrupt::Rt)?,
        ReductionOp::Min => {
            let (x, y) = (a.as_float().unwrap_or(0.0), b.as_float().unwrap_or(0.0));
            Value::Float(x.min(y))
        }
        ReductionOp::Max => {
            let (x, y) = (a.as_float().unwrap_or(0.0), b.as_float().unwrap_or(0.0));
            Value::Float(x.max(y))
        }
    };
    Ok(out)
}

use super::expr;
