//! Expression evaluation, lvalue (place) resolution, and operators.

use super::*;

/// A resolved assignment target.
pub(super) enum Place {
    /// A named local or global variable.
    Var(String),
    /// A buffer element.
    Mem {
        space: Space,
        buffer: usize,
        index: usize,
    },
    /// A field of a struct held in another place.
    Field(Box<Place>, usize),
}

impl<'e> Interp<'e> {
    pub(super) fn eval(&self, frame: &mut Frame, e: &Expr) -> IResult<Value> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::FloatLit(v) => Ok(Value::Float(*v)),
            ExprKind::StrLit(s) => Ok(Value::Str(s.as_str().into())),
            ExprKind::CharLit(c) => Ok(Value::Int(*c as i64)),
            ExprKind::BoolLit(b) => Ok(Value::Bool(*b)),
            ExprKind::Ident(name) => self.eval_ident(frame, name),
            ExprKind::Path(_) => Err(type_err("a namespace path is not a value").into()),
            ExprKind::Paren(inner) => self.eval(frame, inner),
            ExprKind::Unary { op, expr } => self.eval_unary(frame, *op, expr),
            ExprKind::Binary { op, lhs, rhs } => {
                let a = self.eval(frame, lhs)?;
                // Short-circuit logicals.
                match op {
                    BinOp::And if !a.truthy() => return Ok(Value::Bool(false)),
                    BinOp::And => return Ok(Value::Bool(self.eval(frame, rhs)?.truthy())),
                    BinOp::Or if a.truthy() => return Ok(Value::Bool(true)),
                    BinOp::Or => return Ok(Value::Bool(self.eval(frame, rhs)?.truthy())),
                    _ => {}
                }
                let b = self.eval(frame, rhs)?;
                apply_binop(*op, a, b).map_err(Interrupt::Rt)
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let rhs_v = self.eval(frame, rhs)?;
                let place = self.resolve_place(frame, lhs)?;
                let value = match op {
                    Some(op) => {
                        let old = self.read_place(frame, &place)?;
                        apply_binop(*op, old, rhs_v).map_err(Interrupt::Rt)?
                    }
                    None => rhs_v,
                };
                // Coerce to the declared type of simple variables so that
                // `double x; x = 1;` stores a float.
                let value = match &place {
                    Place::Var(name) => match frame.types.get(name).cloned() {
                        Some(ty) => self.coerce(value, &ty)?,
                        None => value,
                    },
                    Place::Mem { space, buffer, .. } => {
                        let ty = self.mem.elem_type(*space, *buffer).map_err(Interrupt::Rt)?;
                        self.coerce(value, &ty)?
                    }
                    _ => value,
                };
                self.write_place(frame, &place, value.clone())?;
                Ok(value)
            }
            ExprKind::Ternary { cond, then, els } => {
                if self.eval(frame, cond)?.truthy() {
                    self.eval(frame, then)
                } else {
                    self.eval(frame, els)
                }
            }
            ExprKind::Call { callee, args } => self.eval_call(frame, callee, args),
            ExprKind::KernelLaunch {
                kernel,
                grid,
                block,
                args,
            } => self.cuda_launch(frame, kernel, grid, block, args),
            ExprKind::Index { .. } => {
                let place = self.resolve_place(frame, e)?;
                self.read_place(frame, &place)
            }
            ExprKind::Member {
                base,
                member,
                arrow,
            } => {
                let bv = self.eval(frame, base)?;
                let sv = if *arrow {
                    match bv {
                        Value::Ptr(p) => self
                            .mem
                            .load(frame.space, p.space, p.buffer, p.offset)
                            .map_err(Interrupt::Rt)?,
                        Value::Null => {
                            return Err(RuntimeError::illegal("null pointer dereference").into())
                        }
                        other => {
                            return Err(type_err(format!(
                                "'->' on non-pointer {}",
                                other.type_name()
                            ))
                            .into())
                        }
                    }
                } else {
                    bv
                };
                match sv {
                    Value::Dim3(d) => match member.as_str() {
                        "x" => Ok(Value::Int(d.x as i64)),
                        "y" => Ok(Value::Int(d.y as i64)),
                        "z" => Ok(Value::Int(d.z as i64)),
                        other => Err(type_err(format!("no member '{other}' in dim3")).into()),
                    },
                    Value::Struct(s) => {
                        let layout = self
                            .layouts
                            .get(&s.name)
                            .ok_or_else(|| type_err(format!("unknown struct '{}'", s.name)))?;
                        let idx = layout
                            .fields
                            .iter()
                            .position(|(n, _)| n == member)
                            .ok_or_else(|| {
                                type_err(format!("no field '{member}' in '{}'", s.name))
                            })?;
                        Ok(s.fields[idx].clone())
                    }
                    other => Err(type_err(format!(
                        "member access '{member}' on {}",
                        other.type_name()
                    ))
                    .into()),
                }
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.eval(frame, expr)?;
                self.coerce(v, ty)
            }
            ExprKind::SizeOfType(ty) => Ok(Value::Int(self.sizeof(ty) as i64)),
            ExprKind::SizeOfExpr(inner) => {
                // Prefer the declared type of a plain variable.
                if let ExprKind::Ident(name) = &inner.kind {
                    if let Some(ty) = frame
                        .types
                        .get(name)
                        .or_else(|| self.global_types.get(name))
                    {
                        return Ok(Value::Int(self.sizeof(ty) as i64));
                    }
                }
                if let ExprKind::Ident(name) = &inner.kind {
                    if let Some(l) = self.layouts.get(name) {
                        let sz: usize = l.fields.iter().map(|(_, t)| self.sizeof(t)).sum();
                        return Ok(Value::Int(sz.max(1) as i64));
                    }
                }
                let v = self.eval(frame, inner)?;
                let size: usize = match &v {
                    Value::Int(_) => 4,
                    Value::Float(_) => 8,
                    Value::Bool(_) => 1,
                    Value::Ptr(_) | Value::Null | Value::UntypedAlloc { .. } => 8,
                    Value::Struct(s) => self
                        .layouts
                        .get(&s.name)
                        .map(|l| l.fields.iter().map(|(_, t)| self.sizeof(t)).sum())
                        .unwrap_or(8),
                    _ => 8,
                };
                Ok(Value::Int(size as i64))
            }
            ExprKind::Lambda {
                capture: _,
                params,
                body,
            } => Ok(Value::Lambda(Box::new(Closure {
                params: params.clone(),
                body: Arc::new(body.clone()),
                captures: frame.visible(),
            }))),
        }
    }

    fn eval_ident(&self, frame: &mut Frame, name: &str) -> IResult<Value> {
        if let Some(v) = frame.get(name) {
            return Ok(v.clone());
        }
        if let Some(ctx) = frame.cuda {
            let d = match name {
                "threadIdx" => Some(ctx.thread_idx),
                "blockIdx" => Some(ctx.block_idx),
                "blockDim" => Some(ctx.block_dim),
                "gridDim" => Some(ctx.grid_dim),
                _ => None,
            };
            if let Some(d) = d {
                return Ok(Value::Dim3(d));
            }
        }
        if let Some(v) = self.globals.lock().get(name) {
            return Ok(v.clone());
        }
        match name {
            "cudaMemcpyHostToDevice" => Ok(Value::Int(1)),
            "cudaMemcpyDeviceToHost" => Ok(Value::Int(2)),
            "cudaMemcpyDeviceToDevice" => Ok(Value::Int(3)),
            "cudaSuccess" => Ok(Value::Int(0)),
            "RAND_MAX" => Ok(Value::Int(2147483647)),
            "INT_MAX" => Ok(Value::Int(i32::MAX as i64)),
            "DBL_MAX" => Ok(Value::Float(f64::MAX)),
            "NULL" => Ok(Value::Null),
            _ => Err(type_err(format!("use of unbound identifier '{name}' at run time")).into()),
        }
    }

    fn eval_unary(&self, frame: &mut Frame, op: UnaryOp, inner: &Expr) -> IResult<Value> {
        match op {
            UnaryOp::Neg => {
                let v = self.eval(frame, inner)?;
                match v {
                    Value::Int(n) => Ok(Value::Int(-n)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Bool(b) => Ok(Value::Int(-i64::from(b))),
                    other => Err(type_err(format!("cannot negate {}", other.type_name())).into()),
                }
            }
            UnaryOp::Not => Ok(Value::Bool(!self.eval(frame, inner)?.truthy())),
            UnaryOp::BitNot => {
                let n = self
                    .eval(frame, inner)?
                    .as_int()
                    .ok_or_else(|| type_err("operator ~ requires an integer"))?;
                Ok(Value::Int(!n))
            }
            UnaryOp::Deref => {
                let place = self.resolve_deref(frame, inner)?;
                self.read_place(frame, &place)
            }
            UnaryOp::AddrOf => {
                // `&lvalue` is meaningful for memory places only.
                match self.resolve_place(frame, inner)? {
                    Place::Mem {
                        space,
                        buffer,
                        index,
                    } => Ok(Value::Ptr(Pointer {
                        space,
                        buffer,
                        offset: index,
                    })),
                    Place::Var(name) => {
                        // Taking the address of a stack variable: MiniHPC
                        // promotes it to a 1-element buffer on first use.
                        let current = frame
                            .get(&name)
                            .cloned()
                            .or_else(|| self.globals.lock().get(&name).cloned())
                            .ok_or_else(|| type_err(format!("unbound variable '{name}'")))?;
                        let elem = frame
                            .types
                            .get(&name)
                            .cloned()
                            .unwrap_or(Type::Scalar(ScalarType::Long));
                        let buf = self.alloc_with(frame.space, elem, vec![current]);
                        let ptr = Value::Ptr(Pointer {
                            space: frame.space,
                            buffer: buf,
                            offset: 0,
                        });
                        // The variable itself now aliases the buffer: we
                        // rebind it to a pointer-backed mirror by keeping the
                        // old binding (value semantics). Supported uses are
                        // call-by-pointer out-params, handled by builtins.
                        Ok(ptr)
                    }
                    Place::Field(..) => {
                        Err(type_err("cannot take the address of a struct field").into())
                    }
                }
            }
            UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec => {
                let place = self.resolve_place(frame, inner)?;
                let old = self.read_place(frame, &place)?;
                let delta = if matches!(op, UnaryOp::PreInc | UnaryOp::PostInc) {
                    1
                } else {
                    -1
                };
                let new = match &old {
                    Value::Int(n) => Value::Int(n + delta),
                    Value::Float(f) => Value::Float(f + delta as f64),
                    Value::Ptr(p) => {
                        let off = p.offset as i64 + delta;
                        if off < 0 {
                            return Err(RuntimeError::oob(
                                "pointer decremented below buffer start",
                            )
                            .into());
                        }
                        Value::Ptr(Pointer {
                            offset: off as usize,
                            ..*p
                        })
                    }
                    other => {
                        return Err(
                            type_err(format!("cannot increment {}", other.type_name())).into()
                        )
                    }
                };
                self.write_place(frame, &place, new.clone())?;
                Ok(if matches!(op, UnaryOp::PostInc | UnaryOp::PostDec) {
                    old
                } else {
                    new
                })
            }
        }
    }

    fn resolve_deref(&self, frame: &mut Frame, ptr_expr: &Expr) -> IResult<Place> {
        let v = self.eval(frame, ptr_expr)?;
        match v {
            Value::Ptr(p) => Ok(Place::Mem {
                space: p.space,
                buffer: p.buffer,
                index: p.offset,
            }),
            Value::Null => Err(RuntimeError::illegal("null pointer dereference").into()),
            other => {
                Err(type_err(format!("cannot dereference {} value", other.type_name())).into())
            }
        }
    }

    /// Resolve an expression to an assignable place.
    pub(super) fn resolve_place(&self, frame: &mut Frame, e: &Expr) -> IResult<Place> {
        match &e.kind {
            ExprKind::Ident(name) => Ok(Place::Var(name.clone())),
            ExprKind::Paren(inner) => self.resolve_place(frame, inner),
            ExprKind::Unary {
                op: UnaryOp::Deref,
                expr,
            } => self.resolve_deref(frame, expr),
            ExprKind::Index { base, index } => {
                let base_v = self.eval(frame, base)?;
                let idx = self
                    .eval(frame, index)?
                    .as_int()
                    .ok_or_else(|| type_err("array index must be an integer"))?;
                match base_v {
                    Value::Ptr(p) => {
                        let off = p.offset as i64 + idx;
                        if off < 0 {
                            return Err(RuntimeError::oob(format!(
                                "negative effective index {off}"
                            ))
                            .into());
                        }
                        Ok(Place::Mem {
                            space: p.space,
                            buffer: p.buffer,
                            index: off as usize,
                        })
                    }
                    Value::Null => Err(RuntimeError::illegal("null pointer indexed").into()),
                    other => Err(type_err(format!(
                        "subscripted value has type {}",
                        other.type_name()
                    ))
                    .into()),
                }
            }
            ExprKind::Member {
                base,
                member,
                arrow,
            } => {
                let base_place = if *arrow {
                    self.resolve_deref(frame, base)?
                } else {
                    self.resolve_place(frame, base)?
                };
                let sv = self.read_place(frame, &base_place)?;
                let Value::Struct(s) = &sv else {
                    return Err(type_err(format!(
                        "member access '{member}' on non-struct {}",
                        sv.type_name()
                    ))
                    .into());
                };
                let layout = self
                    .layouts
                    .get(&s.name)
                    .ok_or_else(|| type_err(format!("unknown struct '{}'", s.name)))?;
                let idx = layout
                    .fields
                    .iter()
                    .position(|(n, _)| n == member)
                    .ok_or_else(|| {
                        type_err(format!("no field '{member}' in struct '{}'", s.name))
                    })?;
                Ok(Place::Field(Box::new(base_place), idx))
            }
            // Kokkos view element as lvalue: `v(i) = x;`
            ExprKind::Call { callee, args } => {
                if let ExprKind::Ident(name) = &callee.kind {
                    if let Some(Value::View(h)) = frame.get(name).cloned() {
                        return self.view_place(frame, &h, args);
                    }
                }
                Err(type_err("call expression is not assignable").into())
            }
            _ => Err(type_err("expression is not assignable").into()),
        }
    }

    pub(super) fn view_place(
        &self,
        frame: &mut Frame,
        h: &ViewHandle,
        args: &[Expr],
    ) -> IResult<Place> {
        let mut indices = Vec::with_capacity(args.len());
        for a in args {
            indices.push(
                self.eval(frame, a)?
                    .as_int()
                    .ok_or_else(|| type_err("view index must be an integer"))?,
            );
        }
        let flat = h.flat_index(&indices).ok_or_else(|| {
            RuntimeError::oob(format!(
                "view index {indices:?} out of bounds for extents {:?} (rank {})",
                &h.dims[..h.rank as usize],
                h.rank
            ))
        })?;
        Ok(Place::Mem {
            space: h.space,
            buffer: h.buffer,
            index: flat,
        })
    }

    pub(super) fn read_place(&self, frame: &Frame, place: &Place) -> IResult<Value> {
        match place {
            Place::Var(name) => frame
                .get(name)
                .cloned()
                .or_else(|| self.globals.lock().get(name).cloned())
                .ok_or_else(|| type_err(format!("unbound variable '{name}'")).into()),
            Place::Mem {
                space,
                buffer,
                index,
            } => self
                .mem
                .load(frame.space, *space, *buffer, *index)
                .map_err(Interrupt::Rt),
            Place::Field(base, idx) => {
                let v = self.read_place(frame, base)?;
                match v {
                    Value::Struct(s) => {
                        s.fields.get(*idx).cloned().ok_or_else(|| {
                            type_err(format!("field index {idx} out of range")).into()
                        })
                    }
                    other => Err(type_err(format!("field read on {}", other.type_name())).into()),
                }
            }
        }
    }

    pub(super) fn write_place(
        &self,
        frame: &mut Frame,
        place: &Place,
        value: Value,
    ) -> IResult<()> {
        match place {
            Place::Var(name) => {
                // Shared-write recording (opt-in): a write resolving into
                // the region's snapshot scope — or into globals — is a
                // write to state every worker sees.
                if let Some(watch) = &frame.watch {
                    let shared = match frame.scope_of(name) {
                        Some(i) => i < frame.watch_scopes,
                        None => true, // falls through to globals below
                    };
                    if shared && !watch.exempt.contains(name) {
                        self.mem
                            .detector
                            .record_shared_write(watch.region, name, frame.thread);
                    }
                }
                if frame.set_existing(name, value.clone()) {
                    return Ok(());
                }
                let mut globals = self.globals.lock();
                if let Some(slot) = globals.get_mut(name) {
                    *slot = value;
                    return Ok(());
                }
                Err(type_err(format!("assignment to unbound variable '{name}'")).into())
            }
            Place::Mem {
                space,
                buffer,
                index,
            } => self
                .mem
                .store(frame.space, *space, *buffer, *index, value, frame.thread)
                .map_err(Interrupt::Rt),
            Place::Field(base, idx) => {
                let current = self.read_place(frame, base)?;
                match current {
                    Value::Struct(mut s) => {
                        let slot = s
                            .fields
                            .get_mut(*idx)
                            .ok_or_else(|| type_err(format!("field index {idx} out of range")))?;
                        *slot = value;
                        self.write_place(frame, base, Value::Struct(s))
                    }
                    other => Err(type_err(format!("field write on {}", other.type_name())).into()),
                }
            }
        }
    }
}

/// Apply a binary operator to two values with C-like promotion.
pub(super) fn apply_binop(op: BinOp, a: Value, b: Value) -> RtResult<Value> {
    use BinOp::*;
    // Pointer arithmetic and comparison.
    match (&a, &b) {
        (Value::Ptr(p), other) if matches!(op, Add | Sub) => {
            let n = other
                .as_int()
                .ok_or_else(|| type_err("pointer arithmetic requires an integer"))?;
            let delta = if op == Sub { -n } else { n };
            let off = p.offset as i64 + delta;
            if off < 0 {
                return Err(RuntimeError::oob("pointer moved below buffer start"));
            }
            return Ok(Value::Ptr(Pointer {
                offset: off as usize,
                ..*p
            }));
        }
        (other, Value::Ptr(p)) if op == Add => {
            let n = other
                .as_int()
                .ok_or_else(|| type_err("pointer arithmetic requires an integer"))?;
            let off = p.offset as i64 + n;
            if off < 0 {
                return Err(RuntimeError::oob("pointer moved below buffer start"));
            }
            return Ok(Value::Ptr(Pointer {
                offset: off as usize,
                ..*p
            }));
        }
        (Value::Ptr(p), Value::Ptr(q)) => {
            return match op {
                Sub => Ok(Value::Int(p.offset as i64 - q.offset as i64)),
                Eq => Ok(Value::Bool(p == q)),
                Ne => Ok(Value::Bool(p != q)),
                Lt => Ok(Value::Bool(p.offset < q.offset)),
                Gt => Ok(Value::Bool(p.offset > q.offset)),
                Le => Ok(Value::Bool(p.offset <= q.offset)),
                Ge => Ok(Value::Bool(p.offset >= q.offset)),
                _ => Err(type_err("invalid pointer operation")),
            };
        }
        (Value::Ptr(_) | Value::Null, Value::Null) | (Value::Null, Value::Ptr(_)) => {
            let same = matches!((&a, &b), (Value::Null, Value::Null));
            return match op {
                Eq => Ok(Value::Bool(same)),
                Ne => Ok(Value::Bool(!same)),
                _ => Err(type_err("invalid null pointer operation")),
            };
        }
        _ => {}
    }

    let both_int = matches!(&a, Value::Int(_) | Value::Bool(_))
        && matches!(&b, Value::Int(_) | Value::Bool(_));
    if both_int {
        let x = a.as_int().unwrap();
        let y = b.as_int().unwrap();
        let v = match op {
            Add => Value::Int(x.wrapping_add(y)),
            Sub => Value::Int(x.wrapping_sub(y)),
            Mul => Value::Int(x.wrapping_mul(y)),
            Div => {
                if y == 0 {
                    return Err(RuntimeError::new(
                        RuntimeErrorKind::DivByZero,
                        "integer division by zero",
                    ));
                }
                Value::Int(x.wrapping_div(y))
            }
            Rem => {
                if y == 0 {
                    return Err(RuntimeError::new(
                        RuntimeErrorKind::DivByZero,
                        "integer modulo by zero",
                    ));
                }
                Value::Int(x.wrapping_rem(y))
            }
            Shl => Value::Int(x.wrapping_shl(y as u32 & 63)),
            Shr => Value::Int((x as u64 >> (y as u32 & 63)) as i64),
            BitAnd => Value::Int(x & y),
            BitOr => Value::Int(x | y),
            BitXor => Value::Int(x ^ y),
            Lt => Value::Bool(x < y),
            Gt => Value::Bool(x > y),
            Le => Value::Bool(x <= y),
            Ge => Value::Bool(x >= y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            And => Value::Bool(x != 0 && y != 0),
            Or => Value::Bool(x != 0 || y != 0),
        };
        return Ok(v);
    }

    let (Some(x), Some(y)) = (a.as_float(), b.as_float()) else {
        return Err(type_err(format!(
            "invalid operands to '{}' ({} and {})",
            op.symbol(),
            a.type_name(),
            b.type_name()
        )));
    };
    let v = match op {
        Add => Value::Float(x + y),
        Sub => Value::Float(x - y),
        Mul => Value::Float(x * y),
        Div => Value::Float(x / y), // IEEE semantics: inf/nan like C
        Rem => Value::Float(x % y),
        Lt => Value::Bool(x < y),
        Gt => Value::Bool(x > y),
        Le => Value::Bool(x <= y),
        Ge => Value::Bool(x >= y),
        Eq => Value::Bool(x == y),
        Ne => Value::Bool(x != y),
        And => Value::Bool(x != 0.0 && y != 0.0),
        Or => Value::Bool(x != 0.0 || y != 0.0),
        Shl | Shr | BitAnd | BitOr | BitXor => {
            return Err(type_err(format!(
                "bitwise operator '{}' requires integer operands",
                op.symbol()
            )))
        }
    };
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ops() {
        assert_eq!(
            apply_binop(BinOp::Add, Value::Int(2), Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            apply_binop(BinOp::BitXor, Value::Int(5), Value::Int(3)).unwrap(),
            Value::Int(6)
        );
        assert_eq!(
            apply_binop(BinOp::Div, Value::Int(7), Value::Int(2)).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn div_by_zero() {
        let err = apply_binop(BinOp::Div, Value::Int(1), Value::Int(0)).unwrap_err();
        assert_eq!(err.kind, RuntimeErrorKind::DivByZero);
        // Float division by zero is IEEE (inf), not an error.
        assert_eq!(
            apply_binop(BinOp::Div, Value::Float(1.0), Value::Float(0.0)).unwrap(),
            Value::Float(f64::INFINITY)
        );
    }

    #[test]
    fn mixed_promotes_to_float() {
        assert_eq!(
            apply_binop(BinOp::Mul, Value::Int(2), Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn pointer_arithmetic() {
        let p = Value::Ptr(Pointer {
            space: Space::Host,
            buffer: 0,
            offset: 4,
        });
        match apply_binop(BinOp::Add, p.clone(), Value::Int(3)).unwrap() {
            Value::Ptr(q) => assert_eq!(q.offset, 7),
            other => panic!("{other:?}"),
        }
        match apply_binop(BinOp::Sub, p.clone(), Value::Int(4)).unwrap() {
            Value::Ptr(q) => assert_eq!(q.offset, 0),
            other => panic!("{other:?}"),
        }
        assert!(apply_binop(BinOp::Sub, p, Value::Int(5)).is_err());
    }

    #[test]
    fn bitwise_on_float_rejected() {
        assert!(apply_binop(BinOp::BitXor, Value::Float(1.0), Value::Int(1)).is_err());
    }

    #[test]
    fn null_comparisons() {
        assert_eq!(
            apply_binop(BinOp::Eq, Value::Null, Value::Null).unwrap(),
            Value::Bool(true)
        );
        let p = Value::Ptr(Pointer {
            space: Space::Host,
            buffer: 0,
            offset: 0,
        });
        assert_eq!(
            apply_binop(BinOp::Ne, p, Value::Null).unwrap(),
            Value::Bool(true)
        );
    }
}
