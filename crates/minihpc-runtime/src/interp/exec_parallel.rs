//! The parallel index-space executor: fans logical indices out across real
//! OS threads with `crossbeam::thread::scope`.
//!
//! Each logical index builds its own [`Frame`], so worker closures share
//! only `&Interp` (whose memory system is lock-protected). The first error
//! wins; remaining workers observe the poison flag and stop at their next
//! index.

use super::*;
use std::sync::atomic::AtomicBool;

impl<'e> Interp<'e> {
    /// Run `f(0..total)` across the configured worker pool. `f` must build
    /// its own frame per index (or per worker chunk).
    pub(super) fn run_indices_parallel<F>(&self, total: u64, f: &F) -> IResult<()>
    where
        F: Fn(&Self, u64) -> IResult<()> + Sync,
    {
        if total == 0 {
            return Ok(());
        }
        let workers = (self.config.workers.max(1) as u64).min(total);
        let chunk = total.div_ceil(workers);
        let poison = AtomicBool::new(false);
        let first_error: Mutex<Option<Interrupt>> = Mutex::new(None);

        crossbeam::thread::scope(|scope| {
            for w in 0..workers {
                let poison = &poison;
                let first_error = &first_error;
                scope.spawn(move |_| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total);
                    for i in lo..hi {
                        if poison.load(Ordering::Relaxed) {
                            return;
                        }
                        if let Err(e) = f(self, i) {
                            poison.store(true, Ordering::Relaxed);
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                    }
                });
            }
        })
        .expect("worker thread panicked");

        match first_error.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}
