//! Builtin function dispatch: libc, libm, the CUDA runtime API, cuRAND, and
//! the Kokkos core API.

use super::expr::Place;
use super::*;

impl<'e> Interp<'e> {
    pub(super) fn eval_call(
        &self,
        frame: &mut Frame,
        callee: &Expr,
        args: &[Expr],
    ) -> IResult<Value> {
        match &callee.kind {
            ExprKind::Ident(name) => {
                // Kokkos view element read: `v(i, j)`.
                if let Some(Value::View(h)) = frame.get(name).cloned() {
                    let place = self.view_place(frame, &h, args)?;
                    return self.read_place(frame, &place);
                }
                // Out-parameter builtins get the raw arg expressions.
                match name.as_str() {
                    "cudaMalloc" => return self.cuda_malloc(frame, args),
                    "curand_init" => return self.curand_init(frame, args),
                    "curand" | "curand_uniform" | "curand_uniform_double" => {
                        return self.curand_next(frame, name, args)
                    }
                    _ => {}
                }
                // User function?
                if let Some(f) = self.exe.functions.get(name.as_str()) {
                    if f.quals.cuda_global && frame.cuda.is_none() {
                        return Err(type_err(format!(
                            "__global__ function '{name}' called without a launch"
                        ))
                        .into());
                    }
                    let mut values = Vec::with_capacity(args.len());
                    for a in args {
                        values.push(self.eval(frame, a)?);
                    }
                    return self.call_function(frame, f, values);
                }
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(frame, a)?);
                }
                self.call_host_builtin(frame, name, values, args)
            }
            ExprKind::Member { base, member, .. } => {
                // View method calls.
                let bv = self.eval(frame, base)?;
                if let Value::View(h) = bv {
                    match member.as_str() {
                        "extent" => {
                            let i = args
                                .first()
                                .map(|a| self.eval(frame, a))
                                .transpose()?
                                .and_then(|v| v.as_int())
                                .unwrap_or(0);
                            let d = h.dims.get(i as usize).copied().unwrap_or(1);
                            return Ok(Value::Int(d as i64));
                        }
                        other => {
                            return Err(
                                type_err(format!("unsupported view method '{other}'")).into()
                            )
                        }
                    }
                }
                Err(type_err("method calls are only supported on Kokkos views").into())
            }
            ExprKind::Path(segments) => self.eval_kokkos(frame, segments, args),
            _ => Err(type_err("unsupported call target").into()),
        }
    }

    fn call_host_builtin(
        &self,
        frame: &mut Frame,
        name: &str,
        values: Vec<Value>,
        arg_exprs: &[Expr],
    ) -> IResult<Value> {
        let int = |v: &Value| v.as_int().unwrap_or(0);
        let flt = |v: &Value| v.as_float().unwrap_or(0.0);
        let arg = |i: usize| values.get(i).cloned().unwrap_or(Value::Int(0));
        match name {
            "printf" => {
                let Some(Value::Str(fmt)) = values.first() else {
                    return Err(type_err("printf requires a format string").into());
                };
                let text = printf(fmt, &values[1..]);
                self.out.lock().push_str(&text);
                Ok(Value::Int(text.len() as i64))
            }
            "fprintf" => {
                let Some(Value::Str(fmt)) = values.get(1) else {
                    return Err(type_err("fprintf requires a format string").into());
                };
                let text = printf(fmt, &values[2..]);
                self.out.lock().push_str(&text);
                Ok(Value::Int(text.len() as i64))
            }
            "malloc" => Ok(Value::UntypedAlloc {
                bytes: int(&arg(0)).max(0) as usize,
            }),
            "calloc" => Ok(Value::UntypedAlloc {
                bytes: (int(&arg(0)).max(0) * int(&arg(1)).max(0)) as usize,
            }),
            "free" => {
                match arg(0) {
                    Value::Ptr(p) => self.mem.free(p.space, p.buffer).map_err(Interrupt::Rt)?,
                    Value::Null | Value::UntypedAlloc { .. } => {}
                    other => return Err(type_err(format!("free of {}", other.type_name())).into()),
                }
                Ok(Value::Void)
            }
            "memset" => {
                let Value::Ptr(p) = arg(0) else {
                    return Err(type_err("memset requires a pointer").into());
                };
                let byte = int(&arg(1));
                let bytes = int(&arg(2)).max(0) as usize;
                let elem = self
                    .mem
                    .elem_type(p.space, p.buffer)
                    .map_err(Interrupt::Rt)?;
                let len = bytes / self.sizeof(&elem).max(1);
                let fill = if byte == 0 {
                    self.zero_of(&elem)
                } else {
                    Value::Int(byte)
                };
                self.mem
                    .fill(frame.space, p.space, p.buffer, p.offset, len, fill)
                    .map_err(Interrupt::Rt)?;
                Ok(arg(0))
            }
            "memcpy" => {
                let (Value::Ptr(d), Value::Ptr(s)) = (arg(0), arg(1)) else {
                    return Err(type_err("memcpy requires pointers").into());
                };
                // memcpy is host-side; both pointers must be host.
                if d.space != frame.space || s.space != frame.space {
                    return Err(RuntimeError::illegal(
                        "memcpy across host/device memory (use cudaMemcpy)",
                    )
                    .into());
                }
                let bytes = int(&arg(2)).max(0) as usize;
                let elem = self
                    .mem
                    .elem_type(s.space, s.buffer)
                    .map_err(Interrupt::Rt)?;
                let len = bytes / self.sizeof(&elem).max(1);
                self.mem
                    .copy(
                        d.space, d.buffer, d.offset, s.space, s.buffer, s.offset, len,
                    )
                    .map_err(Interrupt::Rt)?;
                Ok(arg(0))
            }
            "strcmp" => {
                let (Value::Str(a), Value::Str(b)) = (arg(0), arg(1)) else {
                    return Err(type_err("strcmp requires strings").into());
                };
                Ok(Value::Int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            "atoi" | "atol" => match arg(0) {
                Value::Str(s) => Ok(Value::Int(s.trim().parse().unwrap_or(0))),
                other => Err(type_err(format!("atoi of {}", other.type_name())).into()),
            },
            "atof" => match arg(0) {
                Value::Str(s) => Ok(Value::Float(s.trim().parse().unwrap_or(0.0))),
                other => Err(type_err(format!("atof of {}", other.type_name())).into()),
            },
            "exit" => Err(Interrupt::Exit(int(&arg(0)))),
            "abs" | "labs" => Ok(Value::Int(int(&arg(0)).abs())),
            "min" => Ok(Value::Int(int(&arg(0)).min(int(&arg(1))))),
            "max" => Ok(Value::Int(int(&arg(0)).max(int(&arg(1))))),
            "rand" => {
                let mut s = self.rng.lock();
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Ok(Value::Int(((*s >> 33) & 0x7FFF_FFFF) as i64))
            }
            "srand" => {
                *self.rng.lock() = int(&arg(0)) as u64 | 1;
                Ok(Value::Void)
            }
            "assert" => {
                if !arg(0).truthy() {
                    let text = arg_exprs
                        .first()
                        .map(minihpc_lang::printer::print_expr)
                        .unwrap_or_default();
                    return Err(type_err(format!("assertion failed: {text}")).into());
                }
                Ok(Value::Void)
            }
            "omp_get_wtime" => {
                let mut t = self.clock.lock();
                *t += 1e-6;
                Ok(Value::Float(*t))
            }
            "omp_get_num_threads" | "omp_get_max_threads" => {
                Ok(Value::Int(self.config.workers as i64))
            }
            "omp_get_thread_num" => Ok(Value::Int(0)),
            "omp_get_num_devices" => Ok(Value::Int(1)),
            "omp_is_initial_device" => Ok(Value::Int(i64::from(frame.space == Space::Host))),
            "omp_set_num_threads" => Ok(Value::Void),
            // libm --------------------------------------------------------
            "sqrt" | "sqrtf" => Ok(Value::Float(flt(&arg(0)).sqrt())),
            "fabs" | "fabsf" => Ok(Value::Float(flt(&arg(0)).abs())),
            "exp" | "expf" => Ok(Value::Float(flt(&arg(0)).exp())),
            "log" | "logf" => Ok(Value::Float(flt(&arg(0)).ln())),
            "log2" | "log2f" => Ok(Value::Float(flt(&arg(0)).log2())),
            "floor" | "floorf" => Ok(Value::Float(flt(&arg(0)).floor())),
            "ceil" | "ceilf" => Ok(Value::Float(flt(&arg(0)).ceil())),
            "sin" | "sinf" => Ok(Value::Float(flt(&arg(0)).sin())),
            "cos" | "cosf" => Ok(Value::Float(flt(&arg(0)).cos())),
            "tanh" | "tanhf" => Ok(Value::Float(flt(&arg(0)).tanh())),
            "coshf" => Ok(Value::Float(flt(&arg(0)).cosh())),
            "erf" | "erff" => Ok(Value::Float(erf(flt(&arg(0))))),
            "pow" | "powf" => Ok(Value::Float(flt(&arg(0)).powf(flt(&arg(1))))),
            "fmax" | "fmaxf" => Ok(Value::Float(flt(&arg(0)).max(flt(&arg(1))))),
            "fmin" | "fminf" => Ok(Value::Float(flt(&arg(0)).min(flt(&arg(1))))),
            "fmod" => Ok(Value::Float(flt(&arg(0)) % flt(&arg(1)))),
            // CUDA runtime API ---------------------------------------------
            "cudaMemcpy" => {
                let (Value::Ptr(d), Value::Ptr(s)) = (arg(0), arg(1)) else {
                    return Err(type_err("cudaMemcpy requires pointer arguments").into());
                };
                let bytes = int(&arg(2)).max(0) as usize;
                let dir = int(&arg(3));
                let dir_ok = match dir {
                    1 => d.space == Space::Device && s.space == Space::Host,
                    2 => d.space == Space::Host && s.space == Space::Device,
                    3 => d.space == Space::Device && s.space == Space::Device,
                    _ => false,
                };
                if !dir_ok {
                    return Err(RuntimeError::illegal(format!(
                        "cudaMemcpy direction {dir} does not match pointer spaces \
                         (dst {:?}, src {:?})",
                        d.space, s.space
                    ))
                    .into());
                }
                let elem = self
                    .mem
                    .elem_type(s.space, s.buffer)
                    .map_err(Interrupt::Rt)?;
                let len = bytes / self.sizeof(&elem).max(1);
                self.mem
                    .copy(
                        d.space, d.buffer, d.offset, s.space, s.buffer, s.offset, len,
                    )
                    .map_err(Interrupt::Rt)?;
                Ok(Value::Int(0))
            }
            "cudaMemset" => {
                let Value::Ptr(p) = arg(0) else {
                    return Err(type_err("cudaMemset requires a device pointer").into());
                };
                let bytes = int(&arg(2)).max(0) as usize;
                let elem = self
                    .mem
                    .elem_type(p.space, p.buffer)
                    .map_err(Interrupt::Rt)?;
                let len = bytes / self.sizeof(&elem).max(1);
                let fill = self.zero_of(&elem);
                // cudaMemset is issued from the host but writes device memory.
                self.mem
                    .fill(p.space, p.space, p.buffer, p.offset, len, fill)
                    .map_err(Interrupt::Rt)?;
                Ok(Value::Int(0))
            }
            "cudaFree" => {
                if let Value::Ptr(p) = arg(0) {
                    self.mem.free(p.space, p.buffer).map_err(Interrupt::Rt)?;
                }
                Ok(Value::Int(0))
            }
            "cudaDeviceSynchronize" | "cudaGetLastError" => Ok(Value::Int(0)),
            "cudaGetErrorString" => Ok(Value::Str("no error".into())),
            "atomicAdd" => {
                let Value::Ptr(p) = arg(0) else {
                    return Err(type_err("atomicAdd requires a pointer").into());
                };
                self.mem
                    .fetch_add(frame.space, p.space, p.buffer, p.offset, &arg(1))
                    .map_err(Interrupt::Rt)
            }
            other => {
                Err(type_err(format!("call to unknown function '{other}' at run time")).into())
            }
        }
    }

    /// `cudaMalloc(&ptr, bytes)`: allocates a device buffer typed from the
    /// declared pointee of the destination pointer variable.
    fn cuda_malloc(&self, frame: &mut Frame, args: &[Expr]) -> IResult<Value> {
        let [dst, size] = args else {
            return Err(type_err("cudaMalloc expects (&ptr, bytes)").into());
        };
        let bytes = self
            .eval(frame, size)?
            .as_int()
            .filter(|n| *n >= 0)
            .ok_or_else(|| type_err("cudaMalloc size must be a non-negative integer"))?
            as usize;
        // Destination must be `&var` or `&expr-place` holding a pointer.
        let inner = match &dst.kind {
            ExprKind::Unary {
                op: UnaryOp::AddrOf,
                expr,
            } => expr,
            ExprKind::Cast { expr, .. } => match &expr.kind {
                ExprKind::Unary {
                    op: UnaryOp::AddrOf,
                    expr,
                } => expr,
                _ => return Err(type_err("cudaMalloc first argument must be &pointer").into()),
            },
            _ => return Err(type_err("cudaMalloc first argument must be &pointer").into()),
        };
        let place = self.resolve_place(frame, inner)?;
        let elem = self
            .static_type_of_place(frame, inner)
            .and_then(|t| t.pointee().cloned())
            .unwrap_or(Type::Scalar(ScalarType::Double));
        let len = bytes / self.sizeof(&elem).max(1);
        let buf = self.alloc_zeroed(Space::Device, elem, len);
        self.write_place(
            frame,
            &place,
            Value::Ptr(Pointer {
                space: Space::Device,
                buffer: buf,
                offset: 0,
            }),
        )?;
        Ok(Value::Int(0))
    }

    /// Best-effort static type of an lvalue expression (for allocation
    /// typing).
    fn static_type_of_place(&self, frame: &Frame, e: &Expr) -> Option<Type> {
        match &e.kind {
            ExprKind::Ident(name) => frame
                .types
                .get(name)
                .or_else(|| self.global_types.get(name))
                .cloned(),
            ExprKind::Paren(inner) => self.static_type_of_place(frame, inner),
            ExprKind::Member { base, member, .. } => {
                let base_ty = self.static_type_of_place(frame, base)?;
                let name = match base_ty.unqualified() {
                    Type::Named(n) => n.clone(),
                    Type::Ptr(inner) => match inner.unqualified() {
                        Type::Named(n) => n.clone(),
                        _ => return None,
                    },
                    _ => return None,
                };
                self.layouts
                    .get(&name)?
                    .fields
                    .iter()
                    .find(|(f, _)| f == member)
                    .map(|(_, t)| t.clone())
            }
            ExprKind::Index { base, .. } => {
                let base_ty = self.static_type_of_place(frame, base)?;
                base_ty.pointee().cloned()
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                expr,
            } => {
                let t = self.static_type_of_place(frame, expr)?;
                t.pointee().cloned()
            }
            _ => None,
        }
    }

    // -- cuRAND ----------------------------------------------------------

    fn rng_place(&self, frame: &mut Frame, e: &Expr) -> IResult<Place> {
        // The state argument is `&states[i]` or a curandState* value.
        match &e.kind {
            ExprKind::Unary {
                op: UnaryOp::AddrOf,
                expr,
            } => self.resolve_place(frame, expr),
            _ => match self.eval(frame, e)? {
                Value::Ptr(p) => Ok(Place::Mem {
                    space: p.space,
                    buffer: p.buffer,
                    index: p.offset,
                }),
                other => Err(type_err(format!(
                    "curand state must be a pointer, got {}",
                    other.type_name()
                ))
                .into()),
            },
        }
    }

    fn curand_init(&self, frame: &mut Frame, args: &[Expr]) -> IResult<Value> {
        if args.len() != 4 {
            return Err(type_err("curand_init expects 4 arguments").into());
        }
        let seed = self.eval(frame, &args[0])?.as_int().unwrap_or(0) as u64;
        let seq = self.eval(frame, &args[1])?.as_int().unwrap_or(0) as u64;
        let offset = self.eval(frame, &args[2])?.as_int().unwrap_or(0) as u64;
        let place = self.rng_place(frame, &args[3])?;
        let state = splitmix(seed ^ seq.wrapping_mul(0x9E3779B97F4A7C15) ^ offset);
        self.write_place(
            frame,
            &place,
            Value::Struct(Box::new(StructVal {
                name: "curandState".into(),
                fields: vec![Value::Int(state as i64)],
            })),
        )?;
        Ok(Value::Void)
    }

    fn curand_next(&self, frame: &mut Frame, which: &str, args: &[Expr]) -> IResult<Value> {
        let place = self.rng_place(
            frame,
            args.first()
                .ok_or_else(|| type_err("curand expects a state pointer"))?,
        )?;
        let current = self.read_place(frame, &place)?;
        let Value::Struct(mut s) = current else {
            return Err(type_err("curand state is not initialised").into());
        };
        let state = s.fields.first().and_then(Value::as_int).unwrap_or(1) as u64;
        let next = splitmix(state);
        s.fields[0] = Value::Int(next as i64);
        self.write_place(frame, &place, Value::Struct(s))?;
        let out = match which {
            "curand" => Value::Int((next >> 32) as i64),
            // (0, 1], like cuRAND.
            _ => Value::Float(((next >> 11) as f64 + 1.0) / (1u64 << 53) as f64),
        };
        Ok(out)
    }

    // -- CUDA kernel launch ------------------------------------------------

    pub(super) fn cuda_launch(
        &self,
        frame: &mut Frame,
        kernel: &str,
        grid: &Expr,
        block: &Expr,
        args: &[Expr],
    ) -> IResult<Value> {
        let to_dim3 = |v: Value| -> IResult<Dim3> {
            match v {
                Value::Dim3(d) => Ok(d),
                Value::Int(n) if n >= 0 => Ok(Dim3::scalar(n as u32)),
                other => Err(type_err(format!(
                    "launch configuration must be int or dim3, got {}",
                    other.type_name()
                ))
                .into()),
            }
        };
        let grid = to_dim3(self.eval(frame, grid)?)?;
        let block = to_dim3(self.eval(frame, block)?)?;
        let f = self
            .exe
            .functions
            .get(kernel)
            .ok_or_else(|| type_err(format!("kernel '{kernel}' not found")))?;
        let mut values = Vec::with_capacity(args.len());
        for a in args {
            values.push(self.eval(frame, a)?);
        }
        let total = grid.count() * block.count();
        self.telemetry.record_device_region(total);
        self.mem.detector.begin_kernel();

        let depth = frame.depth;
        let threads_per_block = block.count();
        let make_frame = |logical: u64| -> Frame {
            let b = logical / threads_per_block;
            let t = logical % threads_per_block;
            let block_idx = Dim3 {
                x: (b % grid.x as u64) as u32,
                y: (b / grid.x as u64 % grid.y as u64) as u32,
                z: (b / (grid.x as u64 * grid.y as u64)) as u32,
            };
            let thread_idx = Dim3 {
                x: (t % block.x as u64) as u32,
                y: (t / block.x as u64 % block.y as u64) as u32,
                z: (t / (block.x as u64 * block.y as u64)) as u32,
            };
            Frame {
                scopes: vec![HashMap::new()],
                types: HashMap::new(),
                space: Space::Device,
                thread: logical,
                cuda: Some(CudaCtx {
                    thread_idx,
                    block_idx,
                    block_dim: block,
                    grid_dim: grid,
                }),
                depth,
                watch: None,
                watch_scopes: 0,
            }
        };

        let run_one = |interp: &Self, logical: u64| -> IResult<()> {
            let mut kframe = make_frame(logical);
            for (p, v) in f.params.iter().zip(values.iter().cloned()) {
                let v = interp.coerce(v, &p.ty)?;
                kframe.declare(&p.name, v, Some(p.ty.clone()));
            }
            let body = f
                .body
                .as_ref()
                .ok_or_else(|| type_err(format!("kernel '{kernel}' has no definition")))?;
            interp.exec_block(&mut kframe, body)?;
            Ok(())
        };

        if self.config.parallel && total > 1 {
            self.run_indices_parallel(total, &run_one)?;
        } else {
            for logical in 0..total {
                run_one(self, logical)?;
            }
        }
        Ok(Value::Void)
    }

    // -- Kokkos -------------------------------------------------------------

    fn eval_kokkos(&self, frame: &mut Frame, segments: &[String], args: &[Expr]) -> IResult<Value> {
        if segments.first().map(String::as_str) != Some("Kokkos") {
            return Err(type_err(format!("unknown namespace '{}'", segments.join("::"))).into());
        }
        let func = segments.get(1).map(String::as_str).unwrap_or("");
        let base = func.split('<').next().unwrap_or(func);
        match base {
            "initialize" => {
                *self.kokkos_initialized.lock() = true;
                Ok(Value::Void)
            }
            "finalize" => {
                *self.kokkos_initialized.lock() = false;
                Ok(Value::Void)
            }
            "fence" => Ok(Value::Void),
            "RangePolicy" => {
                let lo = self.eval(frame, &args[0])?.as_int().unwrap_or(0);
                let hi = self.eval(frame, &args[1])?.as_int().unwrap_or(0);
                Ok(Value::Policy(Policy::Range { lo, hi }))
            }
            "MDRangePolicy" => {
                // `MDRangePolicy<Rank<2>>({l0, l1}, {h0, h1})` is written in
                // MiniHPC as MDRangePolicy(l0, l1, h0, h1).
                if args.len() != 4 {
                    return Err(type_err("MiniHPC MDRangePolicy takes (lo0, lo1, hi0, hi1)").into());
                }
                let mut v = [0i64; 4];
                for (i, a) in args.iter().enumerate() {
                    v[i] = self.eval(frame, a)?.as_int().unwrap_or(0);
                }
                Ok(Value::Policy(Policy::MDRange {
                    lo: [v[0], v[1]],
                    hi: [v[2], v[3]],
                }))
            }
            "deep_copy" => {
                // Accepts (View, View), and — modelling Kokkos unmanaged
                // host views wrapping raw pointers — (View, host ptr) or
                // (host ptr, View), with the view's length.
                let a = self.eval(frame, &args[0])?;
                let b = self.eval(frame, &args[1])?;
                let (dst_space, dst_buf, dst_off, src_space, src_buf, src_off, len) = match (&a, &b)
                {
                    (Value::View(d), Value::View(s)) => (
                        d.space,
                        d.buffer,
                        0,
                        s.space,
                        s.buffer,
                        0,
                        d.len().min(s.len()),
                    ),
                    (Value::View(d), Value::Ptr(p)) if p.space == Space::Host => {
                        (d.space, d.buffer, 0, p.space, p.buffer, p.offset, d.len())
                    }
                    (Value::Ptr(p), Value::View(s)) if p.space == Space::Host => {
                        (p.space, p.buffer, p.offset, s.space, s.buffer, 0, s.len())
                    }
                    _ => {
                        return Err(type_err(
                            "deep_copy requires views (or a view and a host pointer)",
                        )
                        .into())
                    }
                };
                self.mem
                    .copy(
                        dst_space, dst_buf, dst_off, src_space, src_buf, src_off, len,
                    )
                    .map_err(Interrupt::Rt)?;
                Ok(Value::Void)
            }
            "create_mirror_view" => {
                let Value::View(v) = self.eval(frame, &args[0])? else {
                    return Err(type_err("create_mirror_view requires a view").into());
                };
                let buf = self.alloc_zeroed(Space::Host, Type::Scalar(v.elem), v.len());
                Ok(Value::View(ViewHandle {
                    space: Space::Host,
                    buffer: buf,
                    ..v
                }))
            }
            "parallel_for" | "parallel_reduce" => self.kokkos_parallel(frame, base, args),
            other => Err(type_err(format!("unsupported Kokkos function '{other}'")).into()),
        }
    }

    fn kokkos_parallel(&self, frame: &mut Frame, which: &str, args: &[Expr]) -> IResult<Value> {
        if !*self.kokkos_initialized.lock() {
            return Err(type_err(format!(
                "Kokkos::{which} called before Kokkos::initialize()"
            ))
            .into());
        }
        // Optional label first.
        let mut rest = args;
        if matches!(rest.first().map(|a| &a.kind), Some(ExprKind::StrLit(_))) {
            rest = &rest[1..];
        }
        let policy = match self.eval(frame, &rest[0])? {
            Value::Policy(p) => p,
            Value::Int(n) => Policy::Range { lo: 0, hi: n },
            other => {
                return Err(type_err(format!(
                    "Kokkos::{which} policy must be an int or policy, got {}",
                    other.type_name()
                ))
                .into())
            }
        };
        let Value::Lambda(closure) = self.eval(frame, &rest[1])? else {
            return Err(type_err(format!("Kokkos::{which} requires a lambda")).into());
        };

        let (total, to_indices): (u64, Box<dyn Fn(u64) -> Vec<i64> + Sync>) = match policy {
            Policy::Range { lo, hi } => {
                let n = (hi - lo).max(0) as u64;
                (n, Box::new(move |i| vec![lo + i as i64]))
            }
            Policy::MDRange { lo, hi } => {
                let n0 = (hi[0] - lo[0]).max(0) as u64;
                let n1 = (hi[1] - lo[1]).max(0) as u64;
                (
                    n0 * n1,
                    Box::new(move |i| vec![lo[0] + (i / n1) as i64, lo[1] + (i % n1) as i64]),
                )
            }
        };
        self.telemetry.record_device_region(total);
        self.mem.detector.begin_kernel();
        let depth = frame.depth;

        if which == "parallel_for" {
            let run_one = |interp: &Self, logical: u64| -> IResult<()> {
                let indices = to_indices(logical);
                let mut kframe = Frame {
                    scopes: vec![closure.captures.iter().cloned().collect(), HashMap::new()],
                    types: HashMap::new(),
                    space: Space::Device,
                    thread: logical,
                    cuda: None,
                    depth,
                    watch: None,
                    watch_scopes: 0,
                };
                for (p, idx) in closure.params.iter().zip(indices) {
                    kframe.declare(&p.name, Value::Int(idx), Some(p.ty.clone()));
                }
                interp.exec_block(&mut kframe, &closure.body)?;
                Ok(())
            };
            if self.config.parallel && total > 1 {
                self.run_indices_parallel(total, &run_one)?;
            } else {
                for i in 0..total {
                    run_one(self, i)?;
                }
            }
            return Ok(Value::Void);
        }

        // parallel_reduce: the final lambda parameter is the accumulator;
        // the third argument receives the combined result.
        if closure.params.len() < 2 {
            return Err(
                type_err("parallel_reduce lambda must take (index..., accumulator&)").into(),
            );
        }
        if rest.len() < 3 {
            return Err(type_err("parallel_reduce requires a result argument").into());
        }
        let acc_param = closure.params.last().unwrap().clone();
        let index_params = &closure.params[..closure.params.len() - 1];

        let mut acc = Value::Float(0.0);
        for logical in 0..total {
            let indices = to_indices(logical);
            let mut kframe = Frame {
                scopes: vec![closure.captures.iter().cloned().collect(), HashMap::new()],
                types: HashMap::new(),
                space: Space::Device,
                thread: logical,
                cuda: None,
                depth,
                watch: None,
                watch_scopes: 0,
            };
            for (p, idx) in index_params.iter().zip(indices) {
                kframe.declare(&p.name, Value::Int(idx), Some(p.ty.clone()));
            }
            kframe.declare(&acc_param.name, acc.clone(), Some(acc_param.ty.clone()));
            self.exec_block(&mut kframe, &closure.body)?;
            acc = kframe
                .get(&acc_param.name)
                .cloned()
                .unwrap_or(Value::Float(0.0));
        }
        let place = self.resolve_place(frame, &rest[2])?;
        self.write_place(frame, &place, acc)?;
        Ok(Value::Void)
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Abramowitz–Stegun erf approximation (for SimpleMOC-style kernels).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}
