//! The MiniHPC interpreter: executes a linked [`Executable`] against the
//! simulated host+device memory system.
//!
//! Execution-model semantics:
//! - **CUDA**: `<<<grid, block>>>` launches run the kernel once per logical
//!   thread with `threadIdx`/`blockIdx`/... builtins bound, in device space.
//! - **OpenMP offload**: `target` regions switch to device space; `map`
//!   clauses allocate/copy device buffers and rebind the mapped pointers for
//!   the region's extent. A directive *without* `target` (paper Listing 4)
//!   runs on the host — the harness's GPU-execution check then fails it.
//! - **OpenMP threads**: `parallel for` executes the loop (optionally on a
//!   real thread pool) in host space.
//! - **Kokkos**: views are device buffers; `parallel_for`/`parallel_reduce`
//!   execute lambdas in device space; `create_mirror_view`/`deep_copy`
//!   perform the transfers.
//!
//! Telemetry records where parallel work actually executed, which is how the
//! harness enforces the paper's "must execute on the specified hardware"
//! correctness requirement.

use crate::format::printf;
use crate::memory::{Memory, RtResult, RuntimeError, RuntimeErrorKind};
use crate::value::*;
use minihpc_build::object::Executable;
use minihpc_lang::ast::*;
use minihpc_lang::pragma::{MapKind, OmpConstruct, OmpDirective, ReductionOp};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Command-line arguments (argv[1..]).
    pub args: Vec<String>,
    /// Statement budget; exceeding it aborts with `StepLimit` (the run-time
    /// analogue of the paper's per-experiment timeout).
    pub max_steps: u64,
    /// Execute device regions on a real thread pool.
    pub parallel: bool,
    /// Number of worker threads for parallel mode.
    pub workers: usize,
    /// Enable the write-race detector on device memory.
    pub detect_races: bool,
    /// Also record conflicting writes to *shared scalars* of parallel
    /// regions (only meaningful with `parallel` and `workers > 1`).
    /// Opt-in and test-only: the harness uses it to cross-validate the
    /// static analyzer's race verdicts against observed execution.
    pub record_shared_writes: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            args: vec![],
            max_steps: 200_000_000,
            parallel: false,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            detect_races: false,
            record_shared_writes: false,
        }
    }
}

impl RunConfig {
    pub fn with_args<S: Into<String>>(args: impl IntoIterator<Item = S>) -> Self {
        RunConfig {
            args: args.into_iter().map(Into::into).collect(),
            ..RunConfig::default()
        }
    }
}

/// Where parallel work executed.
#[derive(Debug, Default)]
pub struct Telemetry {
    pub device_regions: AtomicU64,
    pub device_threads: AtomicU64,
    pub max_device_parallelism: AtomicU64,
    pub host_parallel_regions: AtomicU64,
}

impl Telemetry {
    fn record_device_region(&self, logical_threads: u64) {
        self.device_regions.fetch_add(1, Ordering::Relaxed);
        self.device_threads
            .fetch_add(logical_threads, Ordering::Relaxed);
        self.max_device_parallelism
            .fetch_max(logical_threads, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            device_regions: self.device_regions.load(Ordering::Relaxed),
            device_threads: self.device_threads.load(Ordering::Relaxed),
            max_device_parallelism: self.max_device_parallelism.load(Ordering::Relaxed),
            host_parallel_regions: self.host_parallel_regions.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of the telemetry counters after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    pub device_regions: u64,
    pub device_threads: u64,
    pub max_device_parallelism: u64,
    pub host_parallel_regions: u64,
}

impl TelemetrySnapshot {
    /// Did any work execute on the simulated GPU?
    pub fn ran_on_device(self) -> bool {
        self.device_regions > 0
    }

    /// Did device work use more than one logical thread?
    pub fn device_parallel(self) -> bool {
        self.max_device_parallelism > 1
    }
}

/// The outcome of running a program.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub stdout: String,
    pub exit_code: i64,
    pub error: Option<RuntimeError>,
    pub telemetry: TelemetrySnapshot,
    pub races: Vec<String>,
    /// Distinct shared-scalar names the dynamic recorder saw conflict
    /// (sorted, deduped). Empty unless `RunConfig::record_shared_writes`
    /// — the per-variable ground truth for analyzer differential tests.
    pub race_vars: Vec<String>,
}

impl RunResult {
    pub fn ok(&self) -> bool {
        self.error.is_none() && self.exit_code == 0
    }
}

/// Internal control signals.
enum Interrupt {
    Rt(RuntimeError),
    Exit(i64),
}

impl From<RuntimeError> for Interrupt {
    fn from(e: RuntimeError) -> Self {
        Interrupt::Rt(e)
    }
}

type IResult<T> = Result<T, Interrupt>;

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Per-execution-context state (one per logical thread).
struct Frame {
    scopes: Vec<HashMap<String, Value>>,
    /// Static types of declared locals (needed to type `cudaMalloc(&p, n)`).
    types: HashMap<String, Type>,
    space: Space,
    thread: u64,
    cuda: Option<CudaCtx>,
    depth: u32,
    /// Shared-write recorder for the watched parallel region this frame
    /// executes under, if any (`RunConfig::record_shared_writes`).
    /// Propagated into calls so global writes are still seen.
    watch: Option<Arc<RegionWatch>>,
    /// How many leading scopes of this frame hold the region's shared
    /// snapshot: 1 on worker frames, 0 everywhere else (a callee's scope 0
    /// holds its own parameters, which are private).
    watch_scopes: usize,
}

/// One watched parallel region (see [`RunConfig::record_shared_writes`]).
struct RegionWatch {
    /// Region id, for race messages and per-region write maps.
    region: u64,
    /// Variables the region privatizes per worker — reduction accumulators
    /// and `private`/`firstprivate` clause names — whose snapshot-scope
    /// writes are worker-local by construction.
    exempt: std::collections::HashSet<String>,
}

#[derive(Clone, Copy)]
struct CudaCtx {
    thread_idx: Dim3,
    block_idx: Dim3,
    block_dim: Dim3,
    grid_dim: Dim3,
}

impl Frame {
    fn host() -> Self {
        Frame {
            scopes: vec![HashMap::new()],
            types: HashMap::new(),
            space: Space::Host,
            thread: 0,
            cuda: None,
            depth: 0,
            watch: None,
            watch_scopes: 0,
        }
    }

    /// Index of the scope `name` resolves to (innermost wins), if any.
    fn scope_of(&self, name: &str) -> Option<usize> {
        (0..self.scopes.len())
            .rev()
            .find(|&i| self.scopes[i].contains_key(name))
    }

    fn get(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn set_existing(&mut self, name: &str, value: Value) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return true;
            }
        }
        false
    }

    fn declare(&mut self, name: &str, value: Value, ty: Option<Type>) {
        self.scopes
            .last_mut()
            .expect("frame always has a scope")
            .insert(name.to_string(), value);
        if let Some(t) = ty {
            self.types.insert(name.to_string(), t);
        }
    }

    /// All visible bindings (for lambda capture-by-value).
    fn visible(&self) -> Vec<(String, Value)> {
        let mut seen = HashMap::new();
        for scope in self.scopes.iter().rev() {
            for (k, v) in scope {
                seen.entry(k.clone()).or_insert_with(|| v.clone());
            }
        }
        seen.into_iter().collect()
    }
}

struct StructLayout {
    fields: Vec<(String, Type)>,
}

/// The interpreter.
pub struct Interp<'e> {
    exe: &'e Executable,
    mem: Memory,
    out: Mutex<String>,
    steps: AtomicU64,
    config: RunConfig,
    pub telemetry: Telemetry,
    rng: Mutex<u64>,
    clock: Mutex<f64>,
    layouts: HashMap<String, StructLayout>,
    globals: Mutex<HashMap<String, Value>>,
    global_types: HashMap<String, Type>,
    kokkos_initialized: Mutex<bool>,
    /// Monotonic id for watched parallel regions (shared-write recording).
    regions: AtomicU64,
}

/// Run a linked executable to completion.
pub fn run(exe: &Executable, config: RunConfig) -> RunResult {
    let mut layouts = HashMap::new();
    for (name, def) in &exe.structs {
        layouts.insert(
            name.clone(),
            StructLayout {
                fields: def
                    .fields
                    .iter()
                    .map(|f| {
                        let mut t = f.ty.clone();
                        for _ in &f.array_dims {
                            t = Type::ptr(t);
                        }
                        (f.name.clone(), t)
                    })
                    .collect(),
            },
        );
    }
    // The cuRAND state is an opaque one-field struct at run time.
    layouts
        .entry("curandState".to_string())
        .or_insert(StructLayout {
            fields: vec![("__state".to_string(), Type::Scalar(ScalarType::Long))],
        });

    let detect = config.detect_races;
    let record_shared = config.record_shared_writes;
    let interp = Interp {
        exe,
        mem: Memory::new(detect, record_shared),
        out: Mutex::new(String::new()),
        steps: AtomicU64::new(0),
        config,
        telemetry: Telemetry::default(),
        rng: Mutex::new(0x2545F4914F6CDD1D),
        clock: Mutex::new(0.0),
        layouts,
        globals: Mutex::new(HashMap::new()),
        global_types: exe
            .globals
            .iter()
            .map(|d| {
                let mut t = d.ty.clone();
                for _ in &d.array_dims {
                    t = Type::ptr(t);
                }
                (d.name.clone(), t)
            })
            .collect(),
        kokkos_initialized: Mutex::new(false),
        regions: AtomicU64::new(0),
    };
    interp.run_main()
}

impl<'e> Interp<'e> {
    fn run_main(self) -> RunResult {
        let outcome = self.exec_program();
        let telemetry = self.telemetry.snapshot();
        let races = self.mem.detector.races();
        let race_vars = self.mem.detector.shared_conflict_vars();
        let stdout = std::mem::take(&mut *self.out.lock());
        match outcome {
            Ok(code) => RunResult {
                stdout,
                exit_code: code,
                error: None,
                telemetry,
                races,
                race_vars,
            },
            Err(Interrupt::Exit(code)) => RunResult {
                stdout,
                exit_code: code,
                error: None,
                telemetry,
                races,
                race_vars,
            },
            Err(Interrupt::Rt(e)) => RunResult {
                stdout,
                exit_code: 1,
                error: Some(e),
                telemetry,
                races,
                race_vars,
            },
        }
    }

    fn exec_program(&self) -> IResult<i64> {
        let mut frame = Frame::host();
        // Initialise globals.
        for decl in &self.exe.globals {
            let value = self.eval_decl_value(&mut frame, decl)?;
            self.globals.lock().insert(decl.name.clone(), value);
        }
        let main = self
            .exe
            .main()
            .ok_or_else(|| RuntimeError::new(RuntimeErrorKind::Unsupported, "no main function"))?;
        // Build argv.
        let mut argv_vals: Vec<Value> = vec![Value::Str(self.exe.name.as_str().into())];
        argv_vals.extend(
            self.config
                .args
                .iter()
                .map(|a| Value::Str(a.as_str().into())),
        );
        let argc = argv_vals.len() as i64;
        let args = match main.params.len() {
            0 => vec![],
            2 => {
                let buf = self.alloc_with(
                    Space::Host,
                    Type::ptr(Type::Scalar(ScalarType::Char)),
                    argv_vals,
                );
                vec![
                    Value::Int(argc),
                    Value::Ptr(Pointer {
                        space: Space::Host,
                        buffer: buf,
                        offset: 0,
                    }),
                ]
            }
            n => {
                return Err(Interrupt::Rt(RuntimeError::new(
                    RuntimeErrorKind::Unsupported,
                    format!("main must take 0 or 2 parameters, has {n}"),
                )))
            }
        };
        let ret = self.call_function(&mut frame, main, args)?;
        Ok(ret.as_int().unwrap_or(0))
    }

    fn alloc_with(&self, space: Space, elem: Type, values: Vec<Value>) -> usize {
        let zero = values.first().cloned().unwrap_or(Value::Int(0));
        let buf = self.mem.alloc(space, elem, values.len(), zero);
        for (i, v) in values.into_iter().enumerate() {
            let _ = self.mem.store(space, space, buf, i, v, 0);
        }
        buf
    }

    fn alloc_zeroed(&self, space: Space, elem: Type, len: usize) -> usize {
        let zero = self.zero_of(&elem);
        self.mem.alloc(space, elem, len, zero)
    }

    fn step(&self) -> IResult<()> {
        let n = self.steps.fetch_add(1, Ordering::Relaxed);
        if n >= self.config.max_steps {
            return Err(Interrupt::Rt(RuntimeError::new(
                RuntimeErrorKind::StepLimit,
                format!(
                    "step limit of {} exceeded (runaway loop?)",
                    self.config.max_steps
                ),
            )));
        }
        Ok(())
    }

    fn struct_zero(&self, name: &str) -> Value {
        let fields = self
            .layouts
            .get(name)
            .map(|l| l.fields.iter().map(|(_, t)| zero_value(t)).collect())
            .unwrap_or_default();
        Value::Struct(Box::new(StructVal {
            name: name.to_string(),
            fields,
        }))
    }

    fn zero_of(&self, ty: &Type) -> Value {
        match ty.unqualified() {
            Type::Named(n) => self.struct_zero(n),
            other => zero_value(other),
        }
    }

    fn sizeof(&self, ty: &Type) -> usize {
        byte_size(ty, &|name| {
            self.layouts.get(name).map(|l| {
                l.fields
                    .iter()
                    .map(|(_, t)| self.sizeof(t))
                    .sum::<usize>()
                    .max(1)
            })
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn call_function(&self, caller: &mut Frame, f: &Function, args: Vec<Value>) -> IResult<Value> {
        if caller.depth > 200 {
            return Err(Interrupt::Rt(RuntimeError::new(
                RuntimeErrorKind::StepLimit,
                "recursion depth limit exceeded",
            )));
        }
        let mut frame = Frame {
            scopes: vec![HashMap::new()],
            types: HashMap::new(),
            space: caller.space,
            thread: caller.thread,
            cuda: caller.cuda,
            depth: caller.depth + 1,
            // Callees see only globals from the watched region's shared
            // state, so their own scopes are all private.
            watch: caller.watch.clone(),
            watch_scopes: 0,
        };
        for (p, v) in f.params.iter().zip(args) {
            let v = self.coerce(v, &p.ty)?;
            frame.declare(&p.name, v, Some(p.ty.clone()));
        }
        let Some(body) = &f.body else {
            return Err(Interrupt::Rt(RuntimeError::new(
                RuntimeErrorKind::Unsupported,
                format!("call to undefined function '{}'", f.name),
            )));
        };
        match self.exec_block(&mut frame, body)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Void),
        }
    }

    fn exec_block(&self, frame: &mut Frame, b: &Block) -> IResult<Flow> {
        frame.scopes.push(HashMap::new());
        let mut flow = Flow::Normal;
        for s in &b.stmts {
            flow = self.exec_stmt(frame, s)?;
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        frame.scopes.pop();
        Ok(flow)
    }

    fn exec_stmt(&self, frame: &mut Frame, s: &Stmt) -> IResult<Flow> {
        self.step()?;
        match &s.kind {
            StmtKind::Decl(d) => {
                let value = self.eval_decl_value(frame, d)?;
                let mut ty = d.ty.clone();
                for _ in &d.array_dims {
                    ty = Type::ptr(ty);
                }
                frame.declare(&d.name, value, Some(ty));
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(frame, e)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then, els } => {
                if self.eval(frame, cond)?.truthy() {
                    self.exec_stmt(frame, then)
                } else if let Some(els) = els {
                    self.exec_stmt(frame, els)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval(frame, cond)?.truthy() {
                    self.step()?;
                    match self.exec_stmt(frame, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                frame.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.exec_stmt(frame, i)?;
                }
                let flow = loop {
                    if let Some(c) = cond {
                        if !self.eval(frame, c)?.truthy() {
                            break Flow::Normal;
                        }
                    }
                    self.step()?;
                    match self.exec_stmt(frame, body)? {
                        Flow::Break => break Flow::Normal,
                        Flow::Return(v) => break Flow::Return(v),
                        _ => {}
                    }
                    if let Some(st) = step {
                        self.eval(frame, st)?;
                    }
                };
                frame.scopes.pop();
                Ok(flow)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(frame, e)?,
                    None => Value::Void,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Block(b) => self.exec_block(frame, b),
            StmtKind::Omp { directive, body } => self.exec_omp(frame, directive, body.as_deref()),
            StmtKind::RawPragma(_) | StmtKind::Empty => Ok(Flow::Normal),
        }
    }

    fn eval_decl_value(&self, frame: &mut Frame, d: &VarDecl) -> IResult<Value> {
        // Fixed-size arrays allocate a buffer in the current space.
        if !d.array_dims.is_empty() {
            let mut len = 1usize;
            for dim in &d.array_dims {
                let n = self
                    .eval(frame, dim)?
                    .as_int()
                    .filter(|n| *n >= 0)
                    .ok_or_else(|| type_err("array dimension must be a non-negative integer"))?;
                len *= n as usize;
            }
            let buf = self.alloc_zeroed(frame.space, d.ty.clone(), len);
            if let Some(Init::List(elems)) = &d.init {
                for (i, e) in elems.iter().enumerate() {
                    let v = self.eval(frame, e)?;
                    self.mem
                        .store(frame.space, frame.space, buf, i, v, frame.thread)
                        .map_err(Interrupt::Rt)?;
                }
            }
            return Ok(Value::Ptr(Pointer {
                space: frame.space,
                buffer: buf,
                offset: 0,
            }));
        }
        match (&d.init, d.ty.unqualified()) {
            // Kokkos view construction: `View<double*> v("label", n, ...)`.
            (Some(Init::Ctor(args)), Type::View { elem, rank }) => {
                let mut dims = [1usize; 2];
                let dim_args: Vec<&Expr> = args
                    .iter()
                    .skip(usize::from(matches!(
                        args.first().map(|a| &a.kind),
                        Some(ExprKind::StrLit(_))
                    )))
                    .collect();
                if dim_args.len() != *rank as usize {
                    return Err(type_err(format!(
                        "view '{}' of rank {rank} constructed with {} extents",
                        d.name,
                        dim_args.len()
                    ))
                    .into());
                }
                for (i, a) in dim_args.iter().enumerate() {
                    dims[i] = self
                        .eval(frame, a)?
                        .as_int()
                        .filter(|n| *n >= 0)
                        .ok_or_else(|| type_err("view extent must be a non-negative integer"))?
                        as usize;
                }
                let len = if *rank == 1 {
                    dims[0]
                } else {
                    dims[0] * dims[1]
                };
                let buf = self.alloc_zeroed(Space::Device, Type::Scalar(*elem), len);
                Ok(Value::View(ViewHandle {
                    space: Space::Device,
                    buffer: buf,
                    dims,
                    rank: *rank,
                    elem: *elem,
                }))
            }
            // dim3 construction.
            (Some(Init::Ctor(args)), Type::Dim3) => {
                let mut parts = [1u32; 3];
                for (i, a) in args.iter().take(3).enumerate() {
                    parts[i] = self
                        .eval(frame, a)?
                        .as_int()
                        .filter(|n| *n >= 0)
                        .ok_or_else(|| type_err("dim3 component must be a non-negative integer"))?
                        as u32;
                }
                Ok(Value::Dim3(Dim3::new(parts[0], parts[1], parts[2])))
            }
            (Some(Init::Ctor(_)), _) => Err(type_err(format!(
                "constructor syntax is not supported for type of '{}'",
                d.name
            ))
            .into()),
            (Some(Init::Expr(e)), _) => {
                let v = self.eval(frame, e)?;
                self.coerce(v, &d.ty)
            }
            (Some(Init::List(_)), _) => {
                Err(type_err("initialiser lists are only supported on arrays").into())
            }
            (None, _) => Ok(self.zero_of(&d.ty)),
        }
    }

    /// Convert a value to a declared type — this is where `malloc`'s
    /// untyped allocation becomes a typed buffer.
    fn coerce(&self, v: Value, ty: &Type) -> IResult<Value> {
        match (v, ty.unqualified()) {
            (Value::UntypedAlloc { bytes }, Type::Ptr(inner)) => {
                let elem = (**inner).clone();
                let esize = self.sizeof(&elem).max(1);
                let len = bytes / esize;
                let buf = self.alloc_zeroed(Space::Host, elem, len);
                Ok(Value::Ptr(Pointer {
                    space: Space::Host,
                    buffer: buf,
                    offset: 0,
                }))
            }
            (Value::Int(n), Type::Scalar(s)) if s.is_float() => Ok(Value::Float(n as f64)),
            (Value::Float(f), Type::Scalar(s)) if s.is_integer() => Ok(Value::Int(f as i64)),
            (Value::Int(n), Type::Scalar(ScalarType::Bool)) => Ok(Value::Bool(n != 0)),
            (Value::Bool(b), Type::Scalar(s)) if s.is_integer() => Ok(Value::Int(i64::from(b))),
            (Value::Int(n), Type::Dim3) => Ok(Value::Dim3(Dim3::scalar(n.max(0) as u32))),
            (other, _) => Ok(other),
        }
    }
}

fn type_err(msg: impl Into<String>) -> RuntimeError {
    RuntimeError::new(RuntimeErrorKind::TypeError, msg)
}

// Expression evaluation, builtins, lvalues, and the parallel execution
// engines live in sibling modules to keep files reviewable.
mod builtins;
mod exec_parallel;
mod expr;
mod omp;
