//! # minihpc-runtime
//!
//! The simulated execution environment for MiniHPC programs: a tree-walking
//! interpreter over linked [`minihpc_build::Executable`]s with a discrete
//! host/device memory model, CUDA/OpenMP/Kokkos execution semantics, an
//! optional data-race detector, and execution telemetry.
//!
//! The telemetry ([`interp::TelemetrySnapshot`]) is how the ParEval-Repo
//! harness enforces the paper's correctness criterion that a translation
//! must "execute on the hardware specified in the prompt": a translated
//! program whose loops silently run on the host (paper Listing 4) produces
//! correct-looking execution but no device regions, and is failed.
//!
//! Entry point: [`run`].

pub mod format;
pub mod interp;
pub mod memory;
pub mod value;

pub use interp::{run, RunConfig, RunResult, TelemetrySnapshot};
pub use memory::{RuntimeError, RuntimeErrorKind};
pub use value::{Space, Value};
