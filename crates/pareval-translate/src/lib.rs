//! # pareval-translate
//!
//! Repository-level translation machinery:
//!
//! - [`transpile`]: the reference (oracle) transpilers between programming
//!   models — correct translations the simulated LLMs perturb.
//! - [`techniques`]: the three translation techniques the paper benchmarks —
//!   non-agentic file-by-file, top-down agentic (dependency/chunk/context/
//!   translation agents), and the SWE-agent adaptation.

pub mod techniques;
pub mod transpile;

pub use techniques::{
    translate_with, Backend, BackendError, BackendOutput, FileJob, Technique, TranslationJob,
    TranslationRun,
};
pub use transpile::{transpile_file, transpile_repo};
