//! The reference ("oracle") transpilers between programming models.
//!
//! These implement the *correct* translations for the three pairs the paper
//! evaluates. The simulated LLM backends (`pareval-llm`) start from this
//! oracle output and inject model-specific mistakes; the harness also uses
//! the oracle directly to verify that every translation task is solvable
//! end-to-end in the MiniHPC world (modulo the cases that are unsolved in
//! the paper as well, e.g. XSBench's pointer-arithmetic helpers under
//! Kokkos).

pub mod kernel;
pub mod rw;

use minihpc_lang::ast::*;
use minihpc_lang::model::{ExecutionModel, TranslationPair};
use minihpc_lang::parser;
use minihpc_lang::pragma::*;
use minihpc_lang::printer;
use minihpc_lang::repo::{FileKind, SourceRepo};
use rw::{call_name, map_exprs, map_exprs_stmt, map_type, rewrite_stmts};
use std::collections::{BTreeMap, HashSet};

/// Outcome of transpiling one source/header file.
pub struct FileResult {
    pub path: String,
    pub text: String,
    pub used_curand: bool,
}

/// Portable-RNG helpers emitted where cuRAND was used. The arithmetic is
/// bit-for-bit the splitmix64 chain the simulated cuRAND implements, so
/// translated programs reproduce the source model's random stream exactly.
const RNG_HELPERS: &str = r#"long rng_mix(long x) {
    x = x + 0x9E3779B97F4A7C15;
    long z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB;
    return z ^ (z >> 31);
}

void rng_seed_into(long seed, long seq, long offset, long* state) {
    state[0] = rng_mix(seed ^ seq * 0x9E3779B97F4A7C15 ^ offset);
}

float rng_uniform(long* state) {
    state[0] = rng_mix(state[0]);
    long y = state[0] >> 11;
    return ((double)y + 1.0) / 9007199254740992.0;
}
"#;

const RNG_PROTOS: &str = "long rng_mix(long x);\nvoid rng_seed_into(long seed, long seq, long offset, long* state);\nfloat rng_uniform(long* state);\n";

/// Translate a whole repository to the pair's destination model, producing
/// the translated sources *and* build system (the "Overall" configuration).
pub fn transpile_repo(repo: &SourceRepo, pair: TranslationPair, binary: &str) -> SourceRepo {
    let mut out = SourceRepo::new();
    let mut translated_sources: Vec<String> = Vec::new();
    let mut curand_files: Vec<String> = Vec::new();
    let mut results: Vec<FileResult> = Vec::new();

    for (path, text) in repo.iter() {
        match FileKind::of(path) {
            FileKind::Source | FileKind::Header => {
                let r = transpile_file(repo, path, text, pair);
                if r.used_curand {
                    curand_files.push(r.path.clone());
                }
                if FileKind::of(&r.path) == FileKind::Source {
                    translated_sources.push(r.path.clone());
                }
                results.push(r);
            }
            FileKind::Makefile | FileKind::CMakeLists => {} // regenerated below
            FileKind::Other => out.add(path, text),
        }
    }

    // Inject RNG helpers: definitions into the first using source file
    // (deterministic order), prototypes into the others.
    curand_files.sort();
    let definer = curand_files
        .iter()
        .find(|p| FileKind::of(p) == FileKind::Source)
        .cloned();
    for mut r in results {
        if r.used_curand && pair.to == ExecutionModel::OmpOffload {
            if Some(&r.path) == definer.as_ref() {
                r.text = format!("{RNG_HELPERS}\n{}", r.text);
            } else {
                r.text = format!("{RNG_PROTOS}\n{}", r.text);
            }
        }
        out.add(r.path, r.text);
    }

    let (bpath, btext) = transpile_build_file(pair, binary, &translated_sources);
    out.add(bpath, btext);
    out
}

/// Translate one source or header file.
pub fn transpile_file(
    repo: &SourceRepo,
    path: &str,
    text: &str,
    pair: TranslationPair,
) -> FileResult {
    let new_path = rename_for_target(path, pair.to);
    let Ok(mut file) = parser::parse_file(text) else {
        // Untranslatable input passes through (the build will fail there,
        // as it would have in the source model).
        return FileResult {
            path: new_path,
            text: text.to_string(),
            used_curand: false,
        };
    };
    let used_curand = file_uses_curand(&file);
    match (pair.from, pair.to) {
        (ExecutionModel::Cuda, ExecutionModel::OmpOffload) => cuda_to_offload(&mut file),
        (ExecutionModel::Cuda, ExecutionModel::Kokkos) => cuda_to_kokkos(&mut file, repo),
        (ExecutionModel::OmpThreads, ExecutionModel::OmpOffload) => threads_to_offload(&mut file),
        _ => {}
    }
    FileResult {
        path: new_path,
        text: printer::print_file(&file),
        used_curand,
    }
}

/// Generate the destination build file.
pub fn transpile_build_file(
    pair: TranslationPair,
    binary: &str,
    sources: &[String],
) -> (String, String) {
    let srcs = sources.join(" ");
    match pair.to {
        ExecutionModel::Kokkos => (
            "CMakeLists.txt".to_string(),
            format!(
                "cmake_minimum_required(VERSION 3.16)\nproject({binary} LANGUAGES CXX)\n\
                 find_package(Kokkos REQUIRED)\nset(CMAKE_CXX_STANDARD 17)\n\
                 add_executable({binary} {srcs})\n\
                 target_link_libraries({binary} PRIVATE Kokkos::kokkos)\n\
                 target_link_libraries({binary} PRIVATE m)\n"
            ),
        ),
        ExecutionModel::OmpOffload => (
            "Makefile".to_string(),
            format!(
                "CXX = clang++\nCXXFLAGS = -O2 -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda -lm\n\
                 SRCS = {srcs}\n\n{binary}: $(SRCS)\n\t$(CXX) $(CXXFLAGS) -o {binary} $(SRCS)\n\n\
                 .PHONY: clean\nclean:\n\trm -f {binary}\n"
            ),
        ),
        ExecutionModel::Cuda => (
            "Makefile".to_string(),
            format!(
                "NVCC = nvcc\nNVCCFLAGS = -O2 -arch=sm_80\nSRCS = {srcs}\n\n\
                 {binary}: $(SRCS)\n\t$(NVCC) $(NVCCFLAGS) -o {binary} $(SRCS)\n\n\
                 .PHONY: clean\nclean:\n\trm -f {binary}\n"
            ),
        ),
        ExecutionModel::OmpThreads => (
            "Makefile".to_string(),
            format!(
                "CXX = g++\nCXXFLAGS = -O2 -fopenmp -lm\nSRCS = {srcs}\n\n\
                 {binary}: $(SRCS)\n\t$(CXX) $(CXXFLAGS) -o {binary} $(SRCS)\n\n\
                 .PHONY: clean\nclean:\n\trm -f {binary}\n"
            ),
        ),
    }
}

/// `.cu` sources become `.cpp` when leaving CUDA.
pub fn rename_for_target(path: &str, to: ExecutionModel) -> String {
    if to != ExecutionModel::Cuda && path.ends_with(".cu") {
        format!("{}.cpp", &path[..path.len() - 3])
    } else {
        path.to_string()
    }
}

fn file_uses_curand(file: &SourceFile) -> bool {
    let text = printer::print_file(file);
    text.contains("curand")
}

// ===========================================================================
// CUDA → OpenMP offload
// ===========================================================================

fn cuda_to_offload(file: &mut SourceFile) {
    rewrite_includes(file, &[("omp.h", true)]);
    rewrite_curand_types(file);
    let var_types = collect_fn_types(file);
    for item in &mut file.items {
        let ItemKind::Function(f) = &mut item.kind else {
            continue;
        };
        let was_kernel = f.quals.cuda_global;
        f.quals.cuda_global = false;
        f.quals.cuda_device = false;
        f.quals.cuda_host = false;
        if was_kernel {
            if let Some(loops) = kernel::extract(f) {
                let directive = offload_directive(&loops, &f.params);
                let nest = kernel::build_for_nest(&loops);
                f.body = Some(Block::new(vec![Stmt::synth(StmtKind::Omp {
                    directive,
                    body: Some(Box::new(nest)),
                })]));
            }
        }
        if let Some(body) = &mut f.body {
            rewrite_cuda_host_stmts(body, &var_types, HostStyle::Offload);
        }
    }
}

fn offload_directive(loops: &kernel::KernelLoops, params: &[Param]) -> OmpDirective {
    let mut d = OmpDirective::new(vec![
        OmpConstruct::Target,
        OmpConstruct::Teams,
        OmpConstruct::Distribute,
        OmpConstruct::Parallel,
        OmpConstruct::For,
    ]);
    if loops.vars.len() > 1 {
        d = d.with_clause(OmpClause::Collapse(loops.vars.len() as i64));
    }
    // Map every pointer parameter; const pointers only go to the device.
    let mut to_vars = Vec::new();
    let mut tofrom_vars = Vec::new();
    for p in params {
        if let Type::Ptr(inner) = p.ty.unqualified() {
            if matches!(**inner, Type::Const(_)) {
                to_vars.push(ArraySection::scalar(p.name.clone()));
            } else {
                tofrom_vars.push(ArraySection::scalar(p.name.clone()));
            }
        }
    }
    if !to_vars.is_empty() {
        d = d.with_clause(OmpClause::Map {
            kind: MapKind::To,
            sections: to_vars,
        });
    }
    if !tofrom_vars.is_empty() {
        d = d.with_clause(OmpClause::Map {
            kind: MapKind::ToFrom,
            sections: tofrom_vars,
        });
    }
    d
}

// ===========================================================================
// CUDA → Kokkos
// ===========================================================================

fn cuda_to_kokkos(file: &mut SourceFile, repo: &SourceRepo) {
    rewrite_includes(file, &[("Kokkos_Core.hpp", true)]);
    rewrite_curand_types(file);
    // Repo-wide analysis: which function parameters carry device data (and
    // therefore become views)? Kernels seed the set; ordinary calls and
    // kernel launches propagate it to wrappers like `runXOR`.
    let view_param_map = view_params_map(repo);

    let var_types = collect_fn_types(file);
    for item in &mut file.items {
        let ItemKind::Function(f) = &mut item.kind else {
            continue;
        };
        let was_kernel = f.quals.cuda_global;
        f.quals.cuda_global = false;
        f.quals.cuda_device = false;
        f.quals.cuda_host = false;

        let mut view_params: HashSet<String> = HashSet::new();
        if let Some(mask) = view_param_map.get(&f.name) {
            for (p, is_view) in f.params.iter_mut().zip(mask) {
                if !is_view {
                    continue;
                }
                if let Some(elem) = scalar_pointee(&p.ty) {
                    p.ty = Type::View { elem, rank: 1 };
                    view_params.insert(p.name.clone());
                }
            }
        }

        if was_kernel {
            if let Some(loops) = kernel::extract(f) {
                let lambda_params: Vec<Param> = loops
                    .vars
                    .iter()
                    .map(|v| Param::new(Type::INT, v.clone()))
                    .collect();
                let mut body = Block::new(loops.body.clone());
                for s in &mut body.stmts {
                    rewrite_index_to_view_call(s, &view_params);
                }
                let lambda = Expr::synth(ExprKind::Lambda {
                    capture: CaptureMode::KokkosLambda,
                    params: lambda_params,
                    body,
                });
                let policy = if loops.vars.len() == 1 {
                    loops.bounds[0].clone()
                } else {
                    Expr::call(
                        Expr::path(&["Kokkos", "MDRangePolicy"]),
                        vec![
                            Expr::int(0),
                            Expr::int(0),
                            loops.bounds[0].clone(),
                            loops.bounds[1].clone(),
                        ],
                    )
                };
                let call = Expr::call(
                    Expr::path(&["Kokkos", "parallel_for"]),
                    vec![policy, lambda],
                );
                f.body = Some(Block::new(vec![Stmt::expr(call)]));
            }
        } else if !view_params.is_empty() {
            // Device helper / wrapper: rewrite indexing of its view params.
            if let Some(body) = &mut f.body {
                for s in &mut body.stmts {
                    rewrite_index_to_view_call(s, &view_params);
                }
            }
        }

        if let Some(body) = &mut f.body {
            // Host-side CUDA API rewrites (views for device buffers).
            let device_views = kokkos_rewrite_host(body, &var_types);
            // Rewrite indexing of device views in host code (rare; deep_copy
            // is the normal path).
            for s in &mut body.stmts {
                rewrite_index_to_view_call(s, &device_views);
            }
            if f.name == "main" {
                wrap_main_with_kokkos(body);
            }
        }
    }
}

/// Repo-wide analysis: per function, which parameters become Kokkos views.
///
/// Seeds: every scalar-pointer parameter of a `__global__` kernel and of any
/// function transitively called from a kernel. Propagation: if function F
/// passes its parameter `p` as argument `i` of a call (or kernel launch) to
/// G whose parameter `i` is a view, then `p` is a view too — this is how
/// host wrappers that forward device pointers (`runXOR`) get view types.
fn view_params_map(repo: &SourceRepo) -> BTreeMap<String, Vec<bool>> {
    struct FnInfo {
        params: Vec<Param>,
        is_kernel: bool,
        /// (callee, arg index, param name of this function used as the arg)
        forwards: Vec<(String, usize, String)>,
        callees: HashSet<String>,
    }
    let mut fns: BTreeMap<String, FnInfo> = BTreeMap::new();
    for (path, text) in repo.iter() {
        if !FileKind::of(path).is_code() {
            continue;
        }
        let Ok(file) = parser::parse_file(text) else {
            continue;
        };
        for f in file.functions() {
            let param_names: HashSet<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
            let mut forwards = Vec::new();
            let mut callees = HashSet::new();
            if let Some(body) = &f.body {
                let mut b = Block::new(body.stmts.clone());
                for s in &mut b.stmts {
                    map_exprs_stmt(s, &mut |e| {
                        let (callee, args) = match &e.kind {
                            ExprKind::Call { callee, args } => match &callee.kind {
                                ExprKind::Ident(n) => (n.clone(), args),
                                _ => return,
                            },
                            ExprKind::KernelLaunch { kernel, args, .. } => (kernel.clone(), args),
                            _ => return,
                        };
                        callees.insert(callee.clone());
                        for (i, a) in args.iter().enumerate() {
                            if let ExprKind::Ident(n) = &a.kind {
                                if param_names.contains(n.as_str()) {
                                    forwards.push((callee.clone(), i, n.clone()));
                                }
                            }
                        }
                    });
                }
            }
            let entry = fns.entry(f.name.clone()).or_insert(FnInfo {
                params: f.params.clone(),
                is_kernel: f.quals.cuda_global,
                forwards: vec![],
                callees: HashSet::new(),
            });
            entry.is_kernel |= f.quals.cuda_global;
            if f.is_definition() {
                entry.params = f.params.clone();
                entry.forwards = forwards;
                entry.callees = callees;
            }
        }
    }

    // Seed: kernels and transitive device callees.
    let mut device: HashSet<String> = HashSet::new();
    let mut stack: Vec<String> = fns
        .iter()
        .filter(|(_, i)| i.is_kernel)
        .map(|(n, _)| n.clone())
        .collect();
    while let Some(name) = stack.pop() {
        if !device.insert(name.clone()) {
            continue;
        }
        if let Some(info) = fns.get(&name) {
            for c in &info.callees {
                if fns.contains_key(c) && !device.contains(c) {
                    stack.push(c.clone());
                }
            }
        }
    }

    let mut masks: BTreeMap<String, Vec<bool>> = BTreeMap::new();
    for (name, info) in &fns {
        let mask: Vec<bool> = info
            .params
            .iter()
            .map(|p| device.contains(name) && scalar_pointee(&p.ty).is_some())
            .collect();
        masks.insert(name.clone(), mask);
    }
    // Propagate view-ness backwards through forwarding call sites.
    loop {
        let mut changed = false;
        for (name, info) in &fns {
            if name == "main" {
                continue;
            }
            for (callee, arg_idx, param_name) in &info.forwards {
                let callee_is_view = masks
                    .get(callee)
                    .and_then(|m| m.get(*arg_idx))
                    .copied()
                    .unwrap_or(false);
                if !callee_is_view {
                    continue;
                }
                if let Some(pi) = info.params.iter().position(|p| &p.name == param_name) {
                    if scalar_pointee(&info.params[pi].ty).is_some() {
                        let mask = masks.get_mut(name).unwrap();
                        if !mask[pi] {
                            mask[pi] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    masks
}

fn scalar_pointee(t: &Type) -> Option<ScalarType> {
    match t.unqualified() {
        Type::Ptr(inner) => match inner.unqualified() {
            Type::Scalar(s) if *s != ScalarType::Void => Some(*s),
            _ => None,
        },
        _ => None,
    }
}

/// Host-side CUDA→Kokkos statement rewrites; returns the set of variables
/// that became device views.
fn kokkos_rewrite_host(body: &mut Block, var_types: &BTreeMap<String, Type>) -> HashSet<String> {
    // Pass 1: find device allocations `cudaMalloc(&p, n * sizeof(T))`.
    let mut device_views: HashSet<String> = HashSet::new();
    let mut view_info: BTreeMap<String, (ScalarType, Expr)> = BTreeMap::new();
    collect_cuda_mallocs(body, var_types, &mut view_info);
    for name in view_info.keys() {
        device_views.insert(name.clone());
    }
    // Pointer aliases of device views (`int* tmp = d_in;` ping-pong swaps)
    // become view handles too; iterate to a fixpoint.
    let mut alias_elems: BTreeMap<String, ScalarType> = view_info
        .iter()
        .map(|(k, (e, _))| (k.clone(), *e))
        .collect();
    loop {
        let before = device_views.len();
        collect_view_aliases(body, &mut device_views, &mut alias_elems);
        if device_views.len() == before {
            break;
        }
    }

    // Pass 2: rewrite statements.
    rewrite_stmts(body, &mut |s| {
        match &s.kind {
            // Drop the plain pointer declaration of a future view.
            StmtKind::Decl(d) if device_views.contains(&d.name) && d.init.is_none() => vec![],
            StmtKind::Decl(d) if matches!(d.ty.unqualified(), Type::Dim3) => vec![],
            // Alias declarations become view-handle declarations.
            StmtKind::Decl(d)
                if device_views.contains(&d.name)
                    && matches!(&d.init, Some(Init::Expr(e))
                        if matches!(&e.kind, ExprKind::Ident(v) if device_views.contains(v))) =>
            {
                let mut d = d.clone();
                let elem = alias_elems
                    .get(&d.name)
                    .copied()
                    .unwrap_or(ScalarType::Double);
                d.ty = Type::View { elem, rank: 1 };
                vec![Stmt::synth(StmtKind::Decl(d))]
            }
            StmtKind::Expr(e) => match call_name(e) {
                Some("cudaMalloc") => {
                    let ExprKind::Call { args, .. } = &e.kind else {
                        return vec![s];
                    };
                    let Some(var) = malloc_target_var(&args[0]) else {
                        return vec![s];
                    };
                    let Some((elem, len)) = view_info.get(&var) else {
                        return vec![s];
                    };
                    vec![Stmt::synth(StmtKind::Decl(VarDecl {
                        name: var.clone(),
                        ty: Type::View {
                            elem: *elem,
                            rank: 1,
                        },
                        array_dims: vec![],
                        init: Some(Init::Ctor(vec![
                            Expr::synth(ExprKind::StrLit(var.clone())),
                            len.clone(),
                        ])),
                        is_static: false,
                    }))]
                }
                Some("cudaMemcpy") => {
                    let ExprKind::Call { args, .. } = &e.kind else {
                        return vec![s];
                    };
                    vec![Stmt::expr(Expr::call(
                        Expr::path(&["Kokkos", "deep_copy"]),
                        vec![args[0].clone(), args[1].clone()],
                    ))]
                }
                Some("cudaFree") => vec![],
                Some("cudaDeviceSynchronize") | Some("cudaGetLastError") => {
                    vec![Stmt::expr(Expr::call(
                        Expr::path(&["Kokkos", "fence"]),
                        vec![],
                    ))]
                }
                _ => {
                    let mut s = s;
                    if let StmtKind::Expr(e) = &mut s.kind {
                        launch_to_call(e);
                    }
                    vec![s]
                }
            },
            _ => vec![s],
        }
    });
    device_views
}

fn collect_cuda_mallocs(
    block: &Block,
    var_types: &BTreeMap<String, Type>,
    out: &mut BTreeMap<String, (ScalarType, Expr)>,
) {
    for s in &block.stmts {
        match &s.kind {
            StmtKind::Expr(e) if call_name(e) == Some("cudaMalloc") => {
                let ExprKind::Call { args, .. } = &e.kind else {
                    continue;
                };
                let Some(var) = malloc_target_var(&args[0]) else {
                    continue;
                };
                let elem = var_types
                    .get(&var)
                    .and_then(scalar_pointee)
                    .unwrap_or(ScalarType::Double);
                let len = element_count_expr(&args[1]);
                out.insert(var, (elem, len));
            }
            StmtKind::Block(b) => collect_cuda_mallocs(b, var_types, out),
            StmtKind::If { then, els, .. } => {
                if let StmtKind::Block(b) = &then.kind {
                    collect_cuda_mallocs(b, var_types, out);
                }
                if let Some(e) = els {
                    if let StmtKind::Block(b) = &e.kind {
                        collect_cuda_mallocs(b, var_types, out);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Find `T* alias = <view var>;` declarations and record them as views.
fn collect_view_aliases(
    block: &Block,
    views: &mut HashSet<String>,
    elems: &mut BTreeMap<String, ScalarType>,
) {
    for s in &block.stmts {
        match &s.kind {
            StmtKind::Decl(d) => {
                if let Some(Init::Expr(e)) = &d.init {
                    if let ExprKind::Ident(v) = &e.kind {
                        if views.contains(v) && d.ty.is_pointer() {
                            let elem = elems.get(v).copied().unwrap_or(ScalarType::Double);
                            if views.insert(d.name.clone()) {
                                elems.insert(d.name.clone(), elem);
                            }
                        }
                    }
                }
            }
            StmtKind::Block(b) => collect_view_aliases(b, views, elems),
            StmtKind::If { then, els, .. } => {
                if let StmtKind::Block(b) = &then.kind {
                    collect_view_aliases(b, views, elems);
                }
                if let Some(e) = els {
                    if let StmtKind::Block(b) = &e.kind {
                        collect_view_aliases(b, views, elems);
                    }
                }
            }
            StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                if let StmtKind::Block(b) = &body.kind {
                    collect_view_aliases(b, views, elems);
                }
            }
            _ => {}
        }
    }
}

/// `&p` (possibly cast) → `p`.
fn malloc_target_var(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Unary {
            op: UnaryOp::AddrOf,
            expr,
        } => match &expr.kind {
            ExprKind::Ident(n) => Some(n.clone()),
            _ => None,
        },
        ExprKind::Cast { expr, .. } | ExprKind::Paren(expr) => malloc_target_var(expr),
        _ => None,
    }
}

/// Peel a trailing `* sizeof(T)` factor off a byte-size expression to get an
/// element count; falls back to `bytes / sizeof(double)`.
fn element_count_expr(bytes: &Expr) -> Expr {
    if let ExprKind::Binary {
        op: BinOp::Mul,
        lhs,
        rhs,
    } = &bytes.kind
    {
        if matches!(rhs.kind, ExprKind::SizeOfType(_) | ExprKind::SizeOfExpr(_)) {
            return (**lhs).clone();
        }
    }
    Expr::binary(
        BinOp::Div,
        bytes.clone(),
        Expr::synth(ExprKind::SizeOfType(Type::DOUBLE)),
    )
}

fn launch_to_call(e: &mut Expr) {
    map_exprs(e, &mut |e| {
        if let ExprKind::KernelLaunch { kernel, args, .. } = &e.kind {
            *e = Expr::call(Expr::ident(kernel.clone()), args.clone());
        }
    });
}

/// `p[expr]` → `p(expr)` for view variables.
fn rewrite_index_to_view_call(s: &mut Stmt, views: &HashSet<String>) {
    if views.is_empty() {
        return;
    }
    map_exprs_stmt(s, &mut |e| {
        if let ExprKind::Index { base, index } = &e.kind {
            if let ExprKind::Ident(n) = &base.kind {
                if views.contains(n) {
                    *e = Expr::call(Expr::ident(n.clone()), vec![(**index).clone()]);
                }
            }
        }
    });
}

fn wrap_main_with_kokkos(body: &mut Block) {
    // `Kokkos::finalize()` before every return; `initialize()` first.
    rewrite_stmts(body, &mut |s| {
        if matches!(s.kind, StmtKind::Return(_)) {
            vec![
                Stmt::expr(Expr::call(Expr::path(&["Kokkos", "finalize"]), vec![])),
                s,
            ]
        } else {
            vec![s]
        }
    });
    body.stmts.insert(
        0,
        Stmt::expr(Expr::call(Expr::path(&["Kokkos", "initialize"]), vec![])),
    );
}

// ===========================================================================
// OpenMP threads → OpenMP offload
// ===========================================================================

fn threads_to_offload(file: &mut SourceFile) {
    let fn_param_types: Vec<(String, Vec<Param>)> = file
        .functions()
        .map(|f| (f.name.clone(), f.params.clone()))
        .collect();
    let _ = fn_param_types;
    for item in &mut file.items {
        let ItemKind::Function(f) = &mut item.kind else {
            continue;
        };
        let params = f.params.clone();
        let Some(body) = &mut f.body else { continue };
        upgrade_parallel_for(body, &params);
    }
}

fn upgrade_parallel_for(block: &mut Block, params: &[Param]) {
    // Track pointer-typed locals seen so far (for map clauses).
    let mut pointer_vars: Vec<(String, bool)> = params
        .iter()
        .filter_map(|p| match p.ty.unqualified() {
            Type::Ptr(inner) => Some((p.name.clone(), matches!(**inner, Type::Const(_)))),
            _ => None,
        })
        .collect();
    upgrade_in_block(block, &mut pointer_vars);
}

fn upgrade_in_block(block: &mut Block, pointer_vars: &mut Vec<(String, bool)>) {
    for s in &mut block.stmts {
        match &mut s.kind {
            StmtKind::Decl(d) => {
                if let Type::Ptr(inner) = d.ty.unqualified() {
                    pointer_vars.push((d.name.clone(), matches!(**inner, Type::Const(_))));
                }
            }
            StmtKind::Block(b) => upgrade_in_block(b, pointer_vars),
            StmtKind::If { then, els, .. } => {
                if let StmtKind::Block(b) = &mut then.kind {
                    upgrade_in_block(b, pointer_vars);
                }
                if let Some(e) = els {
                    if let StmtKind::Block(b) = &mut e.kind {
                        upgrade_in_block(b, pointer_vars);
                    }
                }
            }
            StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                if let StmtKind::Block(b) = &mut body.kind {
                    upgrade_in_block(b, pointer_vars);
                }
            }
            StmtKind::Omp { directive, body } => {
                if directive.has(OmpConstruct::Parallel)
                    && directive.has(OmpConstruct::For)
                    && !directive.targets_device()
                {
                    let mut new = OmpDirective::new(vec![
                        OmpConstruct::Target,
                        OmpConstruct::Teams,
                        OmpConstruct::Distribute,
                        OmpConstruct::Parallel,
                        OmpConstruct::For,
                    ]);
                    // Keep collapse/reduction/schedule-free clauses.
                    for c in &directive.clauses {
                        match c {
                            OmpClause::Collapse(_) | OmpClause::Reduction { .. } => {
                                new.clauses.push(c.clone());
                            }
                            _ => {}
                        }
                    }
                    // Map the pointers referenced in the loop body.
                    let referenced = referenced_idents(body.as_deref());
                    let mut to_secs = Vec::new();
                    let mut tofrom_secs = Vec::new();
                    for (name, is_const) in pointer_vars.iter() {
                        if referenced.contains(name) {
                            if *is_const {
                                to_secs.push(ArraySection::scalar(name.clone()));
                            } else {
                                tofrom_secs.push(ArraySection::scalar(name.clone()));
                            }
                        }
                    }
                    if !to_secs.is_empty() {
                        new.clauses.push(OmpClause::Map {
                            kind: MapKind::To,
                            sections: to_secs,
                        });
                    }
                    if !tofrom_secs.is_empty() {
                        new.clauses.push(OmpClause::Map {
                            kind: MapKind::ToFrom,
                            sections: tofrom_secs,
                        });
                    }
                    *directive = new;
                }
                if let Some(b) = body {
                    if let StmtKind::Block(inner) = &mut b.kind {
                        upgrade_in_block(inner, pointer_vars);
                    }
                }
            }
            _ => {}
        }
    }
}

fn referenced_idents(s: Option<&Stmt>) -> HashSet<String> {
    let mut out = HashSet::new();
    let Some(s) = s else { return out };
    let mut cloned = s.clone();
    map_exprs_stmt(&mut cloned, &mut |e| {
        if let ExprKind::Ident(n) = &e.kind {
            out.insert(n.clone());
        }
    });
    out
}

// ===========================================================================
// Shared rewrites
// ===========================================================================

#[derive(Clone, Copy, PartialEq)]
enum HostStyle {
    Offload,
}

/// Rewrite CUDA host API statements for the OpenMP-offload target: device
/// buffers become plain host allocations and transfers become memcpy.
fn rewrite_cuda_host_stmts(
    body: &mut Block,
    var_types: &BTreeMap<String, Type>,
    _style: HostStyle,
) {
    rewrite_stmts(body, &mut |mut s| {
        if let StmtKind::Decl(d) = &s.kind {
            if matches!(d.ty.unqualified(), Type::Dim3) {
                return vec![];
            }
        }
        if let StmtKind::Expr(e) = &mut s.kind {
            match call_name(e) {
                Some("cudaDeviceSynchronize") | Some("cudaGetLastError") => return vec![],
                Some("cudaMalloc") => {
                    let ExprKind::Call { args, .. } = &e.kind else {
                        return vec![s];
                    };
                    let Some(var) = malloc_target_var(&args[0]) else {
                        return vec![s];
                    };
                    let ptr_ty = var_types
                        .get(&var)
                        .cloned()
                        .unwrap_or(Type::ptr(Type::DOUBLE));
                    let size = args[1].clone();
                    *e = Expr::synth(ExprKind::Assign {
                        op: None,
                        lhs: Box::new(Expr::ident(var)),
                        rhs: Box::new(Expr::synth(ExprKind::Cast {
                            ty: strip_const_ptr(&ptr_ty),
                            expr: Box::new(Expr::call(Expr::ident("malloc"), vec![size])),
                        })),
                    });
                    return vec![s];
                }
                Some("cudaMemcpy") => {
                    let ExprKind::Call { args, .. } = &e.kind else {
                        return vec![s];
                    };
                    *e = Expr::call(
                        Expr::ident("memcpy"),
                        vec![args[0].clone(), args[1].clone(), args[2].clone()],
                    );
                    return vec![s];
                }
                Some("cudaFree") => {
                    let ExprKind::Call { args, .. } = &e.kind else {
                        return vec![s];
                    };
                    *e = Expr::call(Expr::ident("free"), vec![args[0].clone()]);
                    return vec![s];
                }
                _ => {}
            }
            launch_to_call(e);
            rewrite_curand_calls(e);
        }
        vec![s]
    });
}

fn strip_const_ptr(t: &Type) -> Type {
    match t.unqualified() {
        Type::Ptr(inner) => Type::ptr(inner.unqualified().clone()),
        other => other.clone(),
    }
}

fn rewrite_curand_calls(e: &mut Expr) {
    map_exprs(e, &mut |e| {
        if let ExprKind::Call { callee, .. } = &mut e.kind {
            if let ExprKind::Ident(n) = &mut callee.kind {
                match n.as_str() {
                    "curand_init" => *n = "rng_seed_into".into(),
                    "curand_uniform" | "curand_uniform_double" => *n = "rng_uniform".into(),
                    _ => {}
                }
            }
        }
    });
}

/// `curandState` → `long` throughout (types and sizeof).
fn rewrite_curand_types(file: &mut SourceFile) {
    let fix_type = |t: &mut Type| {
        map_type(t, &mut |t| {
            if matches!(t, Type::Named(n) if n == "curandState") {
                *t = Type::Scalar(ScalarType::Long);
            }
        });
    };
    for item in &mut file.items {
        match &mut item.kind {
            ItemKind::Function(f) => {
                fix_type(&mut f.ret);
                for p in &mut f.params {
                    fix_type(&mut p.ty);
                }
                if let Some(body) = &mut f.body {
                    for s in &mut body.stmts {
                        fix_types_in_stmt(s);
                        map_exprs_stmt(s, &mut |e| {
                            match &mut e.kind {
                                ExprKind::SizeOfType(t) => fix_type_value(t),
                                ExprKind::SizeOfExpr(inner) => {
                                    if matches!(&inner.kind, ExprKind::Ident(n) if n == "curandState")
                                    {
                                        e.kind =
                                            ExprKind::SizeOfType(Type::Scalar(ScalarType::Long));
                                    }
                                }
                                ExprKind::Cast { ty, .. } => fix_type_value(ty),
                                _ => {}
                            }
                            rewrite_curand_calls_inner(e);
                        });
                    }
                }
            }
            ItemKind::Struct(sd) => {
                for f in &mut sd.fields {
                    fix_type(&mut f.ty);
                }
            }
            ItemKind::Global(g) => fix_type(&mut g.ty),
            _ => {}
        }
    }
}

fn fix_type_value(t: &mut Type) {
    map_type(t, &mut |t| {
        if matches!(t, Type::Named(n) if n == "curandState") {
            *t = Type::Scalar(ScalarType::Long);
        }
    });
}

fn fix_types_in_stmt(s: &mut Stmt) {
    match &mut s.kind {
        StmtKind::Decl(d) => fix_type_value(&mut d.ty),
        StmtKind::Block(b) => {
            for s in &mut b.stmts {
                fix_types_in_stmt(s);
            }
        }
        StmtKind::If { then, els, .. } => {
            fix_types_in_stmt(then);
            if let Some(e) = els {
                fix_types_in_stmt(e);
            }
        }
        StmtKind::For { init, body, .. } => {
            if let Some(i) = init {
                fix_types_in_stmt(i);
            }
            fix_types_in_stmt(body);
        }
        StmtKind::While { body, .. } => fix_types_in_stmt(body),
        StmtKind::Omp { body: Some(b), .. } => fix_types_in_stmt(b),
        _ => {}
    }
}

fn rewrite_curand_calls_inner(e: &mut Expr) {
    if let ExprKind::Call { callee, .. } = &mut e.kind {
        if let ExprKind::Ident(n) = &mut callee.kind {
            match n.as_str() {
                "curand_init" => *n = "rng_seed_into".into(),
                "curand_uniform" | "curand_uniform_double" => *n = "rng_uniform".into(),
                _ => {}
            }
        }
    }
}

/// Replace CUDA system includes; ensure `adds` are present (once) if any
/// CUDA include was removed or the file has code items.
fn rewrite_includes(file: &mut SourceFile, adds: &[(&str, bool)]) {
    let mut removed_any = false;
    file.items.retain(|item| {
        if let ItemKind::Include { path, system: true } = &item.kind {
            if matches!(
                path.as_str(),
                "cuda_runtime.h" | "cuda.h" | "curand_kernel.h" | "curand.h"
            ) {
                removed_any = true;
                return false;
            }
        }
        true
    });
    if removed_any {
        for (path, system) in adds.iter().rev() {
            let already = file
                .items
                .iter()
                .any(|i| matches!(&i.kind, ItemKind::Include { path: p, .. } if p == path));
            if !already {
                file.items.insert(
                    0,
                    Item::synth(ItemKind::Include {
                        path: path.to_string(),
                        system: *system,
                    }),
                );
            }
        }
    }
}

/// Collect declared variable types (params + locals) for every function in
/// the file, flattened into one map (names in our apps are unique enough;
/// collisions resolve to the last declaration, which only affects allocation
/// element-type inference).
fn collect_fn_types(file: &SourceFile) -> BTreeMap<String, Type> {
    let mut out = BTreeMap::new();
    for f in file.functions() {
        for p in &f.params {
            out.insert(p.name.clone(), p.ty.clone());
        }
        if let Some(body) = &f.body {
            collect_decl_types(body, &mut out);
        }
    }
    out
}

fn collect_decl_types(b: &Block, out: &mut BTreeMap<String, Type>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Decl(d) => {
                out.insert(d.name.clone(), d.ty.clone());
            }
            StmtKind::Block(inner) => collect_decl_types(inner, out),
            StmtKind::If { then, els, .. } => {
                if let StmtKind::Block(inner) = &then.kind {
                    collect_decl_types(inner, out);
                }
                if let Some(e) = els {
                    if let StmtKind::Block(inner) = &e.kind {
                        collect_decl_types(inner, out);
                    }
                }
            }
            StmtKind::For { init, body, .. } => {
                if let Some(i) = init {
                    if let StmtKind::Decl(d) = &i.kind {
                        out.insert(d.name.clone(), d.ty.clone());
                    }
                }
                if let StmtKind::Block(inner) = &body.kind {
                    collect_decl_types(inner, out);
                }
            }
            StmtKind::Omp {
                body: Some(body), ..
            } => {
                if let StmtKind::Block(inner) = &body.kind {
                    collect_decl_types(inner, out);
                }
            }
            _ => {}
        }
    }
}
