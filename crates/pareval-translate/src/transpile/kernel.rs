//! CUDA kernel pattern extraction: recognises the canonical grid-stride-free
//! kernel shape used throughout the suite —
//!
//! ```c
//! int i = blockIdx.y * blockDim.y + threadIdx.y;
//! int j = blockIdx.x * blockDim.x + threadIdx.x;
//! if (i < N && j < N) { <body> }
//! ```
//!
//! — and recovers the loop nest (variables, bounds, body) that the OpenMP
//! offload and Kokkos emitters rebuild in their own idiom.

use minihpc_lang::ast::*;

/// A recovered kernel iteration space.
#[derive(Debug, Clone)]
pub struct KernelLoops {
    /// Loop variables in declaration (outer → inner) order.
    pub vars: Vec<String>,
    /// Upper bound expression per variable (`var < bound`).
    pub bounds: Vec<Expr>,
    /// The guarded body (the `if`'s then-branch statements).
    pub body: Vec<Stmt>,
}

/// Try to recover the iteration space of a `__global__` kernel.
pub fn extract(f: &Function) -> Option<KernelLoops> {
    let body = f.body.as_ref()?;
    let mut vars: Vec<String> = Vec::new();
    let mut rest_idx = None;
    for (i, s) in body.stmts.iter().enumerate() {
        match &s.kind {
            StmtKind::Decl(d) if init_is_thread_index(d).is_some() => {
                vars.push(d.name.clone());
            }
            _ => {
                rest_idx = Some(i);
                break;
            }
        }
    }
    if vars.is_empty() {
        return None;
    }
    let rest = &body.stmts[rest_idx?..];
    // Exactly one guarded if, nothing after it.
    let [guard] = rest else { return None };
    let StmtKind::If {
        cond,
        then,
        els: None,
    } = &guard.kind
    else {
        return None;
    };
    let mut bounds_by_var = std::collections::HashMap::new();
    collect_bounds(cond, &mut bounds_by_var)?;
    let mut bounds = Vec::with_capacity(vars.len());
    for v in &vars {
        bounds.push(bounds_by_var.remove(v.as_str())?.clone());
    }
    if !bounds_by_var.is_empty() {
        return None; // extra conjuncts we do not understand
    }
    let body_stmts = match &then.kind {
        StmtKind::Block(b) => b.stmts.clone(),
        _ => vec![(**then).clone()],
    };
    Some(KernelLoops {
        vars,
        bounds,
        body: body_stmts,
    })
}

/// Does this declaration compute a CUDA thread index? Returns the axis.
fn init_is_thread_index(d: &VarDecl) -> Option<char> {
    let Some(Init::Expr(e)) = &d.init else {
        return None;
    };
    // blockIdx.A * blockDim.A + threadIdx.A
    let ExprKind::Binary {
        op: BinOp::Add,
        lhs,
        rhs,
    } = &e.kind
    else {
        return None;
    };
    let axis1 = {
        let ExprKind::Binary {
            op: BinOp::Mul,
            lhs: bl,
            rhs: bd,
        } = &lhs.kind
        else {
            return None;
        };
        let a1 = builtin_member(bl, "blockIdx")?;
        let a2 = builtin_member(bd, "blockDim")?;
        if a1 != a2 {
            return None;
        }
        a1
    };
    let axis2 = builtin_member(rhs, "threadIdx")?;
    if axis1 != axis2 {
        return None;
    }
    Some(axis1)
}

fn builtin_member(e: &Expr, base_name: &str) -> Option<char> {
    let ExprKind::Member {
        base,
        member,
        arrow: false,
    } = &e.kind
    else {
        return None;
    };
    let ExprKind::Ident(n) = &base.kind else {
        return None;
    };
    if n != base_name {
        return None;
    }
    member
        .chars()
        .next()
        .filter(|c| matches!(c, 'x' | 'y' | 'z'))
}

/// Decompose a guard condition into `var < bound` conjuncts.
fn collect_bounds<'e>(
    cond: &'e Expr,
    out: &mut std::collections::HashMap<&'e str, &'e Expr>,
) -> Option<()> {
    match &cond.kind {
        ExprKind::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            collect_bounds(lhs, out)?;
            collect_bounds(rhs, out)
        }
        ExprKind::Binary {
            op: BinOp::Lt,
            lhs,
            rhs,
        } => {
            let ExprKind::Ident(v) = &lhs.kind else {
                return None;
            };
            out.insert(v.as_str(), rhs);
            Some(())
        }
        ExprKind::Paren(inner) => collect_bounds(inner, out),
        _ => None,
    }
}

/// Build a canonical `for` nest over the recovered loops with `body` inside
/// the innermost loop.
pub fn build_for_nest(loops: &KernelLoops) -> Stmt {
    let mut stmt = Stmt::synth(StmtKind::Block(Block::new(loops.body.clone())));
    for (var, bound) in loops.vars.iter().zip(&loops.bounds).rev() {
        stmt = Stmt::synth(StmtKind::For {
            init: Some(Box::new(Stmt::synth(StmtKind::Decl(VarDecl {
                name: var.clone(),
                ty: Type::INT,
                array_dims: vec![],
                init: Some(Init::Expr(Expr::int(0))),
                is_static: false,
            })))),
            cond: Some(Expr::binary(
                BinOp::Lt,
                Expr::ident(var.clone()),
                bound.clone(),
            )),
            step: Some(Expr::synth(ExprKind::Unary {
                op: UnaryOp::PostInc,
                expr: Box::new(Expr::ident(var.clone())),
            })),
            body: Box::new(stmt),
        });
    }
    stmt
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_lang::parser::parse_file;

    fn kernel(src: &str) -> Function {
        parse_file(src).unwrap().functions().next().unwrap().clone()
    }

    #[test]
    fn extract_1d() {
        let f = kernel(
            "__global__ void k(int* a, int n) {\n    int i = blockIdx.x * blockDim.x + threadIdx.x;\n    if (i < n) { a[i] = i; }\n}",
        );
        let loops = extract(&f).unwrap();
        assert_eq!(loops.vars, vec!["i"]);
        assert_eq!(minihpc_lang::printer::print_expr(&loops.bounds[0]), "n");
        assert_eq!(loops.body.len(), 1);
    }

    #[test]
    fn extract_2d_axis_order() {
        let f = kernel(
            "__global__ void k(int* a, size_t N) {\n    int i = blockIdx.y * blockDim.y + threadIdx.y;\n    int j = blockIdx.x * blockDim.x + threadIdx.x;\n    if (i < N && j < N) { a[i * N + j] = 1; }\n}",
        );
        let loops = extract(&f).unwrap();
        assert_eq!(loops.vars, vec!["i", "j"]);
    }

    #[test]
    fn reject_mismatched_axes() {
        let f = kernel(
            "__global__ void k(int* a, int n) {\n    int i = blockIdx.x * blockDim.x + threadIdx.y;\n    if (i < n) { a[i] = i; }\n}",
        );
        assert!(extract(&f).is_none());
    }

    #[test]
    fn reject_trailing_statements() {
        let f = kernel(
            "__global__ void k(int* a, int n) {\n    int i = blockIdx.x * blockDim.x + threadIdx.x;\n    if (i < n) { a[i] = i; }\n    a[0] = 9;\n}",
        );
        assert!(extract(&f).is_none());
    }

    #[test]
    fn build_nest_roundtrip() {
        let f = kernel(
            "__global__ void k(int* a, size_t N) {\n    int i = blockIdx.y * blockDim.y + threadIdx.y;\n    int j = blockIdx.x * blockDim.x + threadIdx.x;\n    if (i < N && j < N) { a[i * N + j] = 1; }\n}",
        );
        let loops = extract(&f).unwrap();
        let nest = build_for_nest(&loops);
        let printed = minihpc_lang::printer::print_stmt(&nest);
        assert!(printed.contains("for (int i = 0; i < N; i++)"), "{printed}");
        assert!(printed.contains("for (int j = 0; j < N; j++)"), "{printed}");
    }
}
