//! Small AST-rewriting toolkit shared by the transpilers.

use minihpc_lang::ast::*;

/// Rewrite every expression in a statement tree bottom-up.
pub fn map_exprs_stmt(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match &mut s.kind {
        StmtKind::Decl(d) => {
            for dim in &mut d.array_dims {
                map_exprs(dim, f);
            }
            match &mut d.init {
                Some(Init::Expr(e)) => map_exprs(e, f),
                Some(Init::List(es)) | Some(Init::Ctor(es)) => {
                    for e in es {
                        map_exprs(e, f);
                    }
                }
                None => {}
            }
        }
        StmtKind::Expr(e) => map_exprs(e, f),
        StmtKind::If { cond, then, els } => {
            map_exprs(cond, f);
            map_exprs_stmt(then, f);
            if let Some(e) = els {
                map_exprs_stmt(e, f);
            }
        }
        StmtKind::While { cond, body } => {
            map_exprs(cond, f);
            map_exprs_stmt(body, f);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                map_exprs_stmt(i, f);
            }
            if let Some(c) = cond {
                map_exprs(c, f);
            }
            if let Some(st) = step {
                map_exprs(st, f);
            }
            map_exprs_stmt(body, f);
        }
        StmtKind::Return(Some(e)) => map_exprs(e, f),
        StmtKind::Block(b) => {
            for s in &mut b.stmts {
                map_exprs_stmt(s, f);
            }
        }
        StmtKind::Omp { directive, body } => {
            for clause in &mut directive.clauses {
                use minihpc_lang::pragma::OmpClause;
                match clause {
                    OmpClause::NumThreads(e)
                    | OmpClause::NumTeams(e)
                    | OmpClause::ThreadLimit(e)
                    | OmpClause::If(e)
                    | OmpClause::Device(e) => map_exprs(e, f),
                    OmpClause::Map { sections, .. } => {
                        for s in sections {
                            for (lo, len) in &mut s.ranges {
                                map_exprs(lo, f);
                                map_exprs(len, f);
                            }
                        }
                    }
                    _ => {}
                }
            }
            if let Some(b) = body {
                map_exprs_stmt(b, f);
            }
        }
        _ => {}
    }
}

/// Rewrite an expression tree bottom-up (children first, then the node).
pub fn map_exprs(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match &mut e.kind {
        ExprKind::Unary { expr, .. } => map_exprs(expr, f),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            map_exprs(lhs, f);
            map_exprs(rhs, f);
        }
        ExprKind::Ternary { cond, then, els } => {
            map_exprs(cond, f);
            map_exprs(then, f);
            map_exprs(els, f);
        }
        ExprKind::Call { callee, args } => {
            map_exprs(callee, f);
            for a in args {
                map_exprs(a, f);
            }
        }
        ExprKind::KernelLaunch {
            grid, block, args, ..
        } => {
            map_exprs(grid, f);
            map_exprs(block, f);
            for a in args {
                map_exprs(a, f);
            }
        }
        ExprKind::Index { base, index } => {
            map_exprs(base, f);
            map_exprs(index, f);
        }
        ExprKind::Member { base, .. } => map_exprs(base, f),
        ExprKind::Cast { expr, .. } => map_exprs(expr, f),
        ExprKind::SizeOfExpr(inner) => map_exprs(inner, f),
        ExprKind::Lambda { body, .. } => {
            for s in &mut body.stmts {
                map_exprs_stmt(s, f);
            }
        }
        ExprKind::Paren(inner) => map_exprs(inner, f),
        _ => {}
    }
    f(e);
}

/// Rewrite the statements of every (nested) block: the callback receives one
/// statement and returns its replacement statements (empty = delete).
pub fn rewrite_stmts(block: &mut Block, f: &mut impl FnMut(Stmt) -> Vec<Stmt>) {
    let old = std::mem::take(&mut block.stmts);
    let mut new = Vec::with_capacity(old.len());
    for mut s in old {
        // Recurse into nested bodies first.
        match &mut s.kind {
            StmtKind::Block(b) => rewrite_stmts(b, f),
            StmtKind::If { then, els, .. } => {
                rewrite_nested(then, f);
                if let Some(e) = els {
                    rewrite_nested(e, f);
                }
            }
            StmtKind::While { body, .. } => rewrite_nested(body, f),
            StmtKind::For { body, .. } => rewrite_nested(body, f),
            StmtKind::Omp { body: Some(b), .. } => rewrite_nested(b, f),
            _ => {}
        }
        new.extend(f(s));
    }
    block.stmts = new;
}

fn rewrite_nested(s: &mut Stmt, f: &mut impl FnMut(Stmt) -> Vec<Stmt>) {
    if let StmtKind::Block(b) = &mut s.kind {
        rewrite_stmts(b, f);
    } else {
        // Single-statement body: apply the rewrite; wrap multi-statement
        // replacements in a block.
        let old = std::mem::replace(s, Stmt::synth(StmtKind::Empty));
        let mut replaced = f(old);
        *s = match replaced.len() {
            0 => Stmt::synth(StmtKind::Empty),
            1 => replaced.pop().unwrap(),
            _ => Stmt::synth(StmtKind::Block(Block::new(replaced))),
        };
    }
}

/// Rewrite a type in place (recursively through pointers/const).
pub fn map_type(t: &mut Type, f: &mut impl FnMut(&mut Type)) {
    match t {
        Type::Ptr(inner) | Type::Const(inner) => map_type(inner, f),
        _ => {}
    }
    f(t);
}

/// Extract the callee name of a plain `name(args)` call expression.
pub fn call_name(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Ident(n) => Some(n),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_lang::parser::{parse_expr_str, parse_stmt_str};
    use minihpc_lang::printer::{print_expr, print_stmt};

    #[test]
    fn map_exprs_renames_idents() {
        let mut e = parse_expr_str("a + b * a").unwrap();
        map_exprs(&mut e, &mut |e| {
            if let ExprKind::Ident(n) = &mut e.kind {
                if n == "a" {
                    *n = "x".into();
                }
            }
        });
        assert_eq!(print_expr(&e), "x + b * x");
    }

    #[test]
    fn rewrite_stmts_deletes_and_replaces() {
        let mut s = parse_stmt_str("{ cudaFree(p); x = 1; }").unwrap();
        let StmtKind::Block(ref mut b) = s.kind else {
            panic!()
        };
        rewrite_stmts(b, &mut |s| {
            if let StmtKind::Expr(e) = &s.kind {
                if call_name(e) == Some("cudaFree") {
                    return vec![];
                }
            }
            vec![s]
        });
        let printed = print_stmt(&s);
        assert!(!printed.contains("cudaFree"));
        assert!(printed.contains("x = 1"));
    }

    #[test]
    fn rewrite_single_stmt_bodies() {
        let mut s = parse_stmt_str("if (x) cudaDeviceSynchronize();").unwrap();
        let mut wrapper = Block::new(vec![s.clone()]);
        rewrite_stmts(&mut wrapper, &mut |s| {
            if let StmtKind::Expr(e) = &s.kind {
                if call_name(e) == Some("cudaDeviceSynchronize") {
                    return vec![];
                }
            }
            vec![s]
        });
        s = wrapper.stmts[0].clone();
        let printed = print_stmt(&s);
        assert!(!printed.contains("cudaDeviceSynchronize"), "{printed}");
    }
}
