//! The three repository-translation techniques benchmarked by the paper
//! (Sec. 3): the non-agentic file-by-file method, the top-down agentic
//! method (dependency / chunk / context / translation agents), and the
//! SWE-agent adaptation.
//!
//! Techniques are generic over a [`Backend`] — the (simulated) LLM that
//! performs each file translation. The technique owns prompt construction
//! (paper Listing 1), orchestration order, and repo assembly; the backend
//! owns translation quality and token accounting.

mod deps;
mod prompt;

pub use deps::dependency_order;
pub use prompt::{build_prompt, PromptParts};

use minihpc_lang::model::TranslationPair;
use minihpc_lang::repo::{FileKind, SourceRepo};
use std::fmt;

/// The full task specification a technique receives.
#[derive(Debug, Clone)]
pub struct TranslationJob<'a> {
    pub app_name: &'a str,
    pub binary: &'a str,
    pub source_repo: &'a SourceRepo,
    pub pair: TranslationPair,
    pub cli_spec: &'a str,
    pub build_spec: &'a str,
}

/// One file-translation request handed to the backend.
#[derive(Debug, Clone)]
pub struct FileJob {
    pub path: String,
    pub contents: String,
    /// The complete prompt text (system + context + instruction).
    pub prompt: String,
    pub pair: TranslationPair,
    pub kind: FileKind,
    /// Top-down: summaries of already-translated dependencies.
    pub context_summary: Option<String>,
    /// `(index, total)` when the chunk agent split the file.
    pub chunk: Option<(usize, usize)>,
    pub binary: String,
}

/// Backend response for one file job.
#[derive(Debug, Clone)]
pub struct BackendOutput {
    /// Translated files (path may be renamed, e.g. `.cu` → `.cpp`; a
    /// response may carry several files when the model merges them).
    pub files: Vec<(String, String)>,
    /// A short summary of the changes (produced by the context agent's
    /// underlying model; used in dependents' prompts).
    pub summary: String,
}

/// Why a backend could not complete a job — these become the paper's empty
/// heatmap cells.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// Prompt (plus expected output) exceeds the model's context window —
    /// the non-agentic method cannot scale to this repo (paper Sec. 8.2).
    ContextExceeded { needed: u64, limit: u64 },
    /// The per-experiment budget (API dollars / node-hours) ran out.
    BudgetExhausted,
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::ContextExceeded { needed, limit } => write!(
                f,
                "translation exceeds the model context window ({needed} > {limit} tokens)"
            ),
            BackendError::BudgetExhausted => {
                write!(f, "per-experiment inference budget exhausted")
            }
        }
    }
}

/// The simulated LLM interface.
pub trait Backend {
    /// Translate one file (or chunk).
    fn translate(&mut self, job: &FileJob) -> Result<BackendOutput, BackendError>;
    /// The model's context window, in tokens.
    fn context_limit(&self) -> u64;
    /// Tokenize a text with the model's tokenizer.
    fn count_tokens(&self, text: &str) -> u64;
    /// Whether this model includes full dependency text (rather than terse
    /// summaries) as top-down context — the paper observes local models are
    /// much less conservative here (Sec. 8.4).
    fn verbose_context(&self) -> bool {
        false
    }
}

/// The translation techniques of paper Sec. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Technique {
    NonAgentic,
    TopDownAgentic,
    SweAgent,
}

impl Technique {
    pub const ALL: [Technique; 3] = [
        Technique::NonAgentic,
        Technique::TopDownAgentic,
        Technique::SweAgent,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Technique::NonAgentic => "Non-agentic",
            Technique::TopDownAgentic => "Top-down agentic",
            Technique::SweAgent => "SWE-agent",
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of a full repository translation attempt.
#[derive(Debug, Clone)]
pub struct TranslationRun {
    /// The assembled translated repository (`None` when the attempt could
    /// not complete — context window or budget).
    pub repo: Option<SourceRepo>,
    pub failure: Option<String>,
}

impl TranslationRun {
    pub fn completed(&self) -> bool {
        self.repo.is_some()
    }
}

/// Run `technique` on `job` with `backend`.
pub fn translate_with(
    technique: Technique,
    job: &TranslationJob,
    backend: &mut dyn Backend,
) -> TranslationRun {
    match technique {
        Technique::NonAgentic => non_agentic(job, backend),
        Technique::TopDownAgentic => top_down(job, backend),
        Technique::SweAgent => swe_agent(job, backend),
    }
}

/// Files a technique must translate (code + build files), in repo order.
fn translatable_files(repo: &SourceRepo) -> Vec<(&str, &str)> {
    repo.iter()
        .filter(|(p, _)| {
            let k = FileKind::of(p);
            k.is_code() || k.is_build_file()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Non-agentic (paper Sec. 3.1)
// ---------------------------------------------------------------------------

fn non_agentic(job: &TranslationJob, backend: &mut dyn Backend) -> TranslationRun {
    let mut out = SourceRepo::new();
    // Non-code, non-build files carry over verbatim.
    for (p, c) in job.source_repo.iter() {
        if FileKind::of(p) == FileKind::Other {
            out.add(p, c);
        }
    }
    for (path, contents) in translatable_files(job.source_repo) {
        let prompt = build_prompt(&PromptParts {
            job,
            target_path: path,
            full_repo_context: true,
            context_summary: None,
        });
        let file_job = FileJob {
            path: path.to_string(),
            contents: contents.to_string(),
            prompt,
            pair: job.pair,
            kind: FileKind::of(path),
            context_summary: None,
            chunk: None,
            binary: job.binary.to_string(),
        };
        match backend.translate(&file_job) {
            Ok(result) => {
                for (p, c) in result.files {
                    out.add(p, c);
                }
            }
            Err(e) => {
                return TranslationRun {
                    repo: None,
                    failure: Some(format!("{path}: {e}")),
                }
            }
        }
    }
    TranslationRun {
        repo: Some(out),
        failure: None,
    }
}

// ---------------------------------------------------------------------------
// Top-down agentic (paper Sec. 3.2, Fig. 1)
// ---------------------------------------------------------------------------

fn top_down(job: &TranslationJob, backend: &mut dyn Backend) -> TranslationRun {
    let mut out = SourceRepo::new();
    for (p, c) in job.source_repo.iter() {
        if FileKind::of(p) == FileKind::Other {
            out.add(p, c);
        }
    }
    // Dependency agent: include-based ordering (clang-equivalent static
    // analysis; no circular includes by construction).
    let order = dependency_order(job.source_repo);
    // Context agent state: summaries of already-translated files.
    let mut summaries: Vec<(String, String)> = Vec::new();

    for path in order {
        let contents = job.source_repo.get(&path).unwrap_or_default().to_string();
        let summary_text = context_for(job.source_repo, &summaries, backend);
        // Chunk agent: split oversized files at function boundaries.
        let chunks = chunk_file(&contents, backend.context_limit());
        let total = chunks.len();
        let mut translated_parts: Vec<(String, String)> = Vec::new();
        let mut file_summary = String::new();
        for (i, chunk) in chunks.into_iter().enumerate() {
            let prompt = build_prompt(&PromptParts {
                job,
                target_path: &path,
                full_repo_context: false,
                context_summary: Some(&summary_text),
            });
            let file_job = FileJob {
                path: path.clone(),
                contents: chunk,
                prompt,
                pair: job.pair,
                kind: FileKind::of(&path),
                context_summary: Some(summary_text.clone()),
                chunk: if total > 1 { Some((i, total)) } else { None },
                binary: job.binary.to_string(),
            };
            match backend.translate(&file_job) {
                Ok(result) => {
                    file_summary = result.summary.clone();
                    translated_parts.extend(result.files);
                }
                Err(e) => {
                    return TranslationRun {
                        repo: None,
                        failure: Some(format!("{path}: {e}")),
                    }
                }
            }
        }
        // Reassemble chunked output: concatenate parts that share a path.
        let mut merged: Vec<(String, String)> = Vec::new();
        for (p, c) in translated_parts {
            if let Some(last) = merged.iter_mut().find(|(mp, _)| *mp == p) {
                last.1.push_str(&c);
            } else {
                merged.push((p, c));
            }
        }
        for (p, c) in merged {
            out.add(p, c);
        }
        summaries.push((path.clone(), file_summary));
    }
    TranslationRun {
        repo: Some(out),
        failure: None,
    }
}

fn context_for(repo: &SourceRepo, summaries: &[(String, String)], backend: &dyn Backend) -> String {
    if summaries.is_empty() {
        return String::new();
    }
    if backend.verbose_context() {
        // Less conservative models re-include the full text of translated
        // dependencies (paper Sec. 8.4: local models are more expensive in
        // the top-down method for exactly this reason).
        summaries
            .iter()
            .map(|(p, s)| {
                let original = repo.get(p).unwrap_or_default();
                format!("=== {p} (translated; summary: {s})\n{original}\n")
            })
            .collect()
    } else {
        summaries
            .iter()
            .map(|(p, s)| format!("- {p}: {s}\n"))
            .collect()
    }
}

/// Split file text at function-ish boundaries (closing braces at column 0)
/// so each chunk fits in roughly a quarter of the context window.
fn chunk_file(text: &str, context_limit: u64) -> Vec<String> {
    let budget = (context_limit / 4).max(256) as usize * 4; // ≈ chars
    if text.len() <= budget {
        return vec![text.to_string()];
    }
    let mut chunks = Vec::new();
    let mut current = String::new();
    for line in text.lines() {
        current.push_str(line);
        current.push('\n');
        if current.len() >= budget && line == "}" {
            chunks.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

// ---------------------------------------------------------------------------
// SWE-agent (paper Sec. 3.3)
// ---------------------------------------------------------------------------

fn swe_agent(job: &TranslationJob, backend: &mut dyn Backend) -> TranslationRun {
    // The task is rephrased as a GitHub issue in a dedicated file, and the
    // repo gets a `.git` directory so SWE-agent recognises it.
    let issue = format!(
        "# Issue: translate {} from {} to {}\n\n{}\n\n{}\n",
        job.app_name, job.pair.from, job.pair.to, job.cli_spec, job.build_spec
    );
    let mut out = SourceRepo::new();
    out.add(".git/HEAD", "ref: refs/heads/main\n");
    out.add("ISSUE.md", issue.clone());
    for (p, c) in job.source_repo.iter() {
        if FileKind::of(p) == FileKind::Other {
            out.add(p, c);
        }
    }
    for (path, contents) in translatable_files(job.source_repo) {
        let prompt = format!("{issue}\nResolve the issue for file {path}:\n{contents}\n");
        let file_job = FileJob {
            path: path.to_string(),
            contents: contents.to_string(),
            prompt,
            pair: job.pair,
            kind: FileKind::of(path),
            context_summary: None,
            chunk: None,
            binary: job.binary.to_string(),
        };
        match backend.translate(&file_job) {
            Ok(result) => {
                for (p, c) in result.files {
                    out.add(p, c);
                }
            }
            Err(e) => {
                return TranslationRun {
                    repo: None,
                    failure: Some(format!("{path}: {e}")),
                }
            }
        }
    }
    // SWE-agent's editor normalises tabs to spaces, destroying Makefile
    // recipes (paper Sec. 3.3) — applied to every Makefile it wrote.
    let makefiles: Vec<String> = out
        .paths()
        .filter(|p| FileKind::of(p) == FileKind::Makefile)
        .map(str::to_string)
        .collect();
    for p in makefiles {
        let text = out.get(&p).unwrap().replace('\t', "    ");
        out.add(p, text);
    }
    TranslationRun {
        repo: Some(out),
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpile;

    /// A perfect backend: the oracle transpiler with no errors.
    struct OracleBackend {
        repo: SourceRepo,
        calls: usize,
    }

    impl Backend for OracleBackend {
        fn translate(&mut self, job: &FileJob) -> Result<BackendOutput, BackendError> {
            self.calls += 1;
            if job.kind.is_build_file() {
                let sources: Vec<String> = self
                    .repo
                    .iter()
                    .filter(|(p, _)| FileKind::of(p) == FileKind::Source)
                    .map(|(p, _)| transpile::rename_for_target(p, job.pair.to))
                    .collect();
                let (p, c) = transpile::transpile_build_file(job.pair, &job.binary, &sources);
                return Ok(BackendOutput {
                    files: vec![(p, c)],
                    summary: "translated build system".into(),
                });
            }
            let r = transpile::transpile_file(&self.repo, &job.path, &job.contents, job.pair);
            Ok(BackendOutput {
                files: vec![(r.path, r.text)],
                summary: format!("translated {}", job.path),
            })
        }

        fn context_limit(&self) -> u64 {
            1_000_000
        }

        fn count_tokens(&self, text: &str) -> u64 {
            (text.len() as u64).div_ceil(4)
        }
    }

    fn job<'a>(app: &'a pareval_apps::Application, pair: TranslationPair) -> TranslationJob<'a> {
        TranslationJob {
            app_name: &app.name,
            binary: &app.binary,
            source_repo: app.repo(pair.from).unwrap(),
            pair,
            cli_spec: &app.cli_spec,
            build_spec: &app.build_spec,
        }
    }

    #[test]
    fn non_agentic_translates_all_files() {
        let app = pareval_apps::by_name("microXOR").unwrap();
        let pair = TranslationPair::CUDA_TO_OMP_OFFLOAD;
        let mut backend = OracleBackend {
            repo: app.repo(pair.from).unwrap().clone(),
            calls: 0,
        };
        let run = translate_with(Technique::NonAgentic, &job(&app, pair), &mut backend);
        let repo = run.repo.expect("completes");
        assert!(repo.contains("src/main.cpp"));
        assert!(repo.contains("Makefile"));
        // 3 code files + 1 Makefile.
        assert_eq!(backend.calls, 4);
    }

    #[test]
    fn top_down_orders_headers_first() {
        let app = pareval_apps::by_name("microXOR").unwrap();
        let pair = TranslationPair::CUDA_TO_OMP_OFFLOAD;
        let order = dependency_order(app.repo(pair.from).unwrap());
        let h = order.iter().position(|p| p == "src/kernel.h").unwrap();
        let m = order.iter().position(|p| p == "src/main.cu").unwrap();
        let k = order.iter().position(|p| p == "src/kernel.cu").unwrap();
        let mk = order.iter().position(|p| p == "Makefile").unwrap();
        assert!(h < m && h < k, "header before its includers: {order:?}");
        assert!(mk > m && mk > k, "build file last: {order:?}");
    }

    #[test]
    fn top_down_produces_working_repo_with_oracle_backend() {
        let app = pareval_apps::by_name("nanoXOR").unwrap();
        let pair = TranslationPair::CUDA_TO_OMP_OFFLOAD;
        let mut backend = OracleBackend {
            repo: app.repo(pair.from).unwrap().clone(),
            calls: 0,
        };
        let run = translate_with(Technique::TopDownAgentic, &job(&app, pair), &mut backend);
        let repo = run.repo.expect("completes");
        let outcome =
            minihpc_build::build_repo(&repo, &minihpc_build::BuildRequest::new(&*app.binary));
        assert!(outcome.succeeded(), "{}", outcome.log.text());
    }

    #[test]
    fn swe_agent_breaks_makefiles() {
        let app = pareval_apps::by_name("nanoXOR").unwrap();
        // SWE-agent is evaluated on CUDA→Kokkos in the paper, but the tab
        // corruption applies to any Makefile it writes; test with offload
        // where the oracle emits a Makefile.
        let pair = TranslationPair::CUDA_TO_OMP_OFFLOAD;
        let mut backend = OracleBackend {
            repo: app.repo(pair.from).unwrap().clone(),
            calls: 0,
        };
        let run = translate_with(Technique::SweAgent, &job(&app, pair), &mut backend);
        let repo = run.repo.expect("completes");
        let mk = repo.get("Makefile").unwrap();
        assert!(!mk.contains('\t'), "tabs must be gone");
        let outcome =
            minihpc_build::build_repo(&repo, &minihpc_build::BuildRequest::new(&*app.binary));
        assert!(!outcome.succeeded());
        assert_eq!(
            outcome.first_error_category(),
            Some(minihpc_build::ErrorCategory::BuildFileSyntax)
        );
    }

    #[test]
    fn prompt_contains_file_tree_and_addenda() {
        let app = pareval_apps::by_name("nanoXOR").unwrap();
        let pair = TranslationPair::CUDA_TO_OMP_OFFLOAD;
        let j = job(&app, pair);
        let p = build_prompt(&PromptParts {
            job: &j,
            target_path: "src/main.cu",
            full_repo_context: true,
            context_summary: None,
        });
        assert!(p.contains("helpful coding assistant"));
        assert!(p.contains("+-- src/") || p.contains("|-- src/"), "{p}");
        assert!(p.contains("src/main.cu"));
        assert!(p.contains(&app.cli_spec), "main file gets the CLI addendum");
        let p2 = build_prompt(&PromptParts {
            job: &j,
            target_path: "Makefile",
            full_repo_context: true,
            context_summary: None,
        });
        assert!(p2.contains(&app.build_spec));
    }

    #[test]
    fn chunking_splits_large_files() {
        let big = "void f() {\nint x = 1;\n}\n".repeat(400);
        let chunks = chunk_file(&big, 1000);
        assert!(chunks.len() > 1);
        let rejoined: String = chunks.concat();
        assert_eq!(rejoined, big, "chunking must not lose text");
    }
}
