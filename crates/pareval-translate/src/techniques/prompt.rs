//! Prompt construction, following paper Listing 1.

use super::TranslationJob;
use minihpc_lang::repo::FileKind;

/// Inputs to [`build_prompt`].
pub struct PromptParts<'a> {
    pub job: &'a TranslationJob<'a>,
    pub target_path: &'a str,
    /// Non-agentic: include the full text of every (untranslated) file.
    pub full_repo_context: bool,
    /// Top-down: the context agent's summaries of translated dependencies.
    pub context_summary: Option<&'a str>,
}

/// Build the translation prompt for one file (paper Listing 1 structure:
/// system role, file tree, file contents, instruction, plus the CLI /
/// build-interface addenda for main and build files).
pub fn build_prompt(parts: &PromptParts) -> String {
    let job = parts.job;
    let mut p = String::with_capacity(4096);
    p.push_str(&format!(
        "You are a helpful coding assistant. You are helping a software developer translate \
         a codebase from the {} execution model to the {} execution model. Writing correct, \
         fast code is important, so take some time to think before responding to any query, \
         and ensure that the code you create is enclosed in triple backticks (```), as used \
         in the query below.\n\n",
        job.pair.from, job.pair.to
    ));
    p.push_str(&format!(
        "Below is a codebase written in the {} execution model. We are translating it to \
         the {} execution model. Here is the file tree of the entire repository:\n\n{}\n",
        job.pair.from,
        job.pair.to,
        job.source_repo.file_tree()
    ));
    if parts.full_repo_context {
        p.push_str("Here is the code for each file in the codebase:\n\n");
        for (path, contents) in job.source_repo.iter() {
            p.push_str(&format!("{path}\n```\n{contents}```\n\n"));
        }
    } else {
        // Top-down: only the target file plus dependency summaries.
        if let Some(contents) = job.source_repo.get(parts.target_path) {
            p.push_str(&format!(
                "Here is the file to translate:\n\n{}\n```\n{}```\n\n",
                parts.target_path, contents
            ));
        }
        if let Some(summary) = parts.context_summary {
            if !summary.is_empty() {
                p.push_str(&format!(
                    "Summaries of changes already made to this file's dependencies:\n{summary}\n"
                ));
            }
        }
    }
    p.push_str(&format!(
        "Translate the {} file to the {} execution model. Output the translated files in one \
         code block. Assume .cpp filenames whenever referring to other files as this will be \
         a C++ code.\n",
        parts.target_path, job.pair.to
    ));
    // Addenda (paper Sec. 3.1).
    let kind = FileKind::of(parts.target_path);
    let is_main = job
        .source_repo
        .get(parts.target_path)
        .is_some_and(|c| c.contains("int main("));
    if is_main {
        p.push_str(&format!("\nCommand-line interface: {}\n", job.cli_spec));
    }
    if kind.is_build_file() {
        p.push_str(&format!("\nBuild interface: {}\n", job.build_spec));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_lang::model::TranslationPair;
    use minihpc_lang::repo::SourceRepo;

    #[test]
    fn non_agentic_prompt_has_all_files() {
        let repo = SourceRepo::new()
            .with_file("Makefile", "app: main.cu\n\tnvcc -o app main.cu\n")
            .with_file("main.cu", "int main() { return 0; }\n");
        let job = TranslationJob {
            app_name: "x",
            binary: "app",
            source_repo: &repo,
            pair: TranslationPair::CUDA_TO_OMP_OFFLOAD,
            cli_spec: "no args",
            build_spec: "produce app",
        };
        let p = build_prompt(&PromptParts {
            job: &job,
            target_path: "main.cu",
            full_repo_context: true,
            context_summary: None,
        });
        assert!(p.contains("Makefile\n```"));
        assert!(p.contains("main.cu\n```"));
        assert!(p.contains("CUDA execution model"));
        assert!(p.contains("OpenMP Offload execution model"));
        assert!(p.contains("Command-line interface"));
    }

    #[test]
    fn top_down_prompt_is_smaller() {
        let repo = SourceRepo::new()
            .with_file("a.h", "void a(void);\n".repeat(50))
            .with_file("main.cu", "#include \"a.h\"\nint main() { return 0; }\n");
        let job = TranslationJob {
            app_name: "x",
            binary: "app",
            source_repo: &repo,
            pair: TranslationPair::CUDA_TO_OMP_OFFLOAD,
            cli_spec: "",
            build_spec: "",
        };
        let full = build_prompt(&PromptParts {
            job: &job,
            target_path: "main.cu",
            full_repo_context: true,
            context_summary: None,
        });
        let narrow = build_prompt(&PromptParts {
            job: &job,
            target_path: "main.cu",
            full_repo_context: false,
            context_summary: Some("- a.h: translated\n"),
        });
        assert!(narrow.len() < full.len());
        assert!(narrow.contains("Summaries of changes"));
    }
}
