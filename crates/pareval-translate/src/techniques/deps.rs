//! The dependency agent (paper Sec. 3.2): determines a translation order for
//! the repository's files from `#include` relationships, translating files
//! with no dependencies first. MiniHPC's structured include tokens play the
//! role of clang's dependency analysis; circular includes cannot occur.

use minihpc_lang::parser;
use minihpc_lang::repo::{FileKind, SourceRepo};
use std::collections::BTreeMap;

/// Topological order: dependencies (included headers) before dependents,
/// build files last, with deterministic (path-ordered) tie-breaking.
pub fn dependency_order(repo: &SourceRepo) -> Vec<String> {
    // Edges: file → its resolved local includes.
    let mut deps: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut code_files: Vec<String> = Vec::new();
    for (path, text) in repo.iter() {
        if !FileKind::of(path).is_code() {
            continue;
        }
        code_files.push(path.to_string());
        let includes = match parser::parse_file(text) {
            Ok(file) => file
                .local_includes()
                .iter()
                .filter_map(|inc| repo.resolve_include(path, inc))
                .map(str::to_string)
                .collect(),
            // "For non-C/C++ files or C/C++ files where clang fails, we use
            // an LLM to analyze the file contents": the deterministic
            // fallback scans for include-like lines textually.
            Err(_) => scan_includes_textually(repo, path, text),
        };
        deps.insert(path.to_string(), includes);
    }

    let mut order: Vec<String> = Vec::new();
    let mut done: BTreeMap<&str, bool> = BTreeMap::new();
    // Kahn-ish: repeatedly take the first file whose deps are all done.
    while order.len() < code_files.len() {
        let mut progressed = false;
        for f in &code_files {
            if done.get(f.as_str()).copied().unwrap_or(false) {
                continue;
            }
            let ready = deps[f]
                .iter()
                .all(|d| done.get(d.as_str()).copied().unwrap_or(false) || !deps.contains_key(d));
            if ready {
                done.insert(f, true);
                order.push(f.clone());
                progressed = true;
            }
        }
        if !progressed {
            // Defensive: a cycle (impossible with include guards) — append
            // the remainder in path order.
            for f in &code_files {
                if !done.get(f.as_str()).copied().unwrap_or(false) {
                    order.push(f.clone());
                }
            }
            break;
        }
    }
    // Build files last (they need the translated source list).
    for (path, _) in repo.iter() {
        if FileKind::of(path).is_build_file() {
            order.push(path.to_string());
        }
    }
    order
}

fn scan_includes_textually(repo: &SourceRepo, path: &str, text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|l| {
            let l = l.trim();
            let rest = l.strip_prefix("#include")?.trim();
            let inner = rest.strip_prefix('"')?.split('"').next()?;
            repo.resolve_include(path, inner).map(str::to_string)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain() {
        let repo = SourceRepo::new()
            .with_file("Makefile", "app: a.cpp\n\tg++ -o app a.cpp\n")
            .with_file("a.cpp", "#include \"b.h\"\nint main() { return 0; }\n")
            .with_file("b.h", "#include \"c.h\"\nvoid b(void);\n")
            .with_file("c.h", "void c(void);\n");
        let order = dependency_order(&repo);
        let pos = |p: &str| order.iter().position(|x| x == p).unwrap();
        assert!(pos("c.h") < pos("b.h"));
        assert!(pos("b.h") < pos("a.cpp"));
        assert_eq!(order.last().unwrap(), "Makefile");
    }

    #[test]
    fn unparseable_file_falls_back_to_text_scan() {
        let repo = SourceRepo::new()
            .with_file("broken.cpp", "#include \"util.h\"\nint main( {{{\n")
            .with_file("util.h", "void u(void);\n");
        let order = dependency_order(&repo);
        let pos = |p: &str| order.iter().position(|x| x == p).unwrap();
        assert!(pos("util.h") < pos("broken.cpp"));
    }

    #[test]
    fn independent_files_in_path_order() {
        let repo = SourceRepo::new()
            .with_file("z.cpp", "int z() { return 0; }\n")
            .with_file("a.cpp", "int a() { return 0; }\n");
        let order = dependency_order(&repo);
        assert_eq!(order, vec!["a.cpp", "z.cpp"]);
    }
}
