//! Oracle-transpiler integration tests: translate every application for
//! every applicable pair, build the result, run the developer tests, and
//! compare against the source model's expected output.
//!
//! Tasks the paper itself records as unsolved by everyone (XSBench and
//! SimpleMOC under CUDA→Kokkos) are asserted to *fail the same way*.

use minihpc_build::{build_repo, BuildRequest};
use minihpc_lang::model::{ExecutionModel, TranslationPair};
use minihpc_runtime::{run, RunConfig};
use pareval_apps::{by_name, Application};
use pareval_translate::transpile_repo;

/// Translate, build, and run all developer tests; returns Err(description)
/// on the first failure.
fn check_translation(app: &Application, pair: TranslationPair) -> Result<(), String> {
    let source = app
        .repo(pair.from)
        .ok_or_else(|| format!("{} lacks {} implementation", app.name, pair.from))?;
    let translated = transpile_repo(source, pair, &app.binary);
    let outcome = build_repo(&translated, &BuildRequest::new(&*app.binary));
    let exe = outcome
        .executable
        .ok_or_else(|| format!("build failed:\n{}", outcome.log.text()))?;
    for case in &app.tests {
        let expected = app.expected_output(case);
        let result = run(&exe, RunConfig::with_args(case.args.iter().cloned()));
        if let Some(e) = &result.error {
            return Err(format!("runtime error on {:?}: {e}", case.args));
        }
        if result.exit_code != 0 {
            return Err(format!("exit code {} on {:?}", result.exit_code, case.args));
        }
        if result.stdout != expected {
            return Err(format!(
                "output mismatch on {:?}:\n--- expected ---\n{expected}\n--- got ---\n{}",
                case.args, result.stdout
            ));
        }
        if pair.to.is_gpu() && !result.telemetry.ran_on_device() {
            return Err(format!(
                "translation to {} did not execute on the device",
                pair.to
            ));
        }
    }
    Ok(())
}

fn assert_ok(app_name: &str, pair: TranslationPair) {
    let app = by_name(app_name).unwrap();
    if let Err(e) = check_translation(&app, pair) {
        panic!("{app_name} {pair}: {e}");
    }
}

// --- CUDA → OpenMP offload --------------------------------------------------

#[test]
fn nanoxor_cuda_to_offload() {
    assert_ok("nanoXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
}

#[test]
fn microxorh_cuda_to_offload() {
    assert_ok("microXORh", TranslationPair::CUDA_TO_OMP_OFFLOAD);
}

#[test]
fn microxor_cuda_to_offload() {
    assert_ok("microXOR", TranslationPair::CUDA_TO_OMP_OFFLOAD);
}

#[test]
fn simplemoc_cuda_to_offload() {
    assert_ok("SimpleMOC-kernel", TranslationPair::CUDA_TO_OMP_OFFLOAD);
}

#[test]
fn xsbench_cuda_to_offload() {
    assert_ok("XSBench", TranslationPair::CUDA_TO_OMP_OFFLOAD);
}

#[test]
fn llmc_cuda_to_offload() {
    assert_ok("llm.c", TranslationPair::CUDA_TO_OMP_OFFLOAD);
}

// --- CUDA → Kokkos -----------------------------------------------------------

#[test]
fn nanoxor_cuda_to_kokkos() {
    assert_ok("nanoXOR", TranslationPair::CUDA_TO_KOKKOS);
}

#[test]
fn microxorh_cuda_to_kokkos() {
    assert_ok("microXORh", TranslationPair::CUDA_TO_KOKKOS);
}

#[test]
fn microxor_cuda_to_kokkos() {
    assert_ok("microXOR", TranslationPair::CUDA_TO_KOKKOS);
}

#[test]
fn llmc_cuda_to_kokkos() {
    assert_ok("llm.c", TranslationPair::CUDA_TO_KOKKOS);
}

#[test]
fn simplemoc_cuda_to_kokkos_fails_like_the_paper() {
    // Paper Fig. 2(c,d): no technique/LLM ever built or passed SimpleMOC
    // under CUDA→Kokkos (cuRAND state threading through Kokkos views).
    let app = by_name("SimpleMOC-kernel").unwrap();
    let result = check_translation(&app, TranslationPair::CUDA_TO_KOKKOS);
    assert!(result.is_err(), "expected the oracle to fail this task too");
}

#[test]
fn xsbench_cuda_to_kokkos_fails_like_the_paper() {
    // Paper Fig. 2(c,d): XSBench CUDA→Kokkos is zero everywhere (pointer
    // arithmetic on device helpers does not map onto views).
    let app = by_name("XSBench").unwrap();
    let result = check_translation(&app, TranslationPair::CUDA_TO_KOKKOS);
    assert!(result.is_err(), "expected the oracle to fail this task too");
}

// --- OpenMP threads → OpenMP offload -----------------------------------------

#[test]
fn nanoxor_threads_to_offload() {
    assert_ok("nanoXOR", TranslationPair::OMP_THREADS_TO_OFFLOAD);
}

#[test]
fn microxorh_threads_to_offload() {
    assert_ok("microXORh", TranslationPair::OMP_THREADS_TO_OFFLOAD);
}

#[test]
fn microxor_threads_to_offload() {
    assert_ok("microXOR", TranslationPair::OMP_THREADS_TO_OFFLOAD);
}

#[test]
fn xsbench_threads_to_offload() {
    assert_ok("XSBench", TranslationPair::OMP_THREADS_TO_OFFLOAD);
}

// --- structural checks --------------------------------------------------------

#[test]
fn translated_files_are_renamed_and_build_system_swapped() {
    let app = by_name("nanoXOR").unwrap();
    let cuda = app.repo(ExecutionModel::Cuda).unwrap();
    let kk = transpile_repo(cuda, TranslationPair::CUDA_TO_KOKKOS, &app.binary);
    assert!(kk.contains("CMakeLists.txt"));
    assert!(!kk.contains("Makefile"));
    assert!(kk.contains("src/main.cpp"));
    assert!(!kk.contains("src/main.cu"));
    let text = kk.get("src/main.cpp").unwrap();
    assert!(text.contains("Kokkos::initialize"));
    assert!(text.contains("Kokkos::parallel_for"));
    assert!(!text.contains("<<<"));

    let off = transpile_repo(cuda, TranslationPair::CUDA_TO_OMP_OFFLOAD, &app.binary);
    let mk = off.get("Makefile").unwrap();
    assert!(mk.contains("-fopenmp-targets"));
    let text = off.get("src/main.cpp").unwrap();
    assert!(text.contains("#pragma omp target teams distribute parallel for"));
    assert!(text.contains("collapse(2)"));
}

#[test]
fn curand_replaced_by_portable_rng_in_offload() {
    let app = by_name("SimpleMOC-kernel").unwrap();
    let cuda = app.repo(ExecutionModel::Cuda).unwrap();
    let off = transpile_repo(cuda, TranslationPair::CUDA_TO_OMP_OFFLOAD, &app.binary);
    let all: String = off.iter().map(|(_, t)| t).collect();
    assert!(!all.contains("curand_uniform"), "curand must be replaced");
    assert!(all.contains("rng_uniform"));
    assert!(all.contains("rng_mix"));
    // Exactly one definition of the helpers across the repo.
    let defs = off
        .iter()
        .filter(|(_, t)| t.contains("long rng_mix(long x) {"))
        .count();
    assert_eq!(defs, 1, "helpers must be defined exactly once");
}

#[test]
fn threads_to_offload_adds_map_clauses() {
    let app = by_name("nanoXOR").unwrap();
    let omp = app.repo(ExecutionModel::OmpThreads).unwrap();
    let off = transpile_repo(omp, TranslationPair::OMP_THREADS_TO_OFFLOAD, &app.binary);
    let text = off.get("src/main.cpp").unwrap();
    assert!(
        text.contains("omp target teams distribute parallel for"),
        "{text}"
    );
    assert!(text.contains("map("), "{text}");
}
