//! DBSCAN (Ester, Kriegel, Sander, Xu — KDD'96), the density-based
//! clustering algorithm the paper uses on log embeddings (Sec. 6.3): finds
//! clusters of arbitrary shape, is robust to noise, and has exactly two
//! hyperparameters (`eps`, `min_pts`).

/// Cluster assignment for one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    Noise,
    Cluster(usize),
}

/// Run DBSCAN over points with Euclidean distance.
pub fn dbscan(points: &[Vec<f64>], eps: f64, min_pts: usize) -> Vec<Assignment> {
    dbscan_counted(points, eps, min_pts).0
}

/// Work counters of one [`dbscan_counted`] run; the regression tests assert
/// the expansion stays linear without timing anything.
#[derive(Debug, Default, Clone, Copy)]
struct ExpandStats {
    /// O(n) neighborhood scans performed.
    neighbor_scans: usize,
    /// Total points pushed onto expansion queues.
    enqueued: usize,
}

/// The instrumented core: every point is scanned at most once and enqueued
/// at most once per cluster, so `neighbor_scans <= n` and `enqueued <= 2n`.
/// (The pre-fix expansion extended the queue with the *whole* neighborhood
/// of every core point — on a dense blob that is O(n) duplicates per point,
/// an O(n²) queue.)
fn dbscan_counted(points: &[Vec<f64>], eps: f64, min_pts: usize) -> (Vec<Assignment>, ExpandStats) {
    let n = points.len();
    let mut labels = vec![None::<Assignment>; n];
    let mut cluster = 0usize;
    let mut stats = ExpandStats::default();
    // One shared dedup buffer; each expansion resets only the bits it set,
    // so many small clusters don't degrade into O(n × clusters) zeroing.
    let mut queued = vec![false; n];

    let neighbors = |i: usize, stats: &mut ExpandStats| -> Vec<usize> {
        stats.neighbor_scans += 1;
        (0..n)
            .filter(|&j| euclidean(&points[i], &points[j]) <= eps)
            .collect()
    };

    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        let nbrs = neighbors(i, &mut stats);
        if nbrs.len() < min_pts {
            labels[i] = Some(Assignment::Noise);
            continue;
        }
        labels[i] = Some(Assignment::Cluster(cluster));
        // Expand the cluster from the seed set. `queued` dedups the queue:
        // a point enters at most once per cluster, and only while it can
        // still change state (unlabeled, or noise to relabel as border).
        for &q in &nbrs {
            queued[q] = true;
        }
        stats.enqueued += nbrs.len();
        let mut queue: Vec<usize> = nbrs;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            match labels[j] {
                Some(Assignment::Noise) => {
                    // Border point reached by density.
                    labels[j] = Some(Assignment::Cluster(cluster));
                }
                Some(_) => continue,
                None => {
                    labels[j] = Some(Assignment::Cluster(cluster));
                    let jn = neighbors(j, &mut stats);
                    if jn.len() >= min_pts {
                        for q in jn {
                            let expandable = matches!(labels[q], None | Some(Assignment::Noise));
                            if !queued[q] && expandable {
                                queued[q] = true;
                                stats.enqueued += 1;
                                queue.push(q);
                            }
                        }
                    }
                }
            }
        }
        // Every queued point was set above; clear exactly those bits.
        for q in queue {
            queued[q] = false;
        }
        cluster += 1;
    }
    (labels.into_iter().map(|l| l.unwrap()).collect(), stats)
}

/// Number of clusters in an assignment.
pub fn n_clusters(assignments: &[Assignment]) -> usize {
    assignments
        .iter()
        .filter_map(|a| match a {
            Assignment::Cluster(c) => Some(*c + 1),
            Assignment::Noise => None,
        })
        .max()
        .unwrap_or(0)
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 2.39996; // golden-angle spiral
                let r = spread * (i as f64 / n as f64);
                vec![center.0 + r * angle.cos(), center.1 + r * angle.sin()]
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob((0.0, 0.0), 20, 0.5);
        pts.extend(blob((10.0, 10.0), 20, 0.5));
        let labels = dbscan(&pts, 0.8, 4);
        assert_eq!(n_clusters(&labels), 2);
        // Every point of the first blob shares a cluster id.
        let first = labels[0];
        assert!(labels[..20].iter().all(|l| *l == first));
        assert!(labels[20..].iter().all(|l| *l != first));
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut pts = blob((0.0, 0.0), 10, 0.3);
        pts.push(vec![100.0, 100.0]);
        let labels = dbscan(&pts, 0.8, 4);
        assert_eq!(*labels.last().unwrap(), Assignment::Noise);
        assert_eq!(n_clusters(&labels), 1);
    }

    #[test]
    fn min_pts_threshold_matters() {
        let pts = blob((0.0, 0.0), 3, 0.1);
        // Only three points: below min_pts=5 everything is noise.
        let labels = dbscan(&pts, 1.0, 5);
        assert!(labels.iter().all(|l| *l == Assignment::Noise));
        // With min_pts=2 they form one cluster.
        let labels = dbscan(&pts, 1.0, 2);
        assert_eq!(n_clusters(&labels), 1);
    }

    #[test]
    fn empty_input() {
        let labels = dbscan(&[], 1.0, 3);
        assert!(labels.is_empty());
        assert_eq!(n_clusters(&labels), 0);
    }

    #[test]
    fn dense_blob_expansion_stays_linear() {
        // Regression: a single 1k-point blob where every point neighbors
        // every other. The unfiltered `queue.extend(jn)` enqueued the full
        // O(n) neighborhood of each core point — an O(n²) queue (~10⁶
        // entries here). With dedup, each point is enqueued at most once
        // per cluster and its neighborhood scanned at most once, which the
        // work counters assert without timing anything.
        let n = 1000;
        let pts = blob((0.0, 0.0), n, 0.4);
        let (labels, stats) = dbscan_counted(&pts, 1.0, 4);
        assert_eq!(n_clusters(&labels), 1);
        assert!(labels.iter().all(|l| matches!(l, Assignment::Cluster(0))));
        assert!(
            stats.enqueued <= 2 * n,
            "queue must stay linear: {} pushes for {n} points",
            stats.enqueued
        );
        assert!(
            stats.neighbor_scans <= n,
            "each point scanned at most once: {} scans",
            stats.neighbor_scans
        );
    }

    #[test]
    fn chain_connectivity() {
        // A chain of points each within eps of the next forms one cluster
        // (arbitrary shape, the DBSCAN selling point).
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
        let labels = dbscan(&pts, 0.6, 2);
        assert_eq!(n_clusters(&labels), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn labels_cover_all_points(
            xs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 0..40),
            eps in 0.1f64..2.0,
            min_pts in 2usize..6,
        ) {
            let pts: Vec<Vec<f64>> = xs.iter().map(|(x, y)| vec![*x, *y]).collect();
            let labels = dbscan(&pts, eps, min_pts);
            prop_assert_eq!(labels.len(), pts.len());
            // Cluster ids are contiguous from zero.
            let k = n_clusters(&labels);
            for l in &labels {
                if let Assignment::Cluster(c) = l {
                    prop_assert!(*c < k);
                }
            }
        }

        #[test]
        fn duplicate_points_share_fate(
            x in -5.0f64..5.0,
            y in -5.0f64..5.0,
            n in 2usize..8,
        ) {
            let pts: Vec<Vec<f64>> = (0..n).map(|_| vec![x, y]).collect();
            let labels = dbscan(&pts, 0.5, 2);
            prop_assert!(labels.windows(2).all(|w| w[0] == w[1]));
        }
    }
}
