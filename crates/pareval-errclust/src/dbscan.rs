//! DBSCAN (Ester, Kriegel, Sander, Xu — KDD'96), the density-based
//! clustering algorithm the paper uses on log embeddings (Sec. 6.3): finds
//! clusters of arbitrary shape, is robust to noise, and has exactly two
//! hyperparameters (`eps`, `min_pts`).

/// Cluster assignment for one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    Noise,
    Cluster(usize),
}

/// Run DBSCAN over points with Euclidean distance.
pub fn dbscan(points: &[Vec<f64>], eps: f64, min_pts: usize) -> Vec<Assignment> {
    let n = points.len();
    let mut labels = vec![None::<Assignment>; n];
    let mut cluster = 0usize;

    let neighbors = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| euclidean(&points[i], &points[j]) <= eps)
            .collect()
    };

    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        let nbrs = neighbors(i);
        if nbrs.len() < min_pts {
            labels[i] = Some(Assignment::Noise);
            continue;
        }
        labels[i] = Some(Assignment::Cluster(cluster));
        // Expand the cluster from the seed set.
        let mut queue: Vec<usize> = nbrs;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            match labels[j] {
                Some(Assignment::Noise) => {
                    // Border point reached by density.
                    labels[j] = Some(Assignment::Cluster(cluster));
                }
                Some(_) => continue,
                None => {
                    labels[j] = Some(Assignment::Cluster(cluster));
                    let jn = neighbors(j);
                    if jn.len() >= min_pts {
                        queue.extend(jn);
                    }
                }
            }
        }
        cluster += 1;
    }
    labels.into_iter().map(|l| l.unwrap()).collect()
}

/// Number of clusters in an assignment.
pub fn n_clusters(assignments: &[Assignment]) -> usize {
    assignments
        .iter()
        .filter_map(|a| match a {
            Assignment::Cluster(c) => Some(*c + 1),
            Assignment::Noise => None,
        })
        .max()
        .unwrap_or(0)
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 2.39996; // golden-angle spiral
                let r = spread * (i as f64 / n as f64);
                vec![center.0 + r * angle.cos(), center.1 + r * angle.sin()]
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob((0.0, 0.0), 20, 0.5);
        pts.extend(blob((10.0, 10.0), 20, 0.5));
        let labels = dbscan(&pts, 0.8, 4);
        assert_eq!(n_clusters(&labels), 2);
        // Every point of the first blob shares a cluster id.
        let first = labels[0];
        assert!(labels[..20].iter().all(|l| *l == first));
        assert!(labels[20..].iter().all(|l| *l != first));
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut pts = blob((0.0, 0.0), 10, 0.3);
        pts.push(vec![100.0, 100.0]);
        let labels = dbscan(&pts, 0.8, 4);
        assert_eq!(*labels.last().unwrap(), Assignment::Noise);
        assert_eq!(n_clusters(&labels), 1);
    }

    #[test]
    fn min_pts_threshold_matters() {
        let pts = blob((0.0, 0.0), 3, 0.1);
        // Only three points: below min_pts=5 everything is noise.
        let labels = dbscan(&pts, 1.0, 5);
        assert!(labels.iter().all(|l| *l == Assignment::Noise));
        // With min_pts=2 they form one cluster.
        let labels = dbscan(&pts, 1.0, 2);
        assert_eq!(n_clusters(&labels), 1);
    }

    #[test]
    fn empty_input() {
        let labels = dbscan(&[], 1.0, 3);
        assert!(labels.is_empty());
        assert_eq!(n_clusters(&labels), 0);
    }

    #[test]
    fn chain_connectivity() {
        // A chain of points each within eps of the next forms one cluster
        // (arbitrary shape, the DBSCAN selling point).
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
        let labels = dbscan(&pts, 0.6, 2);
        assert_eq!(n_clusters(&labels), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn labels_cover_all_points(
            xs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 0..40),
            eps in 0.1f64..2.0,
            min_pts in 2usize..6,
        ) {
            let pts: Vec<Vec<f64>> = xs.iter().map(|(x, y)| vec![*x, *y]).collect();
            let labels = dbscan(&pts, eps, min_pts);
            prop_assert_eq!(labels.len(), pts.len());
            // Cluster ids are contiguous from zero.
            let k = n_clusters(&labels);
            for l in &labels {
                if let Assignment::Cluster(c) = l {
                    prop_assert!(*c < k);
                }
            }
        }

        #[test]
        fn duplicate_points_share_fate(
            x in -5.0f64..5.0,
            y in -5.0f64..5.0,
            n in 2usize..8,
        ) {
            let pts: Vec<Vec<f64>> = (0..n).map(|_| vec![x, y]).collect();
            let labels = dbscan(&pts, 0.5, 2);
            prop_assert!(labels.windows(2).all(|w| w[0] == w[1]));
        }
    }
}
