//! A from-scratch word2vec (skip-gram with negative sampling, Mikolov et
//! al. 2013) sized for build/run-log corpora: the paper embeds each
//! translation's logs as a single vector (we mean-pool word vectors) before
//! clustering with DBSCAN (Sec. 6.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Training configuration.
#[derive(Debug, Clone)]
pub struct W2vConfig {
    pub dim: usize,
    pub window: usize,
    pub negatives: usize,
    pub epochs: usize,
    pub learning_rate: f64,
    pub seed: u64,
    /// Words rarer than this are dropped from the vocabulary.
    pub min_count: usize,
}

impl Default for W2vConfig {
    fn default() -> Self {
        W2vConfig {
            dim: 32,
            window: 4,
            negatives: 5,
            epochs: 8,
            learning_rate: 0.05,
            seed: 13,
            min_count: 1,
        }
    }
}

/// A trained embedding model.
pub struct Word2Vec {
    vocab: HashMap<String, usize>,
    vectors: Vec<Vec<f64>>,
    dim: usize,
}

/// Tokenize a log line corpus: lowercase, split on non-alphanumerics,
/// collapse numbers to `<num>` (so line/byte offsets don't fragment the
/// vocabulary).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
        if raw.is_empty() {
            continue;
        }
        if raw.chars().all(|c| c.is_ascii_digit()) {
            out.push("<num>".to_string());
        } else {
            out.push(raw.to_ascii_lowercase());
        }
    }
    out
}

impl Word2Vec {
    /// Train on a corpus of documents (one token stream per document).
    pub fn train(documents: &[Vec<String>], config: &W2vConfig) -> Word2Vec {
        // Vocabulary with counts.
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for doc in documents {
            for w in doc {
                *counts.entry(w.as_str()).or_default() += 1;
            }
        }
        let mut words: Vec<&str> = counts
            .iter()
            .filter(|(_, c)| **c >= config.min_count)
            .map(|(w, _)| *w)
            .collect();
        words.sort_unstable();
        let vocab: HashMap<String, usize> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.to_string(), i))
            .collect();
        let v = vocab.len().max(1);

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut input_vecs: Vec<Vec<f64>> = (0..v)
            .map(|_| {
                (0..config.dim)
                    .map(|_| (rng.gen::<f64>() - 0.5) / config.dim as f64)
                    .collect()
            })
            .collect();
        let mut output_vecs: Vec<Vec<f64>> = vec![vec![0.0; config.dim]; v];

        // Unigram table for negative sampling (counts^0.75), built in
        // sorted-word order so training is deterministic.
        let mut table: Vec<usize> = Vec::new();
        for w in &words {
            let idx = vocab[*w];
            let c = counts[w] as f64;
            let reps = (c.powf(0.75).ceil() as usize).max(1);
            table.extend(std::iter::repeat_n(idx, reps));
        }
        if table.is_empty() {
            table.push(0);
        }

        let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
        for epoch in 0..config.epochs {
            let lr = config.learning_rate * (1.0 - epoch as f64 / config.epochs as f64).max(0.1);
            for doc in documents {
                let ids: Vec<usize> = doc.iter().filter_map(|w| vocab.get(w).copied()).collect();
                for (pos, &center) in ids.iter().enumerate() {
                    let lo = pos.saturating_sub(config.window);
                    let hi = (pos + config.window + 1).min(ids.len());
                    for (ctx_pos, &context) in ids.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        // One positive + `negatives` negative updates.
                        let mut grad_center = vec![0.0; config.dim];
                        for neg in 0..=config.negatives {
                            let (target, label) = if neg == 0 {
                                (context, 1.0)
                            } else {
                                (table[rng.gen_range(0..table.len())], 0.0)
                            };
                            if label == 0.0 && target == context {
                                continue;
                            }
                            let dot: f64 = input_vecs[center]
                                .iter()
                                .zip(&output_vecs[target])
                                .map(|(a, b)| a * b)
                                .sum();
                            let g = (sigmoid(dot) - label) * lr;
                            for d in 0..config.dim {
                                grad_center[d] += g * output_vecs[target][d];
                                output_vecs[target][d] -= g * input_vecs[center][d];
                            }
                        }
                        for d in 0..config.dim {
                            input_vecs[center][d] -= grad_center[d];
                        }
                    }
                }
            }
        }
        Word2Vec {
            vocab,
            vectors: input_vecs,
            dim: config.dim,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn vector(&self, word: &str) -> Option<&[f64]> {
        self.vocab.get(word).map(|&i| self.vectors[i].as_slice())
    }

    /// Mean-pooled document embedding, L2-normalised (a single vector per
    /// translation log, as the paper does).
    pub fn embed_document(&self, tokens: &[String]) -> Vec<f64> {
        let mut acc = vec![0.0; self.dim];
        let mut n = 0.0;
        for t in tokens {
            if let Some(v) = self.vector(t) {
                for (a, b) in acc.iter_mut().zip(v) {
                    *a += b;
                }
                n += 1.0;
            }
        }
        if n > 0.0 {
            for a in &mut acc {
                *a /= n;
            }
        }
        let norm: f64 = acc.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for a in &mut acc {
                *a /= norm;
            }
        }
        acc
    }

    pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<String>> {
        let docs = [
            "error undefined reference to function link failed",
            "error undefined reference to symbol link failed",
            "error undefined reference to helper link failed",
            "makefile missing separator stop",
            "makefile missing separator line stop",
            "makefile recipe missing separator stop",
            "cmake unknown command parse error",
            "cmake find_package kokkos not found",
        ];
        docs.iter().map(|d| tokenize(d)).collect()
    }

    #[test]
    fn tokenizer_normalises() {
        assert_eq!(
            tokenize("Makefile:12: *** missing separator.  Stop."),
            vec!["makefile", "<num>", "missing", "separator", "stop"]
        );
    }

    #[test]
    fn similar_logs_embed_closer_than_dissimilar() {
        let docs = corpus();
        let model = Word2Vec::train(&docs, &W2vConfig::default());
        let linker1 = model.embed_document(&docs[0]);
        let linker2 = model.embed_document(&docs[1]);
        let makefile = model.embed_document(&docs[3]);
        let sim_same = Word2Vec::cosine(&linker1, &linker2);
        let sim_diff = Word2Vec::cosine(&linker1, &makefile);
        assert!(
            sim_same > sim_diff,
            "same-category logs must be closer: {sim_same} vs {sim_diff}"
        );
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let docs = corpus();
        let model = Word2Vec::train(&docs, &W2vConfig::default());
        let e = model.embed_document(&docs[0]);
        let norm: f64 = e.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic() {
        let docs = corpus();
        let a = Word2Vec::train(&docs, &W2vConfig::default());
        let b = Word2Vec::train(&docs, &W2vConfig::default());
        assert_eq!(a.vector("error"), b.vector("error"));
    }

    #[test]
    fn unknown_words_embed_to_zero() {
        let docs = corpus();
        let model = Word2Vec::train(&docs, &W2vConfig::default());
        let e = model.embed_document(&[String::from("zzzzz")]);
        assert!(e.iter().all(|x| *x == 0.0));
    }
}
