//! The semi-automated error-clustering pipeline of paper Sec. 6.3:
//! word2vec-embed each build/run log, cluster with DBSCAN, then apply the
//! "manual pass" — merging algorithmic clusters and assigning a category
//! label to each. The manual labelling step is simulated by majority vote
//! over the ground-truth categories the toolchain recorded, which is
//! exactly the information a human label-assigner reads off the logs.

use crate::dbscan::{dbscan, Assignment};
use crate::word2vec::{tokenize, W2vConfig, Word2Vec};
use minihpc_build::ErrorCategory;
use std::collections::HashMap;

/// One log to cluster: raw text plus the ground-truth category (used for
/// labelling and for validating the clustering).
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub text: String,
    pub truth: ErrorCategory,
}

/// A labelled cluster.
#[derive(Debug, Clone)]
pub struct LabelledCluster {
    pub label: ErrorCategory,
    /// Indices into the input logs.
    pub members: Vec<usize>,
}

/// Result of the full pipeline.
#[derive(Debug, Clone)]
pub struct ClusteringResult {
    pub clusters: Vec<LabelledCluster>,
    pub noise: Vec<usize>,
    /// Fraction of logs whose cluster label matches their ground truth
    /// (quality of the automated step before manual correction).
    pub purity: f64,
}

/// Hyperparameters (the paper tunes DBSCAN's two knobs by inspection).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub w2v: W2vConfig,
    pub eps: f64,
    pub min_pts: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            w2v: W2vConfig::default(),
            // Euclidean radius on unit-norm mean-pooled embeddings. Real
            // build logs share heavy boilerplate (`$ make`, the compiler
            // invocation line), which pulls all documents close together;
            // 0.2 (cosine similarity ≈ 0.98) still separates the error
            // categories where a looser radius merges them.
            eps: 0.2,
            min_pts: 3,
        }
    }
}

/// Run embed → cluster → merge/label.
pub fn cluster_logs(logs: &[LogEntry], config: &PipelineConfig) -> ClusteringResult {
    let docs: Vec<Vec<String>> = logs.iter().map(|l| tokenize(&l.text)).collect();
    let model = Word2Vec::train(&docs, &config.w2v);
    let points: Vec<Vec<f64>> = docs.iter().map(|d| model.embed_document(d)).collect();
    let assignments = dbscan(&points, config.eps, config.min_pts);

    let mut by_cluster: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut noise = Vec::new();
    for (i, a) in assignments.iter().enumerate() {
        match a {
            Assignment::Cluster(c) => by_cluster.entry(*c).or_default().push(i),
            Assignment::Noise => noise.push(i),
        }
    }

    // Label each cluster by majority ground truth (the manual pass), then
    // merge clusters that received the same label — the paper merges
    // "highly similar clusters" the algorithm split.
    let mut merged: HashMap<ErrorCategory, Vec<usize>> = HashMap::new();
    for (_, members) in by_cluster {
        let mut votes: HashMap<ErrorCategory, usize> = HashMap::new();
        for &i in &members {
            *votes.entry(logs[i].truth).or_default() += 1;
        }
        let label = votes
            .into_iter()
            .max_by_key(|(_, v)| *v)
            .map(|(c, _)| c)
            .unwrap_or(ErrorCategory::Other);
        merged.entry(label).or_default().extend(members);
    }
    // During the manual pass, noise points are reassigned to the cluster of
    // their label when one exists.
    let mut still_noise = Vec::new();
    for i in noise {
        match merged.get_mut(&logs[i].truth) {
            Some(members) => members.push(i),
            None => still_noise.push(i),
        }
    }

    let mut clusters: Vec<LabelledCluster> = merged
        .into_iter()
        .map(|(label, mut members)| {
            members.sort_unstable();
            LabelledCluster { label, members }
        })
        .collect();
    clusters.sort_by_key(|c| c.label);

    let correct: usize = clusters
        .iter()
        .flat_map(|c| c.members.iter().map(move |&i| (c.label, i)))
        .filter(|(label, i)| logs[*i].truth == *label)
        .count();
    let assigned: usize = clusters.iter().map(|c| c.members.len()).sum();
    let purity = if assigned == 0 {
        0.0
    } else {
        correct as f64 / assigned as f64
    };
    ClusteringResult {
        clusters,
        noise: still_noise,
        purity,
    }
}

/// Count logs per category out of a clustering (the Fig. 3 measurement).
pub fn category_counts(result: &ClusteringResult) -> HashMap<ErrorCategory, usize> {
    result
        .clusters
        .iter()
        .map(|c| (c.label, c.members.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_logs() -> Vec<LogEntry> {
        let mut logs = Vec::new();
        for i in 0..12 {
            logs.push(LogEntry {
                text: format!(
                    "app: undefined reference to `helper_{i}' collect2 error ld returned 1"
                ),
                truth: ErrorCategory::LinkerError,
            });
        }
        for i in 0..12 {
            logs.push(LogEntry {
                text: format!("Makefile:{i}: *** missing separator.  Stop."),
                truth: ErrorCategory::BuildFileSyntax,
            });
        }
        for i in 0..12 {
            logs.push(LogEntry {
                text: format!("main.cpp:{i}: error: use of undeclared identifier 'computeWith{i}'"),
                truth: ErrorCategory::UndeclaredIdentifier,
            });
        }
        logs
    }

    #[test]
    fn clean_categories_cluster_with_high_purity() {
        let logs = synthetic_logs();
        let result = cluster_logs(&logs, &PipelineConfig::default());
        assert!(result.purity > 0.9, "purity {}", result.purity);
        let counts = category_counts(&result);
        assert_eq!(counts.get(&ErrorCategory::LinkerError), Some(&12));
        assert_eq!(counts.get(&ErrorCategory::BuildFileSyntax), Some(&12));
        assert_eq!(counts.get(&ErrorCategory::UndeclaredIdentifier), Some(&12));
    }

    #[test]
    fn all_logs_accounted_for() {
        let logs = synthetic_logs();
        let result = cluster_logs(&logs, &PipelineConfig::default());
        let assigned: usize = result.clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(assigned + result.noise.len(), logs.len());
        // No index appears twice.
        let mut seen = std::collections::HashSet::new();
        for c in &result.clusters {
            for &i in &c.members {
                assert!(seen.insert(i), "duplicate assignment for {i}");
            }
        }
    }

    #[test]
    fn empty_corpus() {
        let result = cluster_logs(&[], &PipelineConfig::default());
        assert!(result.clusters.is_empty());
        assert!(result.noise.is_empty());
    }
}
