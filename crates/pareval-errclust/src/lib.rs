//! # pareval-errclust
//!
//! The paper's semi-automated error-classification pipeline (Sec. 6.3),
//! built from scratch: [`word2vec`] (skip-gram with negative sampling)
//! embeds each build/run log into a vector, [`dbscan()`] clusters the vectors,
//! and [`pipeline`] performs the merge-and-label pass that produces the
//! Fig. 3 category counts.

pub mod dbscan;
pub mod pipeline;
pub mod word2vec;

pub use dbscan::{dbscan, Assignment};
pub use pipeline::{category_counts, cluster_logs, ClusteringResult, LogEntry, PipelineConfig};
pub use word2vec::{tokenize, W2vConfig, Word2Vec};
