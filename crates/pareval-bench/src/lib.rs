//! Criterion benches live under benches/.
