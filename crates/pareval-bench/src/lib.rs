//! # pareval-bench
//!
//! Criterion benchmarks that regenerate the paper's figures and tables and
//! time one representative sample of each pipeline. The library crate is
//! intentionally empty — everything lives in the `benches/` targets:
//!
//! | Bench                 | Reproduces                             | Also times                          |
//! |-----------------------|----------------------------------------|-------------------------------------|
//! | `fig2_correctness`    | Fig. 2 (a–f) build@1 / pass@1 heatmaps | translate + build + test of nanoXOR |
//! | `fig3_error_clusters` | Fig. 3 error-category counts           | the word2vec + DBSCAN pipeline      |
//! | `fig4_tokens`         | Fig. 4 token-usage distributions       | one translation sample              |
//! | `fig5_ekappa`         | Fig. 5 expected token cost E\[kappa\]  | the E\[kappa\] estimator            |
//! | `table1_apps`         | Table 1 application statistics         | suite stats collection              |
//! | `table2_cost`         | Table 2 dollar / node-hour costs       | cost aggregation                    |
//!
//! Run them with `cargo bench` (or `cargo bench --bench fig2_correctness`
//! for one figure). `PAREVAL_SAMPLES` overrides the per-cell sample count
//! where a bench supports it. Figure regeneration drives the experiment
//! grid through `ParallelRunner::auto()`, which is byte-identical to the
//! serial runner for the same plan.
