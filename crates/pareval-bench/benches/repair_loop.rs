//! The repair-loop figure: build@1 / pass@1 as a function of repair round,
//! and the wall-time + quality cost of raising `repair_budget` from 0 to 3.
//!
//! Prints the per-round repair report, then benchmarks the same grid slice
//! at budgets 0, 1, and 3. Also emits a machine-readable
//! `BENCH_repair.json` (path override: `PAREVAL_BENCH_JSON`) with the
//! budget-0 vs budget-3 wall time and build@1/pass@1 deltas, so future
//! changes have a perf trajectory to compare against (`make bench-smoke`).

use criterion::{criterion_group, criterion_main, Criterion};
use minihpc_lang::model::TranslationPair;
use pareval_core::{
    report, EvalConfig, ExperimentPlan, ExperimentResults, Metric, Runner, ScheduledRunner, Scoring,
};
use pareval_translate::Technique;
use std::time::Instant;

fn grid(samples: u32, repair_budget: u32) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(samples)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic, Technique::TopDownAgentic])
        .apps(["nanoXOR", "microXORh", "microXOR"])
        .eval(EvalConfig {
            max_cases: 1,
            repair_budget,
            ..EvalConfig::default()
        })
        .build()
}

/// Mean build@1 / pass@1 / tokens over the feasible cells, Overall scoring.
fn aggregate(results: &ExperimentResults) -> (f64, f64, f64) {
    let (mut build, mut pass, mut tokens, mut n) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for cell in results.cells.values() {
        if cell.samples() == 0 {
            continue;
        }
        build += cell.rate(Metric::Build, Scoring::Overall, 1);
        pass += cell.rate(Metric::Pass, Scoring::Overall, 1);
        tokens += cell.tokens().mean().unwrap_or(0.0);
        n += 1.0;
    }
    (build / n.max(1.0), pass / n.max(1.0), tokens / n.max(1.0))
}

fn bench(c: &mut Criterion) {
    let samples = std::env::var("PAREVAL_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let runner = ScheduledRunner::auto();

    // The figure + JSON comparison: budget 0 vs 3, timed end to end.
    let start = Instant::now();
    let baseline = runner.run(&grid(samples, 0));
    let wall0 = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let repaired = runner.run(&grid(samples, 3));
    let wall3 = start.elapsed().as_secs_f64();
    println!("{}", report::repair_report(&repaired));

    let (b0, p0, t0) = aggregate(&baseline);
    let (b3, p3, t3) = aggregate(&repaired);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"repair_loop\",\n",
            "  \"samples_per_cell\": {samples},\n",
            "  \"budget_baseline\": 0,\n",
            "  \"budget_repaired\": 3,\n",
            "  \"wall_time_s\": {{\"budget0\": {w0:.4}, \"budget3\": {w3:.4}, \"delta\": {wd:.4}}},\n",
            "  \"build_at_1_overall\": {{\"budget0\": {b0:.4}, \"budget3\": {b3:.4}, \"delta\": {bd:.4}}},\n",
            "  \"pass_at_1_overall\": {{\"budget0\": {p0:.4}, \"budget3\": {p3:.4}, \"delta\": {pd:.4}}},\n",
            "  \"mean_tokens_per_sample\": {{\"budget0\": {t0:.1}, \"budget3\": {t3:.1}, \"delta\": {td:.1}}},\n",
            "  \"max_repair_round\": {r}\n",
            "}}\n",
        ),
        samples = samples,
        w0 = wall0,
        w3 = wall3,
        wd = wall3 - wall0,
        b0 = b0,
        b3 = b3,
        bd = b3 - b0,
        p0 = p0,
        p3 = p3,
        pd = p3 - p0,
        t0 = t0,
        t3 = t3,
        td = t3 - t0,
        r = repaired.max_repair_round(),
    );
    let path =
        std::env::var("PAREVAL_BENCH_JSON").unwrap_or_else(|_| "BENCH_repair.json".to_string());
    std::fs::write(&path, json).expect("write BENCH_repair.json");
    println!("wrote {path}");

    for budget in [0u32, 1, 3] {
        let plan = grid(samples, budget);
        c.bench_function(&format!("repair/grid_budget_{budget}"), |b| {
            b.iter(|| std::hint::black_box(runner.run(&plan)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench
}
criterion_main!(benches);
