//! Fig. 2 (a–f): build@1 and pass@1 heatmaps for the three programming-model
//! translation pairs, code-only and overall, per technique. Prints all six
//! regenerated subfigures, then benchmarks one representative sample
//! (translate + build + test of nanoXOR with o4-mini).

use criterion::{criterion_group, criterion_main, Criterion};
use minihpc_lang::model::TranslationPair;
use pareval_core::{report, EvalConfig, EvalPipeline, ExperimentPlan, Runner, ScheduledRunner};
use pareval_llm::{model_by_name, SimulatedBackend};
use pareval_translate::Technique;

fn bench(c: &mut Criterion) {
    let samples = std::env::var("PAREVAL_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let results = ScheduledRunner::auto().run(&ExperimentPlan::full(samples));
    for pair in TranslationPair::ALL {
        println!("{}", report::fig2(&results, pair, false));
        println!("{}", report::fig2(&results, pair, true));
    }

    let task = pareval_core::all_tasks()
        .into_iter()
        .find(|t| t.app.name == "nanoXOR" && t.pair == TranslationPair::CUDA_TO_OMP_OFFLOAD)
        .unwrap();
    let model = model_by_name("o4-mini").unwrap();
    // Uncached: this bench measures the cold translate + build + test path.
    let pipeline = EvalPipeline::new(EvalConfig {
        max_cases: 1,
        build_cache: false,
        ..EvalConfig::default()
    });
    let mut sample = 0u32;
    c.bench_function("fig2/one_translation_sample", |b| {
        b.iter(|| {
            sample = sample.wrapping_add(1);
            std::hint::black_box(pipeline.run_sample(
                &task,
                Technique::NonAgentic,
                &model,
                &SimulatedBackend,
                99,
                sample,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
