//! Fig. 5: expected token cost E_kappa (Eq. 2) per (technique, model, app),
//! aggregated over pairs with pass@1 > 0. Prints the regenerated table, then
//! benchmarks the estimator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use pareval_core::{report, ExperimentPlan, Runner, ScheduledRunner};
use pareval_metrics::{expected_token_cost, pass_at_k};

fn bench(c: &mut Criterion) {
    let results = ScheduledRunner::auto().run(&ExperimentPlan::full(5));
    println!("\n{}", report::fig5(&results));

    c.bench_function("fig5/ekappa_estimator", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in 1..50u64 {
                for correct in 0..=n {
                    let p = pass_at_k(n, correct, 1);
                    if let Some(e) = expected_token_cost(p, 10_000.0) {
                        acc += e;
                    }
                }
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
