//! The incremental re-evaluation bench: a repair-heavy grid replayed with
//! whole-repo outcome caching only vs. the file-granular unit tier on top
//! (`EvalConfig::file_cache`), timed serially so the A/B measures CPU work
//! saved, not scheduling luck.
//!
//! Repair rounds are where the file tier earns its keep: every revised
//! repo is an outcome-cache miss, but most of its files are unchanged —
//! whole-repo caching recompiles all of them, the unit tier recompiles
//! only the touched ones and re-runs link + test. The bench asserts the
//! two modes produce byte-identical results, then emits a
//! machine-readable `BENCH_incr.json` (path override: `PAREVAL_BENCH_JSON`)
//! that `make incr-smoke` gates on: file-granular must not regress below
//! whole-repo wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use minihpc_lang::model::TranslationPair;
use pareval_core::{
    CacheStats, EvalConfig, EvalPipeline, ExperimentPlan, NullSink, Runner, SerialRunner,
};
use pareval_translate::Technique;
use std::time::Instant;

const REPAIR_BUDGET: u32 = 3;

/// The repair-heavy grid: both techniques over the suite's multi-file
/// apps with a budget of 3, so failed builds go through up to three
/// revise-and-re-evaluate rounds — each one a whole-repo cache miss with
/// mostly unchanged files, exactly the shape file granularity pays on.
fn grid(samples: u32, file_cache: bool) -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(samples)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic, Technique::TopDownAgentic])
        .apps(["SimpleMOC-kernel", "XSBench", "llm.c"])
        .eval(EvalConfig {
            max_cases: 1,
            repair_budget: REPAIR_BUDGET,
            file_cache,
            ..EvalConfig::default()
        })
        .build()
}

/// One timed serial replay of the grid through a fresh pipeline; returns
/// the wall time, the results, and the cache counters.
fn timed_run(samples: u32, file_cache: bool) -> (f64, pareval_core::ExperimentResults, CacheStats) {
    let plan = grid(samples, file_cache);
    let pipeline = EvalPipeline::new(plan.eval().clone());
    let start = Instant::now();
    let results = SerialRunner.run_with(&plan, &pipeline, &NullSink);
    (
        start.elapsed().as_secs_f64(),
        results,
        pipeline.cache_stats(),
    )
}

fn bench(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let samples = std::env::var("PAREVAL_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if test_mode { 2 } else { 5 });
    let reps = if test_mode { 1 } else { 3 };

    // Best-of-N serial wall clock for each mode, interleaved so thermal /
    // scheduling drift hits both sides equally.
    let mut whole_wall = f64::INFINITY;
    let mut file_wall = f64::INFINITY;
    let mut file_stats = CacheStats::default();
    let mut baseline = None;
    for _ in 0..reps {
        let (w, whole_results, _) = timed_run(samples, false);
        whole_wall = whole_wall.min(w);
        let (f, file_results, stats) = timed_run(samples, true);
        file_wall = file_wall.min(f);
        file_stats = stats;
        assert_eq!(
            whole_results, file_results,
            "file-granular caching changed the results"
        );
        baseline.get_or_insert(whole_results);
    }
    let speedup = whole_wall / file_wall;
    println!(
        "incremental: budget-{REPAIR_BUDGET} grid, {samples} samples/cell: \
         whole-repo {:.1} ms, file-granular {:.1} ms ({speedup:.2}x, \
         {} unit hits / {} misses)",
        whole_wall * 1e3,
        file_wall * 1e3,
        file_stats.file_hits,
        file_stats.file_misses,
    );

    if !test_mode {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"incremental\",\n",
                "  \"measurement\": \"best-of-{reps} serial wall clock of the same repair-heavy ",
                "grid, outcome cache on in both modes; only the file-granular unit tier differs\",\n",
                "  \"grid\": \"CUDA->OMP-offload x (non-agentic, top-down) x ",
                "(SimpleMOC-kernel, XSBench, llm.c) x 4 models\",\n",
                "  \"samples_per_cell\": {samples},\n",
                "  \"repair_budget\": {budget},\n",
                "  \"whole_repo_wall_s\": {w:.4},\n",
                "  \"file_granular_wall_s\": {f:.4},\n",
                "  \"speedup\": {s:.4},\n",
                "  \"file_hits\": {hits},\n",
                "  \"file_misses\": {misses}\n",
                "}}\n",
            ),
            reps = reps,
            samples = samples,
            budget = REPAIR_BUDGET,
            w = whole_wall,
            f = file_wall,
            s = speedup,
            hits = file_stats.file_hits,
            misses = file_stats.file_misses,
        );
        let path =
            std::env::var("PAREVAL_BENCH_JSON").unwrap_or_else(|_| "BENCH_incr.json".to_string());
        std::fs::write(&path, json).expect("write BENCH_incr.json");
        println!("wrote {path}");
    }

    for (label, file_cache) in [("whole_repo", false), ("file_granular", true)] {
        let plan = grid(samples, file_cache);
        c.bench_function(
            &format!("incremental/{label}_budget_{REPAIR_BUDGET}"),
            |b| {
                b.iter(|| {
                    let pipeline = EvalPipeline::new(plan.eval().clone());
                    std::hint::black_box(SerialRunner.run_with(&plan, &pipeline, &NullSink))
                })
            },
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench
}
criterion_main!(benches);
