//! The generated-grid bench: `minihpc-gen` synthetic applications pushed
//! through the full harness at thousand-cell scale, comparing the two
//! collection modes the Collector offers:
//!
//! - **buffered** — every `SampleRecord` retained until the end of the run
//!   (the default; peak retained records = total samples),
//! - **streaming** — each record folded into per-cell sufficient
//!   statistics on arrival (peak retained records ≤ worker count).
//!
//! The headline run executes a ≥1000-cell threads→offload grid of ~100
//! generated apps through `ScheduledRunner` at 1/4/8 workers, streaming,
//! with a journal and a disk-backed build cache — and asserts all three
//! runs' results are byte-identical (the invariant `examples/stress_grid.rs`
//! gates on; `BENCH_gen.json` is that example's output). The criterion
//! functions then time streaming vs buffered collection on a smaller grid
//! so the comparison fits a bench iteration.
//!
//! Run with: `cargo bench --bench gen_grid` (add `-- --test` for the
//! quick single-pass mode).

use criterion::{criterion_group, criterion_main, Criterion};
use minihpc_gen::GenSpec;
use minihpc_lang::model::TranslationPair;
use pareval_core::{
    EvalConfig, EvalPipeline, ExperimentPlan, JournalSink, NullSink, Runner, ScheduledRunner,
};
use std::path::Path;
use std::time::Instant;

/// Thousand-cell scale for the headline determinism pass; the criterion
/// functions use a quarter of it so an iteration stays sub-second.
const HEADLINE_APPS: u64 = 100;
const CRITERION_APPS: u64 = 25;

fn specs(n: u64) -> Vec<GenSpec> {
    (0..n)
        .map(|i| GenSpec::new(0xBE7C_0000 + i).with_files(1 + (i as usize % 3)))
        .collect()
}

fn grid(specs: &[GenSpec], streaming: bool, disk_cache: Option<&Path>) -> ExperimentPlan {
    let generated = pareval_apps::suite_with_generated(specs)
        .into_iter()
        .filter(|app| app.gen_digest.is_some());
    ExperimentPlan::builder()
        .samples(1)
        .pairs([TranslationPair::OMP_THREADS_TO_OFFLOAD])
        .apps(["XSBench"])
        .extend_apps(generated)
        .eval(EvalConfig {
            max_cases: 1,
            disk_cache_dir: disk_cache.map(Path::to_path_buf),
            ..EvalConfig::default()
        })
        .streaming(streaming)
        .build()
}

fn bench(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let scratch =
        std::env::temp_dir().join(format!("pareval-gen-grid-bench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    // Headline pass: the full generated grid, streaming, journal + disk
    // cache, at 1/4/8 workers — byte-identical or the bench aborts.
    let headline = specs(if test_mode { 10 } else { HEADLINE_APPS });
    let mut baseline = None;
    for workers in [1usize, 4, 8] {
        let cache = scratch.join(format!("cache-{workers}"));
        let plan = grid(&headline, true, Some(&cache));
        let pipeline = EvalPipeline::new(plan.eval().clone());
        let journal = scratch.join(format!("run-{workers}.journal"));
        let sink = JournalSink::create(&journal, &plan).expect("create journal");
        let start = Instant::now();
        let results = ScheduledRunner::new(workers).run_with(&plan, &pipeline, &sink);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "gen_grid: {} cells, workers={workers}: {:.1} cells/s",
            plan.cells().len(),
            plan.cells().len() as f64 / secs
        );
        match &baseline {
            None => baseline = Some(results),
            Some(first) => assert_eq!(
                first, &results,
                "generated grid diverged at {workers} workers"
            ),
        }
    }
    drop(baseline);

    let bench_specs = specs(if test_mode { 5 } else { CRITERION_APPS });
    let streaming_plan = grid(&bench_specs, true, None);
    let buffered_plan = grid(&bench_specs, false, None);
    c.bench_function("gen/streaming_8w", |b| {
        b.iter(|| {
            let pipeline = EvalPipeline::new(streaming_plan.eval().clone());
            std::hint::black_box(ScheduledRunner::new(8).run_with(
                &streaming_plan,
                &pipeline,
                &NullSink,
            ))
        })
    });
    c.bench_function("gen/buffered_8w", |b| {
        b.iter(|| {
            let pipeline = EvalPipeline::new(buffered_plan.eval().clone());
            std::hint::black_box(ScheduledRunner::new(8).run_with(
                &buffered_plan,
                &pipeline,
                &NullSink,
            ))
        })
    });

    let _ = std::fs::remove_dir_all(&scratch);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench
}
criterion_main!(benches);
