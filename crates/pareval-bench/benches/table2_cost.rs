//! Table 2: estimated dollar / node-hour cost per successful translation
//! for the most token-economic commercial (o4-mini) and local (Llama-3.3)
//! models on the three XOR applications. Prints the regenerated table, then
//! benchmarks the cost computation.

use criterion::{criterion_group, criterion_main, Criterion};
use minihpc_lang::model::TranslationPair;
use pareval_core::{report, ExperimentPlan, Runner, ScheduledRunner};
use pareval_metrics::{dollar_cost, node_hours};

fn bench(c: &mut Criterion) {
    let plan = ExperimentPlan::builder()
        .samples(5)
        .pairs(TranslationPair::ALL)
        .apps(["nanoXOR", "microXORh", "microXOR"])
        .build();
    let results = ScheduledRunner::auto().run(&plan);
    println!("\n{}", report::table2(&results));

    c.bench_function("table2/cost_model", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for t in 0..1000u64 {
                total += dollar_cost(t * 100, t * 35, 1.1, 4.4);
                total += node_hours(t * 135, 187.0);
            }
            std::hint::black_box(total)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
