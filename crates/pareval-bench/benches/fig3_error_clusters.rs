//! Fig. 3: build-error category counts per model, recovered by the
//! word2vec + DBSCAN clustering pipeline from raw build logs and validated
//! against the toolchain's ground-truth categories. Prints both views, then
//! benchmarks the clustering step.

use criterion::{criterion_group, criterion_main, Criterion};
use pareval_core::{report, ExperimentPlan, Runner, ScheduledRunner};
use pareval_errclust::{cluster_logs, PipelineConfig};

fn bench(c: &mut Criterion) {
    let plan = ExperimentPlan::builder()
        .samples(4)
        .apps(["nanoXOR", "microXORh", "microXOR", "SimpleMOC-kernel"])
        .build();
    let results = ScheduledRunner::auto().run(&plan);
    println!("\n{}", report::fig3(&results));

    let logs: Vec<_> = results
        .error_logs_with_models()
        .into_iter()
        .map(|(_, l)| l)
        .collect();
    println!("Clustering {} failed-build logs...", logs.len());
    let clustering = cluster_logs(&logs, &PipelineConfig::default());
    println!(
        "Recovered {} clusters (+{} noise), purity {:.2}\n",
        clustering.clusters.len(),
        clustering.noise.len(),
        clustering.purity
    );

    c.bench_function("fig3/cluster_logs", |b| {
        b.iter(|| std::hint::black_box(cluster_logs(&logs, &PipelineConfig::default())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
