//! Fig. 4: total inference tokens per (technique, model, app), averaged over
//! pairs and generations. Prints the regenerated table, then benchmarks the
//! token-accounting path (one simulated translation with the heaviest
//! reasoning model).

use criterion::{criterion_group, criterion_main, Criterion};
use minihpc_lang::model::TranslationPair;
use pareval_core::{report, EvalConfig, EvalPipeline, ExperimentPlan, Runner, ScheduledRunner};
use pareval_llm::{model_by_name, SimulatedBackend};
use pareval_translate::Technique;

fn bench(c: &mut Criterion) {
    let results = ScheduledRunner::auto().run(&ExperimentPlan::full(4));
    println!("\n{}", report::fig4(&results));

    let task = pareval_core::all_tasks()
        .into_iter()
        .find(|t| t.app.name == "microXOR" && t.pair == TranslationPair::CUDA_TO_OMP_OFFLOAD)
        .unwrap();
    let model = model_by_name("qwq-32b-q8_0").unwrap();
    // Uncached: repeating one sample through the cache would time a lookup,
    // not the token-accounting path under measurement.
    let pipeline = EvalPipeline::new(EvalConfig {
        max_cases: 1,
        build_cache: false,
        ..EvalConfig::default()
    });
    c.bench_function("fig4/qwq_token_accounting", |b| {
        b.iter(|| {
            std::hint::black_box(pipeline.run_sample(
                &task,
                Technique::NonAgentic,
                &model,
                &SimulatedBackend,
                123,
                1,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
