//! Table 1: application statistics. Prints the regenerated table, then
//! benchmarks the statistics computation (parse + SLoC + cyclomatic
//! complexity over the whole suite).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("\n{}\n", pareval_core::report::table1());
    c.bench_function("table1/suite_statistics", |b| {
        b.iter(|| std::hint::black_box(pareval_core::report::table1()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
