//! The scheduler figure: static round-robin sharding vs the work-stealing
//! `ScheduledRunner` on a repair-heavy grid, at 1/2/4/8 workers.
//!
//! The grid is deliberately adversarial to static sharding, in a way real
//! grids are too: one sample per cell with four models means the model
//! axis *resonates* with a four-worker round-robin — every sample of the
//! same model lands on the same worker — and with `repair_budget = 3` and
//! the build cache off, per-sample cost is dominated by how many repair
//! re-evaluations that model's build failures trigger. Round-robin
//! serializes the repair-heavy model columns on whichever workers drew
//! them; work stealing redistributes them.
//!
//! **Measurement.** A scheduler comparison must not depend on how many
//! CPUs the CI box happens to have (on a single-core container, two
//! CPU-bound thread pools both degenerate to total-work wall time). So
//! the bench first measures every sample's real cost from serial runs
//! (via a `ProgressSink` that timestamps completions), then *replays*
//! those per-sample costs as `thread::sleep`s through the two scheduling
//! primitives (`round_robin_map` / `stealing_map`). Sleeping workers
//! overlap on any machine, so the replayed wall-clock is the schedule's
//! makespan — the quantity a scheduler actually controls. The real
//! (CPU-bound) grid is also timed with both runners for reference.
//!
//! `make sched-smoke` runs this bench and fails if the emitted
//! `BENCH_sched.json` (path override: `PAREVAL_BENCH_JSON`) is missing
//! keys or shows work stealing below round-robin at 4 workers.

use criterion::{criterion_group, criterion_main, Criterion};
use minihpc_lang::model::TranslationPair;
use pareval_core::sched::{round_robin_map, stealing_map};
use pareval_core::{
    EvalConfig, ExperimentPlan, ProgressSink, RoundRobinRunner, Runner, SampleRecord,
    ScheduledRunner, SerialRunner,
};
use pareval_llm::all_models;
use pareval_translate::Technique;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The repair-heavy grid: 4 models × 2 techniques × 3 XOR apps, one
/// sample per cell, repair budget 3, build cache off (each repair round
/// is a real rebuild, as on an uncached CI runner).
fn grid() -> ExperimentPlan {
    ExperimentPlan::builder()
        .samples(1)
        .pairs([TranslationPair::CUDA_TO_OMP_OFFLOAD])
        .techniques([Technique::NonAgentic, Technique::TopDownAgentic])
        .models(all_models().into_iter().filter(|m| m.name != "gpt-4o-mini"))
        .apps(["nanoXOR", "microXORh", "microXOR"])
        .eval(EvalConfig {
            max_cases: 1,
            repair_budget: 3,
            build_cache: false,
            ..EvalConfig::default()
        })
        .build()
}

/// Timestamps each completed sample. Under `SerialRunner` samples complete
/// in enumeration order on one thread, so consecutive timestamps yield
/// per-sample durations aligned with `plan.sample_specs()`.
struct TimingSink {
    last: Mutex<Instant>,
    durations: Mutex<Vec<Duration>>,
}

impl TimingSink {
    fn new() -> Self {
        TimingSink {
            last: Mutex::new(Instant::now()),
            durations: Mutex::new(Vec::new()),
        }
    }

    fn into_durations(self) -> Vec<Duration> {
        self.durations.into_inner().unwrap()
    }
}

impl ProgressSink for TimingSink {
    fn on_sample(&self, _record: &SampleRecord) {
        let now = Instant::now();
        let mut last = self.last.lock().unwrap();
        self.durations.lock().unwrap().push(now - *last);
        *last = now;
    }
}

/// Per-sample costs of `plan`, measured as the min over `reps` serial
/// runs, then rescaled so they sum to `total` (replay time is a budget
/// knob; makespan *ratios* are scale-invariant).
fn measure_costs(plan: &ExperimentPlan, reps: usize, total: Duration) -> Vec<Duration> {
    let mut best: Vec<Duration> = Vec::new();
    for _ in 0..reps.max(1) {
        let sink = TimingSink::new();
        *sink.last.lock().unwrap() = Instant::now();
        SerialRunner.run_with_sink(plan, &sink);
        let run = sink.into_durations();
        if best.is_empty() {
            best = run;
        } else {
            for (b, d) in best.iter_mut().zip(run) {
                *b = (*b).min(d);
            }
        }
    }
    let sum: Duration = best.iter().sum();
    let scale = total.as_secs_f64() / sum.as_secs_f64().max(1e-9);
    best.iter()
        .map(|d| Duration::from_secs_f64(d.as_secs_f64() * scale))
        .collect()
}

/// Replays `costs` as sleeps through static round-robin sharding and
/// returns the wall-clock makespan (min over `reps`).
fn replay_round_robin(costs: &[Duration], workers: usize, reps: usize) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            round_robin_map(costs, workers, |d| std::thread::sleep(*d));
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Replays `costs` through the work-stealing scheduler, seeding the
/// injector the way `ScheduledRunner` does (most expensive first — here
/// by the plan's `cost_hint`, *not* the measured cost, so the replay only
/// knows what the real scheduler would know). Returns (makespan, steals)
/// of the best rep.
fn replay_stealing(
    plan: &ExperimentPlan,
    costs: &[Duration],
    workers: usize,
    reps: usize,
) -> (f64, u64) {
    let mut items: Vec<(u32, Duration)> = plan
        .sample_specs()
        .iter()
        .zip(costs)
        .map(|(spec, d)| (spec.cost_hint, *d))
        .collect();
    items.sort_by_key(|item| std::cmp::Reverse(item.0));
    let mut best = (f64::INFINITY, 0u64);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (_, stats) = stealing_map(items.clone(), workers, |(_, d)| std::thread::sleep(*d));
        let wall = start.elapsed().as_secs_f64();
        if wall < best.0 {
            best = (wall, stats.steals);
        }
    }
    best
}

fn json_map(values: &[(usize, f64)]) -> String {
    let entries: Vec<String> = values
        .iter()
        .map(|(w, v)| format!("\"w{w}\": {v:.4}"))
        .collect();
    format!("{{{}}}", entries.join(", "))
}

fn bench(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let plan = grid();
    let specs = plan.total_samples();
    let reps = if test_mode { 1 } else { 3 };
    let replay_total = if test_mode {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(240)
    };

    let costs = measure_costs(&plan, reps, replay_total);
    let mut rr = Vec::new();
    let mut ws = Vec::new();
    let mut steals_at_4 = 0;
    println!("scheduler: {specs} samples, repair budget 3, cache off (sleep-replay makespans)");
    for workers in WORKER_COUNTS {
        let rr_wall = replay_round_robin(&costs, workers, reps);
        let (ws_wall, steals) = replay_stealing(&plan, &costs, workers, reps);
        if workers == 4 {
            steals_at_4 = steals;
        }
        println!(
            "  {workers} workers: round-robin {:.1} ms, work-stealing {:.1} ms ({:.2}x, {steals} steals)",
            rr_wall * 1e3,
            ws_wall * 1e3,
            rr_wall / ws_wall
        );
        rr.push((workers, rr_wall));
        ws.push((workers, ws_wall));
    }
    let speedup: Vec<(usize, f64)> = rr
        .iter()
        .zip(&ws)
        .map(|(&(w, r), &(_, s))| (w, r / s))
        .collect();
    let speedup_at_4 = speedup
        .iter()
        .find(|(w, _)| *w == 4)
        .map(|(_, s)| *s)
        .unwrap_or(0.0);

    // Reference: the real (CPU-bound) grid through both runners. On a
    // many-core box this tracks the replay ratio; on a single-core CI
    // container both collapse to total work.
    let start = Instant::now();
    std::hint::black_box(RoundRobinRunner::new(4).run(&plan));
    let real_rr = start.elapsed().as_secs_f64();
    let start = Instant::now();
    std::hint::black_box(ScheduledRunner::new(4).run(&plan));
    let real_ws = start.elapsed().as_secs_f64();

    if !test_mode {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"scheduler\",\n",
                "  \"measurement\": \"sleep-replay of per-sample costs measured from serial runs; ",
                "wall-clock = schedule makespan, independent of host CPU count\",\n",
                "  \"grid\": \"CUDA->OMP-offload x (non-agentic, top-down) x 3 XOR apps x 4 models\",\n",
                "  \"samples_per_cell\": 1,\n",
                "  \"grid_samples\": {specs},\n",
                "  \"repair_budget\": 3,\n",
                "  \"build_cache\": false,\n",
                "  \"workers\": [{workers}],\n",
                "  \"round_robin_wall_s\": {rr},\n",
                "  \"work_stealing_wall_s\": {ws},\n",
                "  \"speedup\": {speedup},\n",
                "  \"speedup_at_4\": {s4:.4},\n",
                "  \"steals_at_4\": {steals},\n",
                "  \"real_grid_wall_s\": {{\"round_robin\": {real_rr:.4}, \"work_stealing\": {real_ws:.4}}}\n",
                "}}\n",
            ),
            specs = specs,
            workers = WORKER_COUNTS.map(|w| w.to_string()).join(", "),
            rr = json_map(&rr),
            ws = json_map(&ws),
            speedup = json_map(&speedup),
            s4 = speedup_at_4,
            steals = steals_at_4,
            real_rr = real_rr,
            real_ws = real_ws,
        );
        let path =
            std::env::var("PAREVAL_BENCH_JSON").unwrap_or_else(|_| "BENCH_sched.json".to_string());
        std::fs::write(&path, json).expect("write BENCH_sched.json");
        println!("wrote {path}");
    }

    c.bench_function("sched/round_robin_4w", |b| {
        b.iter(|| std::hint::black_box(RoundRobinRunner::new(4).run(&plan)))
    });
    c.bench_function("sched/work_stealing_4w", |b| {
        b.iter(|| std::hint::black_box(ScheduledRunner::new(4).run(&plan)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench
}
criterion_main!(benches);
