//! # pareval-metrics
//!
//! Correctness and token-economy metrics for repo-level translation
//! (paper Sec. 6): the unbiased pass@k estimator (Eq. 1), its build@k
//! variant, the expected token cost E_kappa (Eq. 2), and the dollar /
//! node-hour cost estimates of Table 2.

use std::fmt;

/// Unbiased pass@k estimator for one task (paper Eq. 1, from Chen et al.):
/// `1 - C(n - c, k) / C(n, k)` with `n` samples of which `c` are correct.
///
/// Computed multiplicatively to avoid overflowing factorials.
///
/// # Edge semantics: `k > n`
///
/// The estimator is undefined for `k > n` (it would need more samples than
/// were drawn). This implementation **saturates** instead of erroring: any
/// k-draw from fewer than k samples must repeat one, so the draw contains
/// a success exactly when `c > 0` — the result is `1.0` if `c > 0`, else
/// `0.0`. Callers that reach this edge through the public
/// `CellResult::rate` path in `pareval-core` get the same documented
/// semantics; a shared property test on both sides
/// (`saturates_above_n_iff_any_success` here, `rate_agrees_with_pass_at_k`
/// there) pins the agreement.
pub fn pass_at_k(n: u64, c: u64, k: u64) -> f64 {
    assert!(c <= n, "correct samples cannot exceed total samples");
    if k > n {
        // Not estimable without more samples; saturate (any k > n - c draws
        // must include a correct one).
        return if c > 0 { 1.0 } else { 0.0 };
    }
    if n.saturating_sub(c) < k {
        return 1.0;
    }
    // prod over the complementary draws.
    let mut prob_none = 1.0f64;
    for i in (n - c + 1)..=n {
        prob_none *= 1.0 - (k as f64) / (i as f64);
    }
    1.0 - prob_none
}

/// build@k is pass@k with buildable samples in place of correct ones
/// (paper Sec. 6.1). Provided as an alias for call-site clarity.
pub fn build_at_k(n: u64, buildable: u64, k: u64) -> f64 {
    pass_at_k(n, buildable, k)
}

/// race_free@k is pass@k with race-free samples in place of correct ones:
/// a sample counts when it built *and* the static analyzer reported no
/// error-severity finding. Provided as an alias for call-site clarity.
pub fn race_free_at_k(n: u64, race_free: u64, k: u64) -> f64 {
    pass_at_k(n, race_free, k)
}

/// Mean number of repair rounds spent reaching a success state, over the
/// samples that reached it. Each entry is the final round index of one
/// successful sample (0 = succeeded without repair). `None` when no sample
/// succeeded — a mean over nothing would hide total failure as 0.0.
///
/// This is the guided-vs-blind repair benchmark's second axis: two
/// configurations can both end race-free while one spends strictly fewer
/// rounds (and therefore tokens) getting there.
pub fn mean_rounds_to_success(final_rounds: &[u32]) -> Option<f64> {
    if final_rounds.is_empty() {
        return None;
    }
    Some(final_rounds.iter().map(|&r| f64::from(r)).sum::<f64>() / final_rounds.len() as f64)
}

/// Average of a per-task metric over a task set (the paper reports both the
/// per-task values and this average).
pub fn average(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Expected token cost E_kappa (paper Eq. 2): the expected number of
/// generations to a correct translation (1 / pass@1) times the average
/// token cost per generation. `None` when pass@1 is zero (the paper
/// aggregates only over cells with pass@1 > 0).
pub fn expected_token_cost(pass_at_1: f64, avg_tokens_per_generation: f64) -> Option<f64> {
    if pass_at_1 <= 0.0 {
        return None;
    }
    Some(avg_tokens_per_generation / pass_at_1)
}

/// Cost of a token count at API prices (Table 2, commercial models).
/// Prices are $ per million tokens.
pub fn dollar_cost(
    input_tokens: u64,
    output_tokens: u64,
    price_in_per_mtok: f64,
    price_out_per_mtok: f64,
) -> f64 {
    (input_tokens as f64) * price_in_per_mtok / 1e6
        + (output_tokens as f64) * price_out_per_mtok / 1e6
}

/// Cost of a token count in node-hours at an observed generation throughput
/// (Table 2, locally hosted models; the paper measured 187 tokens/second on
/// one Delta node).
pub fn node_hours(total_tokens: u64, tokens_per_second: f64) -> f64 {
    if tokens_per_second <= 0.0 {
        return 0.0;
    }
    (total_tokens as f64) / tokens_per_second / 3600.0
}

/// A (mean, count) accumulator for per-cell token averages.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanAccumulator {
    sum: f64,
    n: u64,
}

impl MeanAccumulator {
    /// Reconstitute an accumulator from pre-aggregated sufficient
    /// statistics (streaming collection folds samples into `(sum, n)`
    /// pairs; integer-valued sums below 2^53 reconstitute exactly).
    pub fn from_sum_count(sum: f64, n: u64) -> Self {
        MeanAccumulator { sum, n }
    }

    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    pub fn count(&self) -> u64 {
        self.n
    }
}

impl fmt::Display for MeanAccumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(f, "{m:.1}"),
            None => write!(f, "-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rounds_distinguishes_no_success_from_free_success() {
        assert_eq!(mean_rounds_to_success(&[]), None);
        assert_eq!(mean_rounds_to_success(&[0, 0]), Some(0.0));
        assert_eq!(mean_rounds_to_success(&[1, 3]), Some(2.0));
    }

    #[test]
    fn pass_at_1_is_fraction() {
        assert!((pass_at_k(25, 5, 1) - 0.2).abs() < 1e-12);
        assert_eq!(pass_at_k(10, 0, 1), 0.0);
        assert_eq!(pass_at_k(10, 10, 1), 1.0);
    }

    #[test]
    fn pass_at_k_hand_computed() {
        // n=5, c=2, k=3: 1 - C(3,3)/C(5,3) = 1 - 1/10 = 0.9.
        assert!((pass_at_k(5, 2, 3) - 0.9).abs() < 1e-12);
        // n=4, c=1, k=2: 1 - C(3,2)/C(4,2) = 1 - 3/6 = 0.5.
        assert!((pass_at_k(4, 1, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pass_at_k_monotone_in_k_and_c() {
        for c in 0..=10u64 {
            let mut prev = 0.0;
            for k in 1..=10u64 {
                let v = pass_at_k(10, c, k);
                assert!(v + 1e-12 >= prev, "not monotone in k");
                prev = v;
            }
        }
        for k in 1..=10u64 {
            let mut prev = 0.0;
            for c in 0..=10u64 {
                let v = pass_at_k(10, c, k);
                assert!(v + 1e-12 >= prev, "not monotone in c");
                prev = v;
            }
        }
    }

    #[test]
    fn all_incorrect_saturates_when_k_exceeds_failures() {
        assert_eq!(pass_at_k(5, 3, 3), 1.0); // only 2 failures, k=3 must hit
    }

    #[test]
    fn k_above_n_saturates_not_errors() {
        // The documented edge: k > n is not estimable; saturate on c > 0.
        assert_eq!(pass_at_k(3, 1, 4), 1.0);
        assert_eq!(pass_at_k(3, 3, 100), 1.0);
        assert_eq!(pass_at_k(3, 0, 4), 0.0);
        assert_eq!(pass_at_k(0, 0, 1), 0.0); // no samples at all
    }

    #[test]
    fn race_free_at_k_is_pass_at_k_over_race_free_counts() {
        assert_eq!(race_free_at_k(10, 3, 1), pass_at_k(10, 3, 1));
        assert_eq!(race_free_at_k(4, 0, 2), 0.0);
        assert_eq!(race_free_at_k(4, 4, 2), 1.0);
    }

    #[test]
    fn ekappa_matches_paper_semantics() {
        assert_eq!(expected_token_cost(0.5, 10_000.0), Some(20_000.0));
        assert_eq!(expected_token_cost(0.0, 10_000.0), None);
        assert_eq!(expected_token_cost(1.0, 123.0), Some(123.0));
    }

    #[test]
    fn table2_style_costs() {
        // o4-mini pricing: $1.1/M in, $4.4/M out.
        let d = dollar_cost(10_000, 5_000, 1.1, 4.4);
        assert!((d - (0.011 + 0.022)).abs() < 1e-9);
        // 187 tok/s → one node-hour per 673200 tokens.
        let nh = node_hours(673_200, 187.0);
        assert!((nh - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_accumulator() {
        let mut m = MeanAccumulator::default();
        assert_eq!(m.mean(), None);
        m.add(2.0);
        m.add(4.0);
        assert_eq!(m.mean(), Some(3.0));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn average_of_tasks() {
        assert!((average(&[0.2, 0.4]) - 0.3).abs() < 1e-12);
        assert_eq!(average(&[]), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn pass_at_k_in_unit_interval(n in 1u64..60, c in 0u64..60, k in 1u64..60) {
            let c = c.min(n);
            let v = pass_at_k(n, c, k);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn pass_at_n_is_certain_iff_any_correct(n in 1u64..40, c in 0u64..40) {
            let c = c.min(n);
            let v = pass_at_k(n, c, n);
            if c > 0 {
                prop_assert!((v - 1.0).abs() < 1e-9);
            } else {
                prop_assert_eq!(v, 0.0);
            }
        }

        /// The documented k > n edge: saturate to 1 iff any sample
        /// succeeded. `CellResult::rate` pins the same property from the
        /// harness side (`rate_agrees_with_pass_at_k` in pareval-core).
        #[test]
        fn saturates_above_n_iff_any_success(n in 0u64..40, c in 0u64..40, extra in 1u64..20) {
            let c = c.min(n);
            let v = pass_at_k(n, c, n + extra);
            prop_assert_eq!(v, if c > 0 { 1.0 } else { 0.0 });
        }

        #[test]
        fn ekappa_is_at_least_per_generation_cost(p in 0.01f64..1.0, t in 1.0f64..1e6) {
            let e = expected_token_cost(p, t).unwrap();
            prop_assert!(e >= t - 1e-9);
        }
    }
}
