//! Offline stand-in for the subset of the `criterion` bench-harness API this
//! workspace uses: [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (both the positional and
//! the `name = ...; config = ...; targets = ...` forms).
//!
//! Instead of criterion's statistical sampling, each benchmark runs
//! `sample_size` iterations, reports min/mean wall-clock time per iteration,
//! and honours the `--test` flag cargo passes during `cargo test` by
//! collapsing to a single iteration so test runs stay fast.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.samples.reserve(self.iterations as usize);
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// The benchmark driver: registers and immediately runs benchmarks.
pub struct Criterion {
    sample_size: u64,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--test` during `cargo test`;
        // a single iteration is enough to prove the bench still works.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark performs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs `f` with a [`Bencher`] and prints a one-line timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let iterations = if self.test_mode { 1 } else { self.sample_size };
        let mut b = Bencher {
            iterations,
            samples: Vec::new(),
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{id}: no samples recorded");
            return self;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{id}: {} iters, mean {:?}/iter, min {:?}/iter",
            b.samples.len(),
            mean,
            min
        );
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
