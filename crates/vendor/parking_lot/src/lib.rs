//! Offline stand-in for the subset of the `parking_lot` API this workspace
//! uses: [`Mutex`] and [`RwLock`] whose guard methods do not return
//! `Result`s. Backed by `std::sync`; lock poisoning is transparently
//! cleared, matching parking_lot's poison-free semantics.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-tolerant `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-tolerant `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}
