//! Offline stand-in for the subset of the `crossbeam-deque` API this
//! workspace uses: a per-worker [`Worker`] deque with [`Stealer`] handles
//! and a shared FIFO [`Injector`], all returning [`Steal`] verdicts.
//!
//! The real crate implements the Chase–Lev lock-free deque; this stand-in
//! keeps the exact same ends-and-ordering contract behind a plain mutex
//! (the workspace denies `unsafe_code`, and scheduler throughput here is
//! dominated by sample evaluation, not deque traffic):
//!
//! - a LIFO [`Worker`] pushes and pops at the *back* of its deque, while
//!   [`Stealer::steal`] takes from the *front* — thieves and the owner
//!   contend on opposite ends, and a thief always takes the oldest
//!   (coldest) item;
//! - the [`Injector`] is a FIFO queue: items are stolen in push order, so
//!   a cost-sorted seeding (longest-processing-time-first) is consumed in
//!   sorted order;
//! - [`Injector::steal_batch_and_pop`] moves a small batch into the
//!   destination worker so the thief's next few pops are lock-local, and
//!   arranges the batch so the worker pops it in injector (FIFO) order
//!   while stealers still take from the opposite end.
//!
//! Divergences from real `crossbeam-deque`, deliberate for an offline
//! vendored stub: [`Steal::Retry`] is never produced (mutex acquisition
//! cannot lose a race the way a CAS can — callers must still handle the
//! variant, and the scheduler in `pareval-core::sched` does), and the
//! batch size is a fixed small cap rather than half the queue.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Most items one [`Injector::steal_batch_and_pop`] moves to a worker
/// (beyond the one it returns). Small, so an unlucky early thief cannot
/// hoard the expensive head of a cost-sorted injector.
const BATCH: usize = 4;

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The source was observed empty.
    Empty,
    /// One item was stolen.
    Success(T),
    /// The attempt lost a race and should be retried (never produced by
    /// this lock-based stand-in; kept for API compatibility).
    Retry,
}

impl<T> Steal<T> {
    /// Did the attempt observe an empty source?
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Did the attempt return an item?
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// The stolen item, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(item) => Some(item),
            _ => None,
        }
    }
}

fn lock<T>(mutex: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    // A panicking scheduler worker poisons the lock while unwinding out of
    // the thread scope; the queue itself is never left mid-mutation, so
    // clearing the poison is safe and keeps sibling workers drainable.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A worker-owned deque. The owner pushes and pops LIFO at the back;
/// [`Stealer`]s created via [`Worker::stealer`] take FIFO from the front.
#[derive(Debug)]
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// A new empty deque whose owner operates in LIFO order (the only
    /// flavour this workspace uses; the hot end stays cache-warm).
    pub fn new_lifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes an item at the owner's (back) end.
    pub fn push(&self, item: T) {
        lock(&self.inner).push_back(item);
    }

    /// Pops the most recently pushed item (LIFO).
    pub fn pop(&self) -> Option<T> {
        lock(&self.inner).pop_back()
    }

    /// A handle that steals from the opposite (front) end of this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Items currently queued (racy under concurrent access, like the
    /// real crate's `len`).
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new_lifo()
    }
}

/// A handle for stealing from one [`Worker`]'s deque.
#[derive(Debug)]
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals the oldest item of the owner's deque (the end opposite to
    /// the owner's LIFO operations).
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(item) => Steal::Success(item),
            None => Steal::Empty,
        }
    }
}

/// A shared FIFO queue every worker can push to and steal from — the
/// global entry point of a work-stealing scheduler.
#[derive(Debug, Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues an item at the back (FIFO: stolen in push order).
    pub fn push(&self, item: T) {
        lock(&self.queue).push_back(item);
    }

    /// Steals the oldest item.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(item) => Steal::Success(item),
            None => Steal::Empty,
        }
    }

    /// Steals a small batch: returns the oldest item and moves up to
    /// `BATCH` (4) of its successors into `dest`, arranged so that
    /// `dest.pop()` yields them in injector order (while `dest`'s
    /// stealers take from the other end).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut queue = lock(&self.queue);
        let Some(first) = queue.pop_front() else {
            return Steal::Empty;
        };
        let take = queue.len().min(BATCH);
        // Publish the batch to `dest` *before* releasing the injector lock:
        // a sibling observing "injector empty and all deques empty" must be
        // able to conclude no work is in flight (its exit condition). The
        // nesting cannot deadlock — every code path acquires the injector
        // before a worker deque, never the reverse.
        let mut dest_queue = lock(&dest.inner);
        // dest.pop() takes the back, so push in reverse: the batch's first
        // item ends up at the back and pops first.
        for item in queue.drain(..take).rev() {
            dest_queue.push_back(item);
        }
        Steal::Success(first)
    }

    /// Items currently queued (racy under concurrent access).
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_and_stealer_takes_the_oldest() {
        let worker = Worker::new_lifo();
        let stealer = worker.stealer();
        worker.push(1);
        worker.push(2);
        worker.push(3);
        assert_eq!(stealer.steal(), Steal::Success(1), "thief takes oldest");
        assert_eq!(worker.pop(), Some(3), "owner pops newest");
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(worker.pop(), None);
        assert!(stealer.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let injector = Injector::new();
        for i in 0..4 {
            injector.push(i);
        }
        for i in 0..4 {
            assert_eq!(injector.steal(), Steal::Success(i));
        }
        assert!(injector.steal().is_empty());
    }

    #[test]
    fn batch_steal_preserves_injector_order_for_the_owner() {
        let injector = Injector::new();
        for i in 0..10 {
            injector.push(i);
        }
        let worker = Worker::new_lifo();
        assert_eq!(injector.steal_batch_and_pop(&worker), Steal::Success(0));
        assert_eq!(worker.len(), BATCH);
        assert_eq!(injector.len(), 10 - 1 - BATCH);
        // The owner drains the batch in the order it was injected.
        for i in 1..=BATCH {
            assert_eq!(worker.pop(), Some(i));
        }
        // The injector's remainder is still FIFO from where the batch ended.
        assert_eq!(injector.steal(), Steal::Success(BATCH + 1));
    }

    #[test]
    fn stealers_take_the_cold_end_of_a_batch() {
        let injector = Injector::new();
        for i in 0..6 {
            injector.push(i);
        }
        let worker = Worker::new_lifo();
        let stealer = worker.stealer();
        assert_eq!(injector.steal_batch_and_pop(&worker), Steal::Success(0));
        // Owner would pop 1 next; a thief takes from the other end (the
        // batch's newest item) without disturbing the owner's next pop.
        assert_eq!(stealer.steal(), Steal::Success(BATCH));
        assert_eq!(worker.pop(), Some(1));
    }

    #[test]
    fn concurrent_stealing_delivers_every_item_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};

        const ITEMS: u64 = 200;
        let injector = Injector::new();
        for i in 0..ITEMS {
            injector.push(i);
        }
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let local = Worker::new_lifo();
                    loop {
                        let item = match local.pop() {
                            Some(item) => item,
                            None => match injector.steal_batch_and_pop(&local) {
                                Steal::Success(item) => item,
                                Steal::Retry => continue,
                                Steal::Empty => break,
                            },
                        };
                        sum.fetch_add(item, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), ITEMS);
        assert_eq!(sum.load(Ordering::Relaxed), ITEMS * (ITEMS - 1) / 2);
    }
}
