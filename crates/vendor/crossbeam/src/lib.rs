//! Offline stand-in for the subset of the `crossbeam` API this workspace
//! uses: `crossbeam::thread::scope` with scoped `spawn`, and the
//! [`deque`] work-stealing primitives (`Worker`/`Stealer`/`Injector`)
//! backing `pareval-core::sched`. The thread scope is backed by
//! `std::thread::scope` (stable since Rust 1.63), so borrowed captures work
//! the same way.
//!
//! Divergence from real crossbeam: a panicking worker makes the enclosing
//! `std::thread::scope` panic during join rather than surfacing as the `Err`
//! arm, so the returned `Result` is always `Ok`. Callers here only `.expect`
//! the result, which behaves identically either way. See [`deque`] for the
//! deque stand-in's own divergences.

pub mod deque;

pub mod thread {
    use std::any::Any;

    /// Error type mirroring `std::thread::Result`'s payload.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives a unit placeholder
        /// where crossbeam passes a nested scope handle; every call site in
        /// this workspace ignores it (`|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Creates a scope in which borrowed data can be shared with spawned
    /// threads; all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
