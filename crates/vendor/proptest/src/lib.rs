//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`,
//! clonable [`strategy::BoxedStrategy`] values, range/tuple/[`strategy::Just`]
//! strategies, [`collection::vec`], and the [`proptest!`], [`prop_oneof!`],
//! [`prop_assert!`], [`prop_assert_eq!`] macros.
//!
//! Divergences from real proptest, deliberate for an offline vendored stub:
//! - **No shrinking.** A failing case reports its seed and value-free
//!   context; the deterministic per-case seeding makes failures replayable
//!   by rerunning the same test binary.
//! - **Deterministic seeds.** Case `i` of test `t` always sees the same
//!   random stream, so CI runs are reproducible by construction.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` test file expects in scope.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares strategy-driven tests.
///
/// Supports the block form used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strategy:expr),* $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed (seed {:#x}): {}",
                        case + 1,
                        runner.cases(),
                        stringify!($name),
                        runner.seed_for_case(case),
                        err,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

/// Chooses uniformly between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the enclosing proptest case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing proptest case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the enclosing proptest case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}
