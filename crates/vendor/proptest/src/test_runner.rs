//! The per-test driver: configuration, the deterministic case RNG, and the
//! error type `prop_assert!` returns.

use std::fmt;

/// How a proptest block is run. Only `cases` is configurable, mirroring the
/// `ProptestConfig::with_cases` calls in this workspace's suites.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property within a test case (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives one `#[test]` function: owns the config and derives a
/// deterministic seed per case from the fully-qualified test name.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Builds a runner for the test named `name` (used to derive seeds, so
    /// distinct tests explore distinct streams).
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test path gives a stable per-test base seed.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            config,
            base_seed: hash,
        }
    }

    /// Number of cases this runner will generate.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The seed used for case `case` — printed on failure so a run can be
    /// reproduced by inspection.
    pub fn seed_for_case(&self, case: u32) -> u64 {
        self.base_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A fresh RNG for case `case`.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::from_seed(self.seed_for_case(case))
    }
}

/// The value-generation RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below requires a non-zero bound");
        self.next_u64() % bound
    }
}
