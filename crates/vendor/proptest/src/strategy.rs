//! Value-generation strategies: the [`Strategy`] trait, its combinators,
//! and the primitive strategies (`Range`, tuples, [`Just`], [`any`]).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value` from an RNG.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into one that generates composite values.
    ///
    /// `depth` bounds the recursion; `_desired_size` and `_expected_branch`
    /// are accepted for signature compatibility but unused, because without
    /// value trees the depth bound alone keeps values small.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strategy = leaf.clone();
        for _ in 0..depth {
            // Each level can stop at a leaf or recurse, weighted toward
            // recursion so depth-`depth` structure actually appears.
            strategy =
                Union::weighted(vec![(1, leaf.clone()), (3, recurse(strategy).boxed())]).boxed();
        }
        strategy
    }

    /// Type-erases this strategy behind a clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used behind [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A clonable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between strategies of a common value type; backs the
/// `prop_oneof!` macro (uniform weights) and `prop_recursive` (biased).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice between `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Choice where each arm is picked proportionally to its weight.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "Union requires at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "Union requires a positive total weight");
        Self { arms, total_weight }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is always below the total weight")
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            /// Uniform draw from `[start, end)`; the range must be non-empty.
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.next_below(span);
                (self.start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    /// Uniform draw from `[start, end)`.
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
}

/// Strategy for "any value of `T`" — the target of the [`any`] function.
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-domain sampler, enabling `any::<T>()`.
pub trait ArbitrarySample: Sized {
    /// Draws an unconstrained value.
    fn sample(rng: &mut TestRng) -> Self;
}

impl ArbitrarySample for bool {
    fn sample(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl ArbitrarySample for $ty {
            fn sample(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

/// Generates any value of `T`, like proptest's `any::<T>()`.
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(0xD1CE)
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = rng();
        let strategy = -5i64..7;
        for _ in 0..500 {
            let v = strategy.generate(&mut rng);
            assert!((-5..7).contains(&v));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = rng();
        let strategy = Just(21u32).prop_map(|x| x * 2);
        assert_eq!(strategy.generate(&mut rng), 42);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = rng();
        let strategy = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn recursive_strategy_terminates_and_nests() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(n) => {
                    assert!((0..10).contains(n), "leaf out of range: {n}");
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strategy = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = rng();
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strategy.generate(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion never fired");
        assert!(max_depth <= 3, "depth bound violated: {max_depth}");
    }
}
