//! Offline stand-in for the subset of the `rand` API this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen` and `gen_range`.
//!
//! The generator is xorshift64* over a SplitMix64-conditioned seed — not
//! cryptographic, but deterministic per seed, which is all the simulated
//! LLM backend and the word2vec trainer need.

use std::ops::Range;

/// Types constructible from a stream of raw `u64`s (the stand-in for rand's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The raw generator interface.
pub trait RngCore {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a `usize` uniformly from `range` (which must be non-empty).
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xorshift64* with a
    /// SplitMix64-scrambled seed so nearby seeds produce unrelated streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 finalizer; also guarantees a non-zero state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self { state: z | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
