//! The three custom XOR micro-applications (paper Sec. 5.1): nanoXOR (one
//! source file), microXORh (kernel in a header — compile-time dependency),
//! microXOR (kernel in a second source file — link-time dependency).
//!
//! The kernel is the paper's four-point XOR stencil (Listing 2): a cell
//! becomes 1 iff exactly one of its von-Neumann neighbours is 1.

use crate::{gt_cmake_kokkos, gt_make_omp_offload, share, Application, TestCase};
use minihpc_lang::model::ExecutionModel;
use minihpc_lang::repo::SourceRepo;
use std::collections::BTreeMap;

const CLI_SPEC: &str = "The program must be invoked as `<binary> <N> <iterations>` \
where N is the grid edge length and iterations the number of stencil steps. \
It must print three lines: `grid <N> iterations <iterations>`, `live <count>`, \
and `weighted <sum>`.";

const BUILD_SPEC: &str = "The build must produce an executable named after the \
application in the repository root. For OpenMP offload use clang++ (LLVM 19) with \
-fopenmp -fopenmp-targets=nvptx64-nvidia-cuda targeting an NVIDIA A100 (sm_80); \
for Kokkos use CMake with find_package(Kokkos) against Kokkos 4.5.01.";

// -- shared source fragments -------------------------------------------------

/// CUDA kernel (verbatim structure of paper Listing 2, plus iteration driver).
const CUDA_KERNEL: &str = r#"__global__ void cellsXOR(const int* input, int* output, size_t N) {
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < N && j < N) {
        int count = 0;
        if (i > 0 && input[(i - 1) * N + j] == 1) count++;
        if (i < N - 1 && input[(i + 1) * N + j] == 1) count++;
        if (j > 0 && input[i * N + (j - 1)] == 1) count++;
        if (j < N - 1 && input[i * N + (j + 1)] == 1) count++;
        output[i * N + j] = (count == 1) ? 1 : 0;
    }
}
"#;

const OMP_KERNEL: &str = r#"void cellsXOR(const int* input, int* output, size_t N) {
    #pragma omp parallel for collapse(2)
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            int count = 0;
            if (i > 0 && input[(i - 1) * N + j] == 1) count++;
            if (i < N - 1 && input[(i + 1) * N + j] == 1) count++;
            if (j > 0 && input[i * N + (j - 1)] == 1) count++;
            if (j < N - 1 && input[i * N + (j + 1)] == 1) count++;
            output[i * N + j] = (count == 1) ? 1 : 0;
        }
    }
}
"#;

/// CUDA host driver body shared by the three variants; `RUN` is either a
/// direct launch (nano) or a call to the runXOR helper (micro*).
fn cuda_main(includes: &str, run_step: &str, inline_kernel: bool) -> String {
    let kernel = if inline_kernel { CUDA_KERNEL } else { "" };
    format!(
        r#"#include <cuda_runtime.h>
#include <stdio.h>
#include <stdlib.h>
{includes}
{kernel}
int main(int argc, char** argv) {{
    if (argc < 3) {{
        printf("usage: xor <N> <iterations>\n");
        return 1;
    }}
    int N = atoi(argv[1]);
    int iterations = atoi(argv[2]);
    int* h_grid = (int*)malloc(N * N * sizeof(int));
    for (int i = 0; i < N; i++) {{
        for (int j = 0; j < N; j++) {{
            h_grid[i * N + j] = ((i * j + i + j) % 3 == 0) ? 1 : 0;
        }}
    }}
    int* d_in;
    int* d_out;
    cudaMalloc(&d_in, N * N * sizeof(int));
    cudaMalloc(&d_out, N * N * sizeof(int));
    cudaMemcpy(d_in, h_grid, N * N * sizeof(int), cudaMemcpyHostToDevice);
    for (int t = 0; t < iterations; t++) {{
        {run_step}
        cudaDeviceSynchronize();
        int* tmp = d_in;
        d_in = d_out;
        d_out = tmp;
    }}
    cudaMemcpy(h_grid, d_in, N * N * sizeof(int), cudaMemcpyDeviceToHost);
    long live = 0;
    long weighted = 0;
    for (int k = 0; k < N * N; k++) {{
        live += h_grid[k];
        weighted += h_grid[k] * (k % 97);
    }}
    printf("grid %d iterations %d\n", N, iterations);
    printf("live %ld\n", live);
    printf("weighted %ld\n", weighted);
    cudaFree(d_in);
    cudaFree(d_out);
    free(h_grid);
    return 0;
}}
"#
    )
}

fn omp_main(includes: &str, run_step: &str, inline_kernel: bool) -> String {
    let kernel = if inline_kernel { OMP_KERNEL } else { "" };
    format!(
        r#"#include <stdio.h>
#include <stdlib.h>
#include <omp.h>
{includes}
{kernel}
int main(int argc, char** argv) {{
    if (argc < 3) {{
        printf("usage: xor <N> <iterations>\n");
        return 1;
    }}
    int N = atoi(argv[1]);
    int iterations = atoi(argv[2]);
    int* grid_in = (int*)malloc(N * N * sizeof(int));
    int* grid_out = (int*)malloc(N * N * sizeof(int));
    for (int i = 0; i < N; i++) {{
        for (int j = 0; j < N; j++) {{
            grid_in[i * N + j] = ((i * j + i + j) % 3 == 0) ? 1 : 0;
        }}
    }}
    for (int t = 0; t < iterations; t++) {{
        {run_step}
        int* tmp = grid_in;
        grid_in = grid_out;
        grid_out = tmp;
    }}
    long live = 0;
    long weighted = 0;
    for (int k = 0; k < N * N; k++) {{
        live += grid_in[k];
        weighted += grid_in[k] * (k % 97);
    }}
    printf("grid %d iterations %d\n", N, iterations);
    printf("live %ld\n", live);
    printf("weighted %ld\n", weighted);
    free(grid_in);
    free(grid_out);
    return 0;
}}
"#
    )
}

const CUDA_LAUNCH: &str = r#"dim3 block(16, 16);
        dim3 grid((N + 15) / 16, (N + 15) / 16);
        cellsXOR<<<grid, block>>>(d_in, d_out, N);"#;

fn cuda_makefile(binary: &str, sources: &[&str]) -> String {
    format!(
        "NVCC = nvcc\nNVCCFLAGS = -O2 -arch=sm_80\n\n{binary}: {srcs}\n\t$(NVCC) $(NVCCFLAGS) -o {binary} {srcs}\n\n.PHONY: clean\nclean:\n\trm -f {binary}\n",
        srcs = sources.join(" "),
    )
}

fn omp_makefile(binary: &str, sources: &[&str]) -> String {
    format!(
        "CXX = g++\nCXXFLAGS = -O2 -fopenmp\n\n{binary}: {srcs}\n\t$(CXX) $(CXXFLAGS) -o {binary} {srcs}\n\n.PHONY: clean\nclean:\n\trm -f {binary}\n",
        srcs = sources.join(" "),
    )
}

fn xor_tests() -> Vec<TestCase> {
    vec![
        TestCase::new(["16", "1"]),
        TestCase::new(["32", "3"]),
        TestCase::new(["8", "5"]),
    ]
}

fn xor_ground_truth(binary: &str, sources: &[&str]) -> BTreeMap<ExecutionModel, (String, String)> {
    let mut gt = BTreeMap::new();
    gt.insert(
        ExecutionModel::OmpOffload,
        ("Makefile".to_string(), gt_make_omp_offload(binary, sources)),
    );
    gt.insert(
        ExecutionModel::Kokkos,
        (
            "CMakeLists.txt".to_string(),
            gt_cmake_kokkos(binary, sources),
        ),
    );
    gt
}

// -- the three applications ---------------------------------------------------

/// nanoXOR: single source file (kernel + driver together).
pub fn nanoxor() -> Application {
    let mut repos = BTreeMap::new();
    repos.insert(
        ExecutionModel::Cuda,
        SourceRepo::new()
            .with_file("Makefile", cuda_makefile("nanoxor", &["src/main.cu"]))
            .with_file("src/main.cu", cuda_main("", CUDA_LAUNCH, true)),
    );
    repos.insert(
        ExecutionModel::OmpThreads,
        SourceRepo::new()
            .with_file("Makefile", omp_makefile("nanoxor", &["src/main.cpp"]))
            .with_file(
                "src/main.cpp",
                omp_main("", "cellsXOR(grid_in, grid_out, N);", true),
            ),
    );
    Application {
        name: "nanoXOR".into(),
        binary: "nanoxor".into(),
        repos: share(repos),
        tests: xor_tests(),
        cli_spec: CLI_SPEC.to_string(),
        build_spec: BUILD_SPEC.to_string(),
        ground_truth_build: xor_ground_truth("nanoxor", &["src/main.cpp"]),
        public_ports_exist: false,
        gen_digest: None,
    }
}

/// microXORh: the kernel lives in a header included by main (compile-time
/// dependency).
pub fn microxorh() -> Application {
    let cuda_header = format!(
        "{CUDA_KERNEL}\nvoid runXOR(const int* d_in, int* d_out, size_t N) {{\n    dim3 block(16, 16);\n    dim3 grid((N + 15) / 16, (N + 15) / 16);\n    cellsXOR<<<grid, block>>>(d_in, d_out, N);\n}}\n"
    );
    let omp_header = format!(
        "{OMP_KERNEL}\nvoid runXOR(const int* in, int* out, size_t N) {{\n    cellsXOR(in, out, N);\n}}\n"
    );
    let mut repos = BTreeMap::new();
    repos.insert(
        ExecutionModel::Cuda,
        SourceRepo::new()
            .with_file("Makefile", cuda_makefile("microxorh", &["src/main.cu"]))
            .with_file("src/kernel.h", cuda_header)
            .with_file(
                "src/main.cu",
                cuda_main("#include \"kernel.h\"", "runXOR(d_in, d_out, N);", false),
            ),
    );
    repos.insert(
        ExecutionModel::OmpThreads,
        SourceRepo::new()
            .with_file("Makefile", omp_makefile("microxorh", &["src/main.cpp"]))
            .with_file("src/kernel.h", omp_header)
            .with_file(
                "src/main.cpp",
                omp_main(
                    "#include \"kernel.h\"",
                    "runXOR(grid_in, grid_out, N);",
                    false,
                ),
            ),
    );
    Application {
        name: "microXORh".into(),
        binary: "microxorh".into(),
        repos: share(repos),
        tests: xor_tests(),
        cli_spec: CLI_SPEC.to_string(),
        build_spec: BUILD_SPEC.to_string(),
        ground_truth_build: xor_ground_truth("microxorh", &["src/main.cpp"]),
        public_ports_exist: false,
        gen_digest: None,
    }
}

/// microXOR: the kernel lives in its own source file (link-time dependency).
pub fn microxor() -> Application {
    let decl = "void runXOR(const int* in, int* out, size_t N);\n";
    let cuda_kernel_src = format!(
        "#include <cuda_runtime.h>\n#include \"kernel.h\"\n\n{CUDA_KERNEL}\nvoid runXOR(const int* in, int* out, size_t N) {{\n    dim3 block(16, 16);\n    dim3 grid((N + 15) / 16, (N + 15) / 16);\n    cellsXOR<<<grid, block>>>(in, out, N);\n}}\n"
    );
    let omp_kernel_src = format!(
        "#include <omp.h>\n#include \"kernel.h\"\n\n{}\nvoid runXOR(const int* in, int* out, size_t N) {{\n    cellsXORimpl(in, out, N);\n}}\n",
        OMP_KERNEL.replace("void cellsXOR(", "void cellsXORimpl(")
    );
    let mut repos = BTreeMap::new();
    repos.insert(
        ExecutionModel::Cuda,
        SourceRepo::new()
            .with_file(
                "Makefile",
                cuda_makefile("microxor", &["src/main.cu", "src/kernel.cu"]),
            )
            .with_file("src/kernel.h", decl)
            .with_file("src/kernel.cu", cuda_kernel_src)
            .with_file(
                "src/main.cu",
                cuda_main("#include \"kernel.h\"", "runXOR(d_in, d_out, N);", false),
            ),
    );
    repos.insert(
        ExecutionModel::OmpThreads,
        SourceRepo::new()
            .with_file(
                "Makefile",
                omp_makefile("microxor", &["src/main.cpp", "src/kernel.cpp"]),
            )
            .with_file("src/kernel.h", decl)
            .with_file("src/kernel.cpp", omp_kernel_src)
            .with_file(
                "src/main.cpp",
                omp_main(
                    "#include \"kernel.h\"",
                    "runXOR(grid_in, grid_out, N);",
                    false,
                ),
            ),
    );
    Application {
        name: "microXOR".into(),
        binary: "microxor".into(),
        repos: share(repos),
        tests: xor_tests(),
        cli_spec: CLI_SPEC.to_string(),
        build_spec: BUILD_SPEC.to_string(),
        ground_truth_build: xor_ground_truth("microxor", &["src/main.cpp", "src/kernel.cpp"]),
        public_ports_exist: false,
        gen_digest: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_build::{build_repo, BuildRequest};
    use minihpc_runtime::{run, RunConfig};

    fn run_model(
        app: &Application,
        model: ExecutionModel,
        args: &[&str],
    ) -> minihpc_runtime::RunResult {
        let repo = app.repo(model).unwrap();
        let out = build_repo(repo, &BuildRequest::new(&*app.binary));
        assert!(
            out.succeeded(),
            "{} {model} build failed:\n{}",
            app.name,
            out.log.text()
        );
        run(
            &out.executable.unwrap(),
            RunConfig::with_args(args.iter().copied()),
        )
    }

    #[test]
    fn all_three_apps_agree_across_models() {
        for app in [nanoxor(), microxorh(), microxor()] {
            let cuda = run_model(&app, ExecutionModel::Cuda, &["16", "2"]);
            let omp = run_model(&app, ExecutionModel::OmpThreads, &["16", "2"]);
            assert!(cuda.error.is_none(), "{}: {:?}", app.name, cuda.error);
            assert!(omp.error.is_none(), "{}: {:?}", app.name, omp.error);
            assert_eq!(
                cuda.stdout, omp.stdout,
                "{} differs across models",
                app.name
            );
            assert!(
                cuda.telemetry.ran_on_device(),
                "{} CUDA on device",
                app.name
            );
            assert!(
                !omp.telemetry.ran_on_device(),
                "{} OpenMP threads stays on host",
                app.name
            );
        }
    }

    #[test]
    fn nonempty_grid_evolves() {
        let app = nanoxor();
        let r1 = run_model(&app, ExecutionModel::Cuda, &["16", "1"]);
        let r2 = run_model(&app, ExecutionModel::Cuda, &["16", "2"]);
        assert_ne!(r1.stdout, r2.stdout, "iterations must change the state");
        assert!(r1.stdout.contains("live "));
    }

    #[test]
    fn expected_output_accessible_via_registry() {
        let app = nanoxor();
        let out = app.expected_output(&TestCase::new(["8", "1"]));
        assert!(out.starts_with("grid 8 iterations 1\n"), "{out}");
    }
}
