//! llm.c (reduced): CUDA implementation of neural-network pretraining
//! (paper Sec. 5.1 — "slightly reduced ... to focus on critical application
//! components"). The MiniHPC port keeps the shape of Karpathy's llm.c:
//! separate kernel files for matmul, softmax+loss, and the optimizer, a
//! training loop in main, and deterministic synthetic data — here a
//! two-layer MLP classifier whose loss must decrease monotonically.

use crate::{gt_cmake_kokkos, gt_make_omp_offload, share, Application, TestCase};
use minihpc_lang::model::ExecutionModel;
use minihpc_lang::repo::SourceRepo;
use std::collections::BTreeMap;

const HEADER: &str = r#"#define BATCH 8
#define DIM 8
#define HIDDEN 16
#define CLASSES 4

void fill_random(double* a, int n, long seed, double scale);
void make_dataset(double* x, int* y, long seed);

__global__ void matmul_forward(double* out, const double* in, const double* w, int B, int IN, int OUT);
__global__ void relu_forward(double* h, int n);
__global__ void softmax_ce(const double* logits, const int* targets, double* dlogits, double* losses, int B, int C);
__global__ void matmul_backward_w(double* dw, const double* dout, const double* in, int B, int IN, int OUT);
__global__ void matmul_backward_x(double* din, const double* dout, const double* w, int B, int IN, int OUT);
__global__ void relu_backward(double* dh, const double* h, int n);
__global__ void sgd_update(double* w, const double* dw, double lr, int n);
"#;

const INIT_CU: &str = r#"#include <cuda_runtime.h>
#include "llmc.h"

long mix(long state) {
    return state * 0x5851F42D4C957F2D + 0x14057B7EF767814F;
}

double unit(long state) {
    long y = state >> 12;
    return (double)(y % 2097152) / 2097152.0;
}

void fill_random(double* a, int n, long seed, double scale) {
    long s = seed;
    for (int i = 0; i < n; i++) {
        s = mix(s);
        a[i] = (unit(s) - 0.5) * 2.0 * scale;
    }
}

void make_dataset(double* x, int* y, long seed) {
    fill_random(x, BATCH * DIM, seed, 1.0);
    for (int b = 0; b < BATCH; b++) {
        y[b] = b % CLASSES;
    }
}
"#;

const MATMUL_CU: &str = r#"#include <cuda_runtime.h>
#include "llmc.h"

__global__ void matmul_forward(double* out, const double* in, const double* w, int B, int IN, int OUT) {
    int idx = blockIdx.x * blockDim.x + threadIdx.x;
    if (idx < B * OUT) {
        int b = idx / OUT;
        int o = idx % OUT;
        double acc = 0.0;
        for (int i = 0; i < IN; i++) {
            acc += in[b * IN + i] * w[o * IN + i];
        }
        out[idx] = acc;
    }
}

__global__ void relu_forward(double* h, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        if (h[i] < 0.0) {
            h[i] = 0.0;
        }
    }
}

__global__ void matmul_backward_w(double* dw, const double* dout, const double* in, int B, int IN, int OUT) {
    int idx = blockIdx.x * blockDim.x + threadIdx.x;
    if (idx < OUT * IN) {
        int o = idx / IN;
        int i = idx % IN;
        double acc = 0.0;
        for (int b = 0; b < B; b++) {
            acc += dout[b * OUT + o] * in[b * IN + i];
        }
        dw[idx] = acc;
    }
}

__global__ void matmul_backward_x(double* din, const double* dout, const double* w, int B, int IN, int OUT) {
    int idx = blockIdx.x * blockDim.x + threadIdx.x;
    if (idx < B * IN) {
        int b = idx / IN;
        int i = idx % IN;
        double acc = 0.0;
        for (int o = 0; o < OUT; o++) {
            acc += dout[b * OUT + o] * w[o * IN + i];
        }
        din[idx] = acc;
    }
}

__global__ void relu_backward(double* dh, const double* h, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        if (h[i] <= 0.0) {
            dh[i] = 0.0;
        }
    }
}
"#;

const SOFTMAX_CU: &str = r#"#include <cuda_runtime.h>
#include <math.h>
#include "llmc.h"

__global__ void softmax_ce(const double* logits, const int* targets, double* dlogits, double* losses, int B, int C) {
    int b = blockIdx.x * blockDim.x + threadIdx.x;
    if (b < B) {
        double maxv = logits[b * C];
        for (int c = 1; c < C; c++) {
            if (logits[b * C + c] > maxv) {
                maxv = logits[b * C + c];
            }
        }
        double sum = 0.0;
        for (int c = 0; c < C; c++) {
            sum += exp(logits[b * C + c] - maxv);
        }
        int target = targets[b];
        for (int c = 0; c < C; c++) {
            double p = exp(logits[b * C + c] - maxv) / sum;
            double grad = p;
            if (c == target) {
                grad = p - 1.0;
                losses[b] = 0.0 - log(p);
            }
            dlogits[b * C + c] = grad / B;
        }
    }
}
"#;

const UPDATE_CU: &str = r#"#include <cuda_runtime.h>
#include "llmc.h"

__global__ void sgd_update(double* w, const double* dw, double lr, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        w[i] = w[i] - lr * dw[i];
    }
}
"#;

const MAIN_CU: &str = r#"#include <cuda_runtime.h>
#include <stdio.h>
#include <stdlib.h>
#include "llmc.h"

int main(int argc, char** argv) {
    int steps = 10;
    long seed = 1337;
    if (argc > 1) steps = atoi(argv[1]);
    if (argc > 2) seed = atol(argv[2]);
    printf("llm.c mini trainer: batch %d dim %d hidden %d classes %d\n", BATCH, DIM, HIDDEN, CLASSES);

    double* h_x = (double*)malloc(BATCH * DIM * sizeof(double));
    int* h_y = (int*)malloc(BATCH * sizeof(int));
    double* h_w1 = (double*)malloc(HIDDEN * DIM * sizeof(double));
    double* h_w2 = (double*)malloc(CLASSES * HIDDEN * sizeof(double));
    make_dataset(h_x, h_y, seed);
    fill_random(h_w1, HIDDEN * DIM, seed + 1, 0.5);
    fill_random(h_w2, CLASSES * HIDDEN, seed + 2, 0.5);

    double* x;
    int* y;
    double* w1;
    double* w2;
    double* h;
    double* hpre;
    double* logits;
    double* dlogits;
    double* losses;
    double* dw2;
    double* dh;
    double* dw1;
    cudaMalloc(&x, BATCH * DIM * sizeof(double));
    cudaMalloc(&y, BATCH * sizeof(int));
    cudaMalloc(&w1, HIDDEN * DIM * sizeof(double));
    cudaMalloc(&w2, CLASSES * HIDDEN * sizeof(double));
    cudaMalloc(&h, BATCH * HIDDEN * sizeof(double));
    cudaMalloc(&hpre, BATCH * HIDDEN * sizeof(double));
    cudaMalloc(&logits, BATCH * CLASSES * sizeof(double));
    cudaMalloc(&dlogits, BATCH * CLASSES * sizeof(double));
    cudaMalloc(&losses, BATCH * sizeof(double));
    cudaMalloc(&dw2, CLASSES * HIDDEN * sizeof(double));
    cudaMalloc(&dh, BATCH * HIDDEN * sizeof(double));
    cudaMalloc(&dw1, HIDDEN * DIM * sizeof(double));
    cudaMemcpy(x, h_x, BATCH * DIM * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(y, h_y, BATCH * sizeof(int), cudaMemcpyHostToDevice);
    cudaMemcpy(w1, h_w1, HIDDEN * DIM * sizeof(double), cudaMemcpyHostToDevice);
    cudaMemcpy(w2, h_w2, CLASSES * HIDDEN * sizeof(double), cudaMemcpyHostToDevice);

    double* h_losses = (double*)malloc(BATCH * sizeof(double));
    double lr = 0.5;
    double final_loss = 0.0;
    for (int step = 0; step < steps; step++) {
        matmul_forward<<<1, BATCH * HIDDEN>>>(hpre, x, w1, BATCH, DIM, HIDDEN);
        cudaMemcpy(h, hpre, BATCH * HIDDEN * sizeof(double), cudaMemcpyDeviceToDevice);
        relu_forward<<<1, BATCH * HIDDEN>>>(h, BATCH * HIDDEN);
        matmul_forward<<<1, BATCH * CLASSES>>>(logits, h, w2, BATCH, HIDDEN, CLASSES);
        softmax_ce<<<1, BATCH>>>(logits, y, dlogits, losses, BATCH, CLASSES);
        cudaDeviceSynchronize();
        cudaMemcpy(h_losses, losses, BATCH * sizeof(double), cudaMemcpyDeviceToHost);
        double mean = 0.0;
        for (int b = 0; b < BATCH; b++) {
            mean += h_losses[b];
        }
        mean = mean / BATCH;
        printf("step %d loss %.6f\n", step, mean);
        final_loss = mean;

        matmul_backward_w<<<1, CLASSES * HIDDEN>>>(dw2, dlogits, h, BATCH, HIDDEN, CLASSES);
        matmul_backward_x<<<1, BATCH * HIDDEN>>>(dh, dlogits, w2, BATCH, HIDDEN, CLASSES);
        relu_backward<<<1, BATCH * HIDDEN>>>(dh, hpre, BATCH * HIDDEN);
        matmul_backward_w<<<1, HIDDEN * DIM>>>(dw1, dh, x, BATCH, DIM, HIDDEN);
        sgd_update<<<1, CLASSES * HIDDEN>>>(w2, dw2, lr, CLASSES * HIDDEN);
        sgd_update<<<1, HIDDEN * DIM>>>(w1, dw1, lr, HIDDEN * DIM);
        cudaDeviceSynchronize();
    }
    printf("final loss %.6f\n", final_loss);

    free(h_x);
    free(h_y);
    free(h_w1);
    free(h_w2);
    free(h_losses);
    return 0;
}
"#;

const MAKEFILE: &str = "NVCC = nvcc\nNVCCFLAGS = -O2 -arch=sm_80\nSRCS = src/main.cu src/init.cu src/matmul.cu src/softmax.cu src/update.cu\n\nllmc: $(SRCS)\n\t$(NVCC) $(NVCCFLAGS) -o llmc $(SRCS)\n\n.PHONY: clean\nclean:\n\trm -f llmc\n";

pub fn llmc() -> Application {
    let mut repos = BTreeMap::new();
    repos.insert(
        ExecutionModel::Cuda,
        SourceRepo::new()
            .with_file("Makefile", MAKEFILE)
            .with_file("src/llmc.h", HEADER)
            .with_file("src/main.cu", MAIN_CU)
            .with_file("src/init.cu", INIT_CU)
            .with_file("src/matmul.cu", MATMUL_CU)
            .with_file("src/softmax.cu", SOFTMAX_CU)
            .with_file("src/update.cu", UPDATE_CU),
    );
    let sources = [
        "src/main.cpp",
        "src/init.cpp",
        "src/matmul.cpp",
        "src/softmax.cpp",
        "src/update.cpp",
    ];
    let mut gt = BTreeMap::new();
    gt.insert(
        ExecutionModel::OmpOffload,
        (
            "Makefile".to_string(),
            gt_make_omp_offload("llmc", &sources),
        ),
    );
    gt.insert(
        ExecutionModel::Kokkos,
        (
            "CMakeLists.txt".to_string(),
            gt_cmake_kokkos("llmc", &sources),
        ),
    );
    Application {
        name: "llm.c".into(),
        binary: "llmc".into(),
        repos: share(repos),
        tests: vec![
            TestCase::new(["5", "1337"]),
            TestCase::new(["10", "1337"]),
            TestCase::new(["8", "99"]),
        ],
        cli_spec: "The program must be invoked as `llmc [steps] [seed]` (defaults 10 1337) \
                   and print one `step <i> loss <v>` line per training step followed by \
                   `final loss <v>`, six decimal places."
            .to_string(),
        build_spec: "The build must produce an executable named `llmc` in the repository \
                     root, compiling the five sources under src/."
            .to_string(),
        ground_truth_build: gt,
        public_ports_exist: false,
        gen_digest: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_build::{build_repo, BuildRequest};
    use minihpc_runtime::{run, RunConfig};

    fn train(args: &[&str]) -> minihpc_runtime::RunResult {
        let app = llmc();
        let out = build_repo(
            app.repo(ExecutionModel::Cuda).unwrap(),
            &BuildRequest::new(&*app.binary),
        );
        assert!(out.succeeded(), "{}", out.log.text());
        run(
            &out.executable.unwrap(),
            RunConfig::with_args(args.iter().copied()),
        )
    }

    #[test]
    fn loss_decreases_monotonically() {
        let r = train(&["8", "1337"]);
        assert!(r.error.is_none(), "{:?}", r.error);
        let losses: Vec<f64> = r
            .stdout
            .lines()
            .filter(|l| l.starts_with("step "))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(losses.len(), 8);
        assert!(
            losses.windows(2).all(|w| w[1] < w[0]),
            "loss not monotonically decreasing: {losses:?}"
        );
        assert!(r.telemetry.ran_on_device());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = train(&["5", "42"]);
        let b = train(&["5", "42"]);
        let c = train(&["5", "43"]);
        assert_eq!(a.stdout, b.stdout);
        assert_ne!(a.stdout, c.stdout);
    }
}
