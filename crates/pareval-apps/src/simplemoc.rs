//! SimpleMOC-kernel: proxy for SimpleMOC neutron-flux attenuation (paper
//! Sec. 5.1). CUDA-only upstream, six files, and — the distinguishing
//! difficulty — a dependency on the external cuRAND library that has no
//! direct OpenMP/Kokkos equivalent, forcing translations to synthesise a
//! portable RNG.

use crate::{gt_cmake_kokkos, gt_make_omp_offload, share, Application, TestCase};
use minihpc_lang::model::ExecutionModel;
use minihpc_lang::repo::SourceRepo;
use std::collections::BTreeMap;

const HEADER: &str = r#"typedef struct {
    int segments;
    int egroups;
    long seed;
} Input;

void read_cli(int argc, char** argv, Input* input);
void report(float* flux, Input* input);
__global__ void init_rng(curandState* states, int n, long seed);
__global__ void attenuate_all(curandState* states, float* flux, int S, int G);
"#;

const MAIN_CU: &str = r#"#include <cuda_runtime.h>
#include <curand_kernel.h>
#include <stdio.h>
#include <stdlib.h>
#include "simplemoc.h"

int main(int argc, char** argv) {
    Input* input = (Input*)malloc(sizeof(Input));
    read_cli(argc, argv, input);
    printf("SimpleMOC-kernel: segments %d egroups %d\n", input->segments, input->egroups);
    int S = input->segments;
    int G = input->egroups;
    curandState* states;
    float* flux;
    cudaMalloc(&states, S * sizeof(curandState));
    cudaMalloc(&flux, S * G * sizeof(float));
    int threads = 64;
    int blocks = (S + threads - 1) / threads;
    init_rng<<<blocks, threads>>>(states, S, input->seed);
    cudaDeviceSynchronize();
    attenuate_all<<<blocks, threads>>>(states, flux, S, G);
    cudaDeviceSynchronize();
    float* h_flux = (float*)malloc(S * G * sizeof(float));
    cudaMemcpy(h_flux, flux, S * G * sizeof(float), cudaMemcpyDeviceToHost);
    report(h_flux, input);
    cudaFree(states);
    cudaFree(flux);
    free(h_flux);
    free(input);
    return 0;
}
"#;

const INIT_CU: &str = r#"#include <cuda_runtime.h>
#include <curand_kernel.h>
#include "simplemoc.h"

__global__ void init_rng(curandState* states, int n, long seed) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        curand_init(seed, i, 0, &states[i]);
    }
}
"#;

const KERNEL_CU: &str = r#"#include <cuda_runtime.h>
#include <curand_kernel.h>
#include <math.h>
#include "simplemoc.h"

__device__ float attenuate_segment(curandState* state) {
    float sigT = curand_uniform(state) * 2.0 + 0.1;
    float length = curand_uniform(state) * 0.5;
    float q0 = curand_uniform(state);
    float tau = sigT * length;
    return (q0 / sigT) * (1.0 - expf(-tau));
}

__global__ void attenuate_all(curandState* states, float* flux, int S, int G) {
    int s = blockIdx.x * blockDim.x + threadIdx.x;
    if (s < S) {
        for (int g = 0; g < G; g++) {
            flux[s * G + g] = attenuate_segment(&states[s]);
        }
    }
}
"#;

const IO_CU: &str = r#"#include <stdio.h>
#include <stdlib.h>
#include "simplemoc.h"

void read_cli(int argc, char** argv, Input* input) {
    input->segments = 1024;
    input->egroups = 16;
    input->seed = 42;
    if (argc > 1) input->segments = atoi(argv[1]);
    if (argc > 2) input->egroups = atoi(argv[2]);
    if (argc > 3) input->seed = atol(argv[3]);
}

void report(float* flux, Input* input) {
    int S = input->segments;
    int G = input->egroups;
    double total = 0.0;
    double maxv = 0.0;
    for (int k = 0; k < S * G; k++) {
        total += flux[k];
        if (flux[k] > maxv) maxv = flux[k];
    }
    printf("mean flux %.6f\n", total / (S * G));
    printf("max flux %.6f\n", maxv);
}
"#;

const README: &str = "# SimpleMOC-kernel\n\nA proxy application for the attenuation \
of neutron flux along characteristic tracks (Method of Characteristics), after \
Tramm et al. Only a CUDA implementation is available; the kernel depends on the \
cuRAND device library for per-segment sampling.\n";

const MAKEFILE: &str = "NVCC = nvcc\nNVCCFLAGS = -O2 -arch=sm_80\nSRCS = src/main.cu src/kernel.cu src/init.cu src/io.cu\n\nsimplemoc: $(SRCS)\n\t$(NVCC) $(NVCCFLAGS) -o simplemoc $(SRCS)\n\n.PHONY: clean\nclean:\n\trm -f simplemoc\n";

pub fn simplemoc_kernel() -> Application {
    let mut repos = BTreeMap::new();
    repos.insert(
        ExecutionModel::Cuda,
        SourceRepo::new()
            .with_file("Makefile", MAKEFILE)
            .with_file("README.md", README)
            .with_file("src/simplemoc.h", HEADER)
            .with_file("src/main.cu", MAIN_CU)
            .with_file("src/kernel.cu", KERNEL_CU)
            .with_file("src/init.cu", INIT_CU)
            .with_file("src/io.cu", IO_CU),
    );
    let sources = [
        "src/main.cpp",
        "src/kernel.cpp",
        "src/init.cpp",
        "src/io.cpp",
    ];
    let mut gt = BTreeMap::new();
    gt.insert(
        ExecutionModel::OmpOffload,
        (
            "Makefile".to_string(),
            gt_make_omp_offload("simplemoc", &sources),
        ),
    );
    gt.insert(
        ExecutionModel::Kokkos,
        (
            "CMakeLists.txt".to_string(),
            gt_cmake_kokkos("simplemoc", &sources),
        ),
    );
    Application {
        name: "SimpleMOC-kernel".into(),
        binary: "simplemoc".into(),
        repos: share(repos),
        tests: vec![
            TestCase::new(["512", "8", "42"]),
            TestCase::new(["1024", "16", "7"]),
            TestCase::new(["256", "32", "1234"]),
        ],
        cli_spec: "The program must be invoked as `simplemoc <segments> <egroups> <seed>` \
                   (all optional, defaults 1024 16 42) and print a header line followed by \
                   `mean flux <v>` and `max flux <v>` with six decimal places."
            .to_string(),
        build_spec: "The build must produce an executable named `simplemoc` in the \
                     repository root. The cuRAND dependency must be replaced with a \
                     deterministic portable RNG when translating away from CUDA."
            .to_string(),
        ground_truth_build: gt,
        public_ports_exist: false,
        gen_digest: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minihpc_build::{build_repo, BuildRequest};
    use minihpc_runtime::{run, RunConfig};

    #[test]
    fn builds_and_runs_deterministically() {
        let app = simplemoc_kernel();
        let repo = app.repo(ExecutionModel::Cuda).unwrap();
        let out = build_repo(repo, &BuildRequest::new(&*app.binary));
        assert!(out.succeeded(), "{}", out.log.text());
        let exe = out.executable.unwrap();
        let r1 = run(&exe, RunConfig::with_args(["128", "4", "42"]));
        assert!(r1.error.is_none(), "{:?}", r1.error);
        assert!(r1.stdout.contains("mean flux "), "{}", r1.stdout);
        assert!(r1.telemetry.ran_on_device());
        let r2 = run(&exe, RunConfig::with_args(["128", "4", "42"]));
        assert_eq!(r1.stdout, r2.stdout);
        let r3 = run(&exe, RunConfig::with_args(["128", "4", "43"]));
        assert_ne!(r1.stdout, r3.stdout, "seed must matter");
    }

    #[test]
    fn mean_flux_in_physical_range() {
        let app = simplemoc_kernel();
        let out = app.expected_output(&TestCase::new(["256", "8", "42"]));
        let mean: f64 = out
            .lines()
            .find(|l| l.starts_with("mean flux"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(mean > 0.0 && mean < 1.0, "mean {mean} out of range");
    }
}
