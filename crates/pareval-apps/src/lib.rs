//! # pareval-apps
//!
//! The six ParEval-Repo benchmark applications (paper Table 1) as MiniHPC
//! repositories: nanoXOR, microXORh, microXOR, SimpleMOC-kernel, XSBench and
//! llm.c — each in every programming model the paper marks as available,
//! with the developer-provided test cases the harness uses for correctness
//! validation.
//!
//! Expected outputs are not hard-coded: they are produced by building and
//! running the application's own source-model implementation through the
//! MiniHPC toolchain, exactly as the paper leverages "the correctness
//! validation test cases provided by the developers".

mod llmc;
mod simplemoc;
mod xor;
mod xsbench;

use minihpc_build::{build_repo, BuildRequest};
use minihpc_gen::{generate, GenSpec};
use minihpc_lang::model::{BuildSystemKind, ExecutionModel, TranslationPair};
use minihpc_lang::repo::SourceRepo;
use minihpc_runtime::{run, RunConfig};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One developer-provided test case: CLI arguments (expected stdout is
/// derived from the reference implementation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    pub args: Vec<String>,
}

impl TestCase {
    pub fn new<S: Into<String>>(args: impl IntoIterator<Item = S>) -> Self {
        TestCase {
            args: args.into_iter().map(Into::into).collect(),
        }
    }
}

/// A translation task named a source model the application does not
/// implement. Returned by [`Application::repo_arc`] instead of the panic a
/// bare `repo(..).unwrap()` used to produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasiblePair {
    pub app: String,
    pub model: ExecutionModel,
}

impl std::fmt::Display for InfeasiblePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "application {} has no {} implementation",
            self.app, self.model
        )
    }
}

impl std::error::Error for InfeasiblePair {}

/// A benchmark application.
#[derive(Debug, Clone)]
pub struct Application {
    /// Name as in paper Table 1 (`nanoXOR`, `XSBench`, ...) — or a
    /// generated-family name like `gen-t4-0000002a`. Borrowed for the
    /// hand-written suite, owned for generated apps.
    pub name: Cow<'static, str>,
    /// The binary the build must produce (the build-interface contract).
    pub binary: Cow<'static, str>,
    /// Per-model source repositories (only models marked available).
    /// `Arc`-shared so per-sample pipelines serve the repo without a deep
    /// clone of every file.
    pub repos: BTreeMap<ExecutionModel, Arc<SourceRepo>>,
    /// Developer test cases.
    pub tests: Vec<TestCase>,
    /// CLI contract text, included in prompts for main-function files.
    pub cli_spec: String,
    /// Build contract text, included in prompts for build files.
    pub build_spec: String,
    /// Ground-truth build files per *target* model, hand-written (paper: the
    /// authors' manually translated Makefile/CMakeLists used for the
    /// "Code-only" score).
    pub ground_truth_build: BTreeMap<ExecutionModel, (String, String)>,
    /// True when public ports exist in the target models (XSBench — the
    /// paper's data-contamination probe).
    pub public_ports_exist: bool,
    /// `Some(GenSpec::digest())` for applications produced by
    /// `minihpc-gen`; `None` for the hand-written suite. Experiment-plan
    /// fingerprints fold this in so a resumed run detects generator drift.
    pub gen_digest: Option<u64>,
}

impl Application {
    /// Models this application is implemented in.
    pub fn available_models(&self) -> Vec<ExecutionModel> {
        self.repos.keys().copied().collect()
    }

    pub fn repo(&self, model: ExecutionModel) -> Option<&SourceRepo> {
        self.repos.get(&model).map(|r| r.as_ref())
    }

    /// The shared handle to the `model` implementation, or a typed error
    /// naming the missing pair. Cloning the `Arc` is O(1) — this is the
    /// per-sample path, replacing deep `SourceRepo` clones.
    pub fn repo_arc(&self, model: ExecutionModel) -> Result<Arc<SourceRepo>, InfeasiblePair> {
        self.repos
            .get(&model)
            .cloned()
            .ok_or_else(|| InfeasiblePair {
                app: self.name.to_string(),
                model,
            })
    }

    /// Which of the paper's three translation pairs apply to this app.
    pub fn pairs(&self) -> Vec<TranslationPair> {
        TranslationPair::ALL
            .into_iter()
            .filter(|p| self.repos.contains_key(&p.from))
            .collect()
    }

    /// Run the reference implementation to get the expected stdout for a
    /// test case. Panics if the reference itself fails — that is a bug in
    /// the benchmark suite, not in a translation.
    pub fn expected_output(&self, case: &TestCase) -> String {
        let (model, repo) = self
            .repos
            .iter()
            .next()
            .expect("application has at least one implementation");
        let outcome = build_repo(repo, &BuildRequest::new(&*self.binary));
        let exe = outcome.executable.unwrap_or_else(|| {
            panic!(
                "reference build of {} ({model}) failed:\n{}",
                self.name,
                outcome.log.text()
            )
        });
        let result = run(&exe, RunConfig::with_args(case.args.iter().cloned()));
        assert!(
            result.error.is_none() && result.exit_code == 0,
            "reference run of {} failed: {:?}\n{}",
            self.name,
            result.error,
            result.stdout,
        );
        result.stdout
    }

    /// The build system the source-model repo of `pair` uses.
    pub fn build_system(&self, model: ExecutionModel) -> BuildSystemKind {
        model.build_system()
    }
}

/// The full suite, in paper Table 1 order.
pub fn suite() -> Vec<Application> {
    vec![
        xor::nanoxor(),
        xor::microxorh(),
        xor::microxor(),
        simplemoc::simplemoc_kernel(),
        xsbench::xsbench(),
        llmc::llmc(),
    ]
}

/// The hand-written suite plus one [`Application`] per generated spec —
/// the open-registry path the synthetic stress grids use. Generated specs
/// should be [`ErrorProfile::Clean`](minihpc_gen::ErrorProfile::Clean)
/// `Threads` repos: `expected_output` runs the reference implementation,
/// so a repo that cannot build cannot be a grid application (defective
/// profiles belong to the fuzzing pipeline instead).
pub fn suite_with_generated(specs: &[GenSpec]) -> Vec<Application> {
    let mut apps = suite();
    apps.extend(specs.iter().map(generated_app));
    apps
}

/// Bridge one generated spec into the registry: the generated repo is the
/// source-model implementation, and the ground-truth offload build file is
/// the same clang++ offload Makefile the hand-written suite uses.
pub fn generated_app(spec: &GenSpec) -> Application {
    let g = generate(spec);
    let sources: Vec<&str> = g.sources.iter().map(String::as_str).collect();
    let mut ground_truth_build = BTreeMap::new();
    ground_truth_build.insert(
        ExecutionModel::OmpOffload,
        (
            "Makefile".to_string(),
            gt_make_omp_offload(&g.binary, &sources),
        ),
    );
    let mut repos = BTreeMap::new();
    repos.insert(g.model, Arc::new(g.repo));
    Application {
        name: Cow::Owned(g.name),
        binary: Cow::Owned(g.binary),
        repos,
        tests: g.tests.into_iter().map(TestCase::new).collect(),
        cli_spec: g.cli_spec,
        build_spec: g.build_spec,
        ground_truth_build,
        public_ports_exist: false,
        gen_digest: Some(g.digest),
    }
}

/// Look up one application by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Application> {
    suite()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

/// Wrap a per-model repo map in the `Arc`s the open registry serves.
pub(crate) fn share(
    repos: BTreeMap<ExecutionModel, SourceRepo>,
) -> BTreeMap<ExecutionModel, Arc<SourceRepo>> {
    repos.into_iter().map(|(k, v)| (k, Arc::new(v))).collect()
}

/// Shared ground-truth build files used by several applications.
pub(crate) fn gt_make_omp_offload(binary: &str, sources: &[&str]) -> String {
    format!(
        "CXX = clang++\nCXXFLAGS = -O2 -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda -lm\n\n\
         {binary}: {srcs}\n\t$(CXX) $(CXXFLAGS) -o {binary} {srcs}\n\n\
         .PHONY: clean\nclean:\n\trm -f {binary}\n",
        srcs = sources.join(" "),
    )
}

pub(crate) fn gt_cmake_kokkos(binary: &str, sources: &[&str]) -> String {
    format!(
        "cmake_minimum_required(VERSION 3.16)\nproject({binary} LANGUAGES CXX)\n\
         find_package(Kokkos REQUIRED)\nset(CMAKE_CXX_STANDARD 17)\n\
         add_executable({binary} {srcs})\n\
         target_link_libraries({binary} PRIVATE Kokkos::kokkos)\n",
        srcs = sources.join(" "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table1_shape() {
        let apps = suite();
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_ref()).collect();
        assert_eq!(
            names,
            vec![
                "nanoXOR",
                "microXORh",
                "microXOR",
                "SimpleMOC-kernel",
                "XSBench",
                "llm.c"
            ]
        );
        // Availability per Table 1.
        let models = |n: &str| by_name(n).unwrap().available_models();
        assert_eq!(
            models("nanoXOR"),
            vec![ExecutionModel::OmpThreads, ExecutionModel::Cuda]
        );
        assert_eq!(
            models("microXORh"),
            vec![ExecutionModel::OmpThreads, ExecutionModel::Cuda]
        );
        assert_eq!(
            models("microXOR"),
            vec![ExecutionModel::OmpThreads, ExecutionModel::Cuda]
        );
        assert_eq!(models("SimpleMOC-kernel"), vec![ExecutionModel::Cuda]);
        assert_eq!(
            models("XSBench"),
            vec![ExecutionModel::OmpThreads, ExecutionModel::Cuda]
        );
        assert_eq!(models("llm.c"), vec![ExecutionModel::Cuda]);
    }

    #[test]
    fn translation_pair_coverage_is_sixteen_tasks() {
        // Paper Sec. 5.2: six apps for two pairs + four apps for the third.
        let apps = suite();
        let total: usize = apps.iter().map(|a| a.pairs().len()).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn file_counts_increase_with_complexity() {
        let counts: Vec<usize> = suite()
            .iter()
            .map(|a| a.repos.values().next().unwrap().len())
            .collect();
        // nanoXOR(2) < microXORh(3) < microXOR(4) < SimpleMOC(6) < XSBench(9)
        assert!(counts[0] < counts[1]);
        assert!(counts[1] < counts[2]);
        assert!(counts[2] < counts[3]);
        assert!(counts[3] < counts[4]);
    }

    #[test]
    fn generated_specs_register_alongside_builtins() {
        let specs = vec![minihpc_gen::GenSpec::new(42), minihpc_gen::GenSpec::new(43)];
        let apps = suite_with_generated(&specs);
        assert_eq!(apps.len(), suite().len() + 2);
        let gen = &apps[suite().len()];
        assert_eq!(gen.name.as_ref(), specs[0].name());
        assert_eq!(gen.gen_digest, Some(specs[0].digest()));
        assert_eq!(gen.pairs(), vec![TranslationPair::OMP_THREADS_TO_OFFLOAD]);
        // The generated reference implementation must actually run: the
        // expected output is derived from it, like the hand-written suite.
        let out = gen.expected_output(&gen.tests[0]);
        assert!(out.contains("checksum "), "{out}");
        // The typed error replaces the old unwrap-on-missing-model panic.
        let err = gen.repo_arc(ExecutionModel::Cuda).unwrap_err();
        assert_eq!(err.model, ExecutionModel::Cuda);
        assert!(err.to_string().contains(gen.name.as_ref()));
    }

    #[test]
    fn repo_arc_shares_rather_than_clones() {
        let app = by_name("XSBench").unwrap();
        let a = app.repo_arc(ExecutionModel::OmpThreads).unwrap();
        let b = app.repo_arc(ExecutionModel::OmpThreads).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
